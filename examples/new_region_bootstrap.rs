//! New-region bootstrap (paper §7.1, Fig. 14): take a GenDT model
//! pretrained on one city, move to a previously unseen region, collect a
//! coarse bootstrap measurement, then run the cyclical uncertainty-guided
//! collect→retrain loop until the model stops improving.
//!
//! ```text
//! cargo run --release --example new_region_bootstrap
//! ```

use gendt::cfg::GenDtCfg;
use gendt::transfer::{pretrain, transfer_to_region, TransferCfg};
use gendt::{load_model, save_model};
use gendt_data::{dataset_a, dataset_b, extract, windows, BuildCfg, ContextCfg, Kpi};

fn main() {
    let kpis = [Kpi::Rsrp, Kpi::Rsrq];
    let mut cfg = GenDtCfg::fast(2, 11);
    cfg.steps = 80;

    // --- Phase 0: pretrain on the "historical" source city -------------
    println!("pretraining on the source city (historical drive tests)...");
    let src = dataset_a(&BuildCfg {
        scale: 0.10,
        ..BuildCfg::full(11)
    });
    let src_ctx_cfg = ContextCfg {
        max_cells: cfg.window.max_cells,
        coord_scale_m: src.world.cfg.extent_m,
        ..ContextCfg::default()
    };
    let mut source_pool = Vec::new();
    for run in &src.runs {
        let ctx = extract(&src.world, &src.deployment, &run.traj, &src_ctx_cfg);
        source_pool.extend(windows(run, &ctx, &kpis, &cfg.window));
    }
    let pretrained = pretrain(cfg, &source_pool);
    println!("  pretrained on {} windows", source_pool.len());

    // The operator would ship this around as a file; demonstrate the
    // checkpoint roundtrip.
    let ckpt = save_model(&pretrained);
    let pretrained = load_model(&ckpt).expect("checkpoint roundtrip");

    // --- Phase 1: arrive in the new region ------------------------------
    println!("\nentering the target region (different country, unseen deployment)...");
    let tgt = dataset_b(&BuildCfg {
        scale: 0.06,
        ..BuildCfg::full(12)
    });
    let tgt_ctx_cfg = ContextCfg {
        max_cells: pretrained.cfg().window.max_cells,
        coord_scale_m: tgt.world.cfg.extent_m,
        ..ContextCfg::default()
    };
    // Coarse bootstrap: one short run.
    let boot_run = &tgt.runs[0];
    let boot_ctx = extract(&tgt.world, &tgt.deployment, &boot_run.traj, &tgt_ctx_cfg);
    let bootstrap = windows(boot_run, &boot_ctx, &kpis, &pretrained.cfg().window);
    // Candidate measurement campaigns the operator could still drive.
    let mut candidates = Vec::new();
    for run in tgt.runs.iter().skip(1).take(5) {
        let ctx = extract(&tgt.world, &tgt.deployment, &run.traj, &tgt_ctx_cfg);
        let wins = windows(run, &ctx, &kpis, &pretrained.cfg().window);
        candidates.push((wins, ctx));
    }

    // --- Phase 2: the collect→retrain cycle ----------------------------
    let tcfg = TransferCfg {
        steps_per_cycle: 40,
        max_cycles: 3,
        ..TransferCfg::default()
    };
    let outcome = transfer_to_region(pretrained, &bootstrap, &candidates, &boot_ctx, &tcfg);
    println!("\ncycle | pool windows | model uncertainty | collected candidate");
    for s in &outcome.steps {
        println!(
            "  {:>3} | {:>12} | {:>17.4} | {}",
            s.cycle,
            s.pool_size,
            s.uncertainty,
            s.collected
                .map(|i| i.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    println!(
        "\nThe loop stopped after {} cycles; further driving would not reduce model\n\
         uncertainty meaningfully — the \"No further measurement\" exit of Fig. 14.",
        outcome.steps.len() - 1
    );
}
