//! Quickstart: train GenDT on a synthetic drive-test dataset and generate
//! radio-KPI time series for a brand-new, never-measured trajectory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gendt::{generate_series, GenDt, GenDtCfg};
use gendt_data::{dataset_a, extract, windows, BuildCfg, ContextCfg, Kpi};
use gendt_geo::trajectory::{generate, Scenario, TrajectoryCfg};
use gendt_geo::XY;
use gendt_metrics::Fidelity;
use gendt_radio::kpi::{KpiCfg, KpiEngine};
use gendt_radio::propagation::PropagationCfg;

fn main() {
    // 1. Build a synthetic city drive-test dataset (the stand-in for a
    //    real measurement campaign; see DESIGN.md §2).
    println!("building synthetic Dataset A...");
    let ds = dataset_a(&BuildCfg {
        scale: 0.12,
        ..BuildCfg::full(42)
    });
    println!(
        "  {} runs, {} samples, {} cells",
        ds.runs.len(),
        ds.total_samples(),
        ds.deployment.len()
    );

    // 2. Extract context and windows, then train GenDT.
    let cfg = GenDtCfg::fast(4, 42);
    let ctx_cfg = ContextCfg {
        max_cells: cfg.window.max_cells,
        ..ContextCfg::default()
    };
    let mut pool = Vec::new();
    for run in &ds.runs {
        let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ctx_cfg);
        pool.extend(windows(run, &ctx, &Kpi::DATASET_A, &cfg.window));
    }
    println!(
        "training GenDT on {} windows ({} steps)...",
        pool.len(),
        cfg.steps
    );
    let mut model = GenDt::new(cfg);
    model.train(&pool);
    let last = model.trace.last().unwrap();
    println!(
        "  final losses: mse={:.4}, gan_d={:.4}",
        last.mse, last.gan_d
    );

    // 3. Plan a NEW drive-test route that was never measured, and generate
    //    its KPI series from context alone.
    let new_route = generate(
        &ds.world,
        &TrajectoryCfg::new(Scenario::Bus, 600.0, XY::new(1500.0, -1200.0), 777),
    );
    let new_ctx = extract(&ds.world, &ds.deployment, &new_route, &ctx_cfg);
    let series = generate_series(&mut model, &new_ctx, &Kpi::DATASET_A, false, 7);
    let rsrp = series.channel(Kpi::Rsrp).expect("RSRP channel");
    println!(
        "\ngenerated {} samples for the unseen bus route",
        rsrp.len()
    );
    println!(
        "  RSRP: mean {:.1} dBm, min {:.1}, max {:.1}",
        gendt_metrics::mean(rsrp),
        rsrp.iter().cloned().fold(f64::MAX, f64::min),
        rsrp.iter().cloned().fold(f64::MIN, f64::max),
    );

    // 4. Because this is a simulator, we can check against "ground truth"
    //    that a real operator would have to drive out and measure.
    let engine = KpiEngine::new(
        &ds.world,
        &ds.deployment,
        PropagationCfg::default(),
        KpiCfg {
            serving_range_m: 2000.0,
            ..KpiCfg::default()
        },
    );
    let truth = engine.measure(&new_route, 999);
    let real_rsrp: Vec<f64> = truth.iter().map(|s| s.rsrp_dbm).collect();
    let n = real_rsrp.len().min(rsrp.len());
    let f = Fidelity::compute(&real_rsrp[..n], &rsrp[..n]);
    println!("\nfidelity vs (simulated) ground truth over the new route:");
    println!(
        "  MAE {:.2} dB | DTW {:.2} | HWD {:.2}",
        f.mae, f.dtw, f.hwd
    );
    println!("\nNo field measurement was needed to produce the generated series —");
    println!("that is the drive-testing effort GenDT saves.");
}
