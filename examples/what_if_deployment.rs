//! What-if analysis (paper §C.2): study the impact of deploying new cells
//! on radio KPIs *before* building them, with no drive-test campaign.
//!
//! GenDT is conditioned on network context, so swapping in a modified cell
//! database and regenerating KPIs for the same route answers "what would
//! RSRP on this route look like if we added a site here?".
//!
//! ```text
//! cargo run --release --example what_if_deployment
//! ```

use gendt::{generate_series, GenDt, GenDtCfg};
use gendt_data::{dataset_a, extract, windows, BuildCfg, ContextCfg, Kpi};
use gendt_geo::trajectory::{generate, Scenario, TrajectoryCfg};
use gendt_geo::world::DistrictKind;
use gendt_geo::XY;
use gendt_radio::cells::{Cell, Deployment};

fn main() {
    println!("building dataset and training GenDT...");
    let ds = dataset_a(&BuildCfg {
        scale: 0.12,
        ..BuildCfg::full(21)
    });
    let cfg = GenDtCfg::fast(4, 21);
    let ctx_cfg = ContextCfg {
        max_cells: cfg.window.max_cells,
        ..ContextCfg::default()
    };
    let mut pool = Vec::new();
    for run in &ds.runs {
        let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ctx_cfg);
        pool.extend(windows(run, &ctx, &Kpi::DATASET_A, &cfg.window));
    }
    let mut model = GenDt::new(cfg);
    model.train(&pool);

    // A coverage-gap route on the city edge.
    let route = generate(
        &ds.world,
        &TrajectoryCfg::new(Scenario::CityDrive, 420.0, XY::new(2600.0, 2600.0), 99),
    );
    let mid = route.points[route.points.len() / 2].pos;

    // Baseline: today's deployment.
    let ctx_before = extract(&ds.world, &ds.deployment, &route, &ctx_cfg);
    let before = generate_series(&mut model, &ctx_before, &Kpi::DATASET_A, false, 1);
    let rsrp_before = before.channel(Kpi::Rsrp).unwrap().to_vec();

    // What-if: add one three-sector site in the middle of the route.
    let mut cells = ds.deployment.cells.clone();
    for s in 0..3u32 {
        let id = cells.len() as u32;
        cells.push(Cell {
            id,
            pos: mid,
            latlon: ds.world.to_latlon(mid),
            azimuth_deg: 120.0 * s as f64,
            p_max_dbm: 43.0,
            district: DistrictKind::Urban,
        });
    }
    let modified = Deployment::from_cells(cells, ds.world.cfg.extent_m);
    let ctx_after = extract(&ds.world, &modified, &route, &ctx_cfg);
    let after = generate_series(&mut model, &ctx_after, &Kpi::DATASET_A, false, 1);
    let rsrp_after = after.channel(Kpi::Rsrp).unwrap().to_vec();

    let n = rsrp_before.len().min(rsrp_after.len());
    // Evaluate where the new site matters: samples within 800 m of it.
    let near: Vec<usize> = (0..n)
        .filter(|&k| route.points[k].pos.dist(&mid) < 800.0)
        .collect();
    let mean_near =
        |s: &[f64]| gendt_metrics::mean(&near.iter().map(|&k| s[k]).collect::<Vec<_>>());
    let mean_before = mean_near(&rsrp_before);
    let mean_after = mean_near(&rsrp_after);
    let weak = |s: &[f64]| {
        100.0 * near.iter().filter(|&&k| s[k] < -100.0).count() as f64 / near.len().max(1) as f64
    };
    println!(
        "\nwhat-if: add a 3-sector site at ({:.0} m, {:.0} m) on the route",
        mid.x, mid.y
    );
    println!("  samples within 800 m of the new site: {}", near.len());
    println!("  mean generated RSRP there, before: {mean_before:.1} dBm");
    println!("  mean generated RSRP there, after:  {mean_after:.1} dBm");
    println!(
        "  samples below -100 dBm: {:.1}% -> {:.1}%",
        weak(&rsrp_before),
        weak(&rsrp_after)
    );
    if mean_after > mean_before + 0.5 {
        println!("  => the model predicts the new site improves local coverage.");
    } else {
        println!("  => the model predicts little improvement — try another site location.");
    }
}
