//! Uncertainty-driven drive-test planning (paper §6.2 / §7.1): given a set
//! of candidate measurement routes, rank them by the trained model's
//! MC-dropout uncertainty and drive only the most informative ones.
//!
//! ```text
//! cargo run --release --example measurement_planning
//! ```

use gendt::{model_uncertainty, GenDt, GenDtCfg};
use gendt_data::{dataset_a, extract, windows, BuildCfg, ContextCfg, Kpi};
use gendt_geo::trajectory::{generate, Scenario, TrajectoryCfg};
use gendt_geo::XY;

fn main() {
    println!("building dataset and training a GenDT model on the city core...");
    let ds = dataset_a(&BuildCfg {
        scale: 0.10,
        ..BuildCfg::full(33)
    });
    let cfg = GenDtCfg::fast(4, 33);
    let ctx_cfg = ContextCfg {
        max_cells: cfg.window.max_cells,
        ..ContextCfg::default()
    };
    // Train on city-center runs only, so outskirts routes are genuinely
    // unfamiliar to the model.
    let mut pool = Vec::new();
    for run in ds.runs.iter().take(ds.runs.len() / 2) {
        let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ctx_cfg);
        pool.extend(windows(run, &ctx, &Kpi::DATASET_A, &cfg.window));
    }
    let mut model = GenDt::new(cfg);
    model.train(&pool);

    // Candidate measurement routes: near downtown vs outskirts.
    let candidates = [
        ("downtown loop", XY::new(0.0, 0.0)),
        ("inner ring", XY::new(900.0, -700.0)),
        ("east suburb", XY::new(2400.0, 400.0)),
        ("far outskirts", XY::new(3200.0, 3200.0)),
    ];
    println!("\nscoring candidate routes by model uncertainty (MC dropout):\n");
    let mut scored: Vec<(&str, f64)> = Vec::new();
    for (i, (name, start)) in candidates.iter().enumerate() {
        let route = generate(
            &ds.world,
            &TrajectoryCfg::new(Scenario::CityDrive, 300.0, *start, 500 + i as u64),
        );
        let ctx = extract(&ds.world, &ds.deployment, &route, &ctx_cfg);
        let rep = model_uncertainty(&mut model, &ctx, 4, 1000 + i as u64);
        println!(
            "  {name:<15} model uncertainty {:.4}   (data uncertainty {:.4})",
            rep.model_uncertainty, rep.data_uncertainty
        );
        scored.push((name, rep.model_uncertainty));
    }
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nrecommended measurement order (most informative first):");
    for (rank, (name, u)) in scored.iter().enumerate() {
        println!("  {}. {name} ({u:.4})", rank + 1);
    }
    println!(
        "\nRoutes the model is already confident about can be skipped — that is the\n\
         measurement-efficiency gain the paper quantifies in Fig. 11."
    );
}
