//! QoE-aware route assessment (paper §6.3.1): generate radio KPIs for a
//! planned route with GenDT, then predict application-level throughput
//! along it — no field measurement required.
//!
//! ```text
//! cargo run --release --example qoe_route_planner
//! ```

use gendt::{generate_series, GenDt, GenDtCfg};
use gendt_data::{dataset_a, extract, windows, BuildCfg, ContextCfg, Kpi};
use gendt_eval::exp_usecases::QoePredictor;
use gendt_eval::{Bundle, EvalCfg};
use gendt_geo::trajectory::{generate, Scenario, TrajectoryCfg};
use gendt_geo::XY;

fn main() {
    // The harness bundle gives us a trained GenDT plus the dataset; the
    // QoE predictor trains on the dataset's iPerf-style ground truth.
    println!("building Dataset A bundle (trains GenDT and baselines)...");
    let mut eval_cfg = EvalCfg::quick(55);
    eval_cfg.out_dir = std::env::temp_dir().join("gendt-qoe-example");
    let bundle = Bundle::dataset_a(&eval_cfg);
    println!("training the QoE predictor on measured RSRP/RSRQ + throughput...");
    let mut qoe = QoePredictor::new(55, false);
    qoe.fit(&bundle, 6);

    // Re-train a slightly larger GenDT for generation quality.
    let ds = dataset_a(&BuildCfg {
        scale: 0.10,
        ..BuildCfg::full(55)
    });
    let cfg = GenDtCfg::fast(4, 55);
    let ctx_cfg = ContextCfg {
        max_cells: cfg.window.max_cells,
        ..ContextCfg::default()
    };
    let mut pool = Vec::new();
    for run in &ds.runs {
        let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ctx_cfg);
        pool.extend(windows(run, &ctx, &Kpi::DATASET_A, &cfg.window));
    }
    let mut model = GenDt::new(cfg);
    model.train(&pool);

    // A planned delivery route.
    let route = generate(
        &bundle.ds.world,
        &TrajectoryCfg::new(Scenario::CityDrive, 480.0, XY::new(-1200.0, 800.0), 77),
    );
    let ctx_cfg2 = ContextCfg {
        max_cells: bundle.model_cfg.window.max_cells,
        ..ContextCfg::default()
    };
    let ctx = extract(&bundle.ds.world, &bundle.ds.deployment, &route, &ctx_cfg2);
    let gen = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 7);
    let rsrp = gen.channel(Kpi::Rsrp).unwrap();
    let rsrq = gen.channel(Kpi::Rsrq).unwrap();

    // Predict throughput along the route from the generated KPIs.
    // (The predictor consumes RSRP/RSRQ plus position/speed from the run's
    // trajectory; we reuse its feature path via a fake run entry is not
    // needed — feed positions directly.)
    let extent = bundle.ds.world.cfg.extent_m;
    let mut low_spots = 0usize;
    let mut tputs = Vec::new();
    for (k, p) in route.points.iter().take(rsrp.len()).enumerate() {
        let t = qoe.predict_point(rsrp[k], rsrq[k], p.pos.x, p.pos.y, p.speed, extent);
        if t < 3.0 {
            low_spots += 1;
        }
        tputs.push(t);
    }
    println!(
        "\npredicted QoE along the planned route ({} samples):",
        tputs.len()
    );
    println!(
        "  mean throughput {:.2} Mbit/s",
        gendt_metrics::mean(&tputs)
    );
    println!(
        "  worst segment  {:.2} Mbit/s",
        tputs.iter().cloned().fold(f64::MAX, f64::min)
    );
    println!(
        "  {:.1}% of the route below 3 Mbit/s",
        100.0 * low_spots as f64 / tputs.len().max(1) as f64
    );
    println!("\nAll of this was derived from context alone — no truck was dispatched.");
}
