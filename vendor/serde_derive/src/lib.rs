//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored Value-based `serde` traits, using hand-rolled token
//! parsing (the real crate's `syn`/`quote` stack is unavailable offline).
//!
//! Supported shapes — exactly what this workspace derives:
//!
//! * non-generic structs with named fields,
//! * non-generic tuple structs,
//! * non-generic enums with fieldless (unit) variants, with or without
//!   explicit discriminants.
//!
//! Anything else (generics, data-carrying enums, `#[serde(...)]`
//! attributes) panics at macro-expansion time with a clear message, so
//! unsupported uses fail the build loudly instead of miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// `struct Name { a: T, b: U }`
    Named { name: String, fields: Vec<String> },
    /// `struct Name(T, U);`
    Tuple { name: String, arity: usize },
    /// `enum Name { A, B = 1 }`
    UnitEnum { name: String, variants: Vec<String> },
}

/// Skip attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) at the current position.
fn skip_meta(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                // The attribute body `[...]`.
                it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Split a field/variant body on commas at angle-bracket depth zero.
/// Parentheses/brackets/braces arrive as atomic groups, but `<...>` in
/// type paths is a plain punct sequence and must be depth-tracked.
fn split_top_level(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut depth: i32 = 0;
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extract the field name from one named-field segment
/// (`#[attr] pub name: Type`).
fn field_name(seg: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < seg.len() {
        match &seg[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = seg.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                // Must be followed by ':' to be a field name.
                if matches!(seg.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
                    return Some(id.to_string());
                }
                return None;
            }
            _ => return None,
        }
    }
    None
}

/// Extract the variant name from one enum-variant segment
/// (`#[attr] Name` or `#[attr] Name = 3`). Panics on data variants.
fn variant_name(seg: &[TokenTree], enum_name: &str) -> Option<String> {
    let mut i = 0;
    while i < seg.len() {
        match &seg[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                if let Some(TokenTree::Group(_)) = seg.get(i + 1) {
                    panic!(
                        "vendored serde_derive: enum {enum_name} has a data-carrying \
                         variant {id}; only fieldless enums are supported"
                    );
                }
                return Some(id.to_string());
            }
            _ => return None,
        }
    }
    None
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut it = input.into_iter().peekable();
    skip_meta(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected item name, got {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive: generic type {name} is not supported");
    }
    match kind.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = split_top_level(g.stream())
                    .iter()
                    .filter_map(|seg| field_name(seg))
                    .collect();
                Shape::Named { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level(g.stream()).len();
                Shape::Tuple { name, arity }
            }
            other => panic!("vendored serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = split_top_level(g.stream())
                    .iter()
                    .filter_map(|seg| variant_name(seg, &name))
                    .collect();
                Shape::UnitEnum { name, variants }
            }
            other => panic!("vendored serde_derive: unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("vendored serde_derive: cannot derive for `{other}` items"),
    }
}

/// `#[derive(Serialize)]` — implements `serde::Serialize::to_value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match shape {
        Shape::Named { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::Tuple { name, arity } => {
            let entries: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "Self::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    code.parse()
        .expect("vendored serde_derive: generated invalid Serialize impl")
}

/// `#[derive(Deserialize)]` — implements `serde::Deserialize::from_value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match shape {
        Shape::Named { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::map_field(m, \"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let m = v.as_map_for(\"{name}\")?;\n\
                         ::std::result::Result::Ok(Self {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Tuple { name, arity } => {
            let inits: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let s = v.as_seq_for(\"{name}\")?;\n\
                         if s.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::Error::msg(\
                                 ::std::format!(\"expected {arity} elements for {name}, got {{}}\", s.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok(Self({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok(Self::{v})"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str_for(\"{name}\")? {{\n\
                             {},\n\
                             other => ::std::result::Result::Err(::serde::Error::msg(\
                                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse()
        .expect("vendored serde_derive: generated invalid Deserialize impl")
}
