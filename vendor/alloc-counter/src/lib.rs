//! Allocation-counting global allocator (offline stand-in, see
//! `vendor/README.md`): wraps the system allocator and keeps per-thread
//! counters of allocation calls and bytes requested.
//!
//! Install it in a test or bench binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;
//! ```
//!
//! then bracket the region of interest with [`snapshot`] and diff the
//! two [`Counts`]. Counters are thread-local, so a measurement only
//! sees the current thread's traffic — worker pools (rayon bridges and
//! the like) must be sized to one thread, or measured around, for an
//! exact count.
//!
//! This crate is the workspace's one deliberate `unsafe` island: a
//! `GlobalAlloc` impl cannot be written without it, and the production
//! crates all carry `#![forbid(unsafe_code)]`. The unsafety is confined
//! to forwarding the four allocator entry points to `std::alloc::System`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Cumulative allocator traffic on the current thread at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    /// Number of allocation calls (`alloc`, `alloc_zeroed`, and the
    /// growth side of `realloc`).
    pub allocs: u64,
    /// Total bytes requested by those calls.
    pub bytes: u64,
}

impl Counts {
    /// Traffic between `earlier` and `self` (saturating, so a stale
    /// snapshot from another thread cannot underflow).
    pub fn since(&self, earlier: Counts) -> Counts {
        Counts {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Current thread's cumulative counters.
pub fn snapshot() -> Counts {
    Counts {
        allocs: ALLOCS.with(|c| c.get()),
        bytes: BYTES.with(|c| c.get()),
    }
}

#[inline]
fn record(bytes: usize) {
    ALLOCS.with(|c| c.set(c.get() + 1));
    BYTES.with(|c| c.set(c.get() + bytes as u64));
}

/// The counting allocator: forwards to [`System`], tallying per-thread.
pub struct CountingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// GlobalAlloc contract; the counter updates are plain thread-local
// stores with no aliasing or reentrancy (Cell ops do not allocate).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Only growth is a fresh allocation; shrinking reuses the block.
        if new_size > layout.size() {
            record(new_size);
        }
        System.realloc(ptr, layout, new_size)
    }
}
