//! Offline stand-in for the `rayon` crate.
//!
//! Implements the fork-join subset this workspace uses — [`scope`],
//! [`Scope::spawn`], [`join`], [`ThreadPoolBuilder`], and
//! [`current_num_threads`] — on top of `std::thread::scope`. There is no
//! work-stealing pool: each `spawn` is an OS thread for the duration of
//! the scope, which is adequate for the coarse-grained tasks (matrix row
//! blocks, training shards) this workspace spawns. When the configured
//! thread count is 1, everything runs inline on the caller's thread with
//! zero spawn overhead.
//!
//! Callers must not depend on execution order or thread identity for
//! results — the same contract real rayon imposes.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configured global thread count. 0 = unset (fall back to available
/// parallelism, capped to keep spawn-per-task viable).
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of threads the global "pool" would use, mirroring
/// `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    let n = NUM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(16)
}

/// Error from [`ThreadPoolBuilder::build_global`]. Never actually
/// produced by this shim (re-initialisation just overwrites the count),
/// but kept so caller signatures match real rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool initialisation failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the global thread count, mirroring
/// `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Create a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the thread count (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configured thread count globally. Unlike real rayon,
    /// calling this twice is not an error; the latest value wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        NUM_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// A fork-join scope handed to the [`scope`] closure, mirroring
/// `rayon::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: Option<&'scope std::thread::Scope<'scope, 'env>>,
    _env: PhantomData<&'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task into the scope. Runs on a fresh OS thread when the
    /// scope is threaded, inline otherwise.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        match self.inner {
            Some(ts) => {
                ts.spawn(move || {
                    let s = Scope {
                        inner: Some(ts),
                        _env: PhantomData,
                    };
                    f(&s);
                });
            }
            None => {
                let s = Scope {
                    inner: None,
                    _env: PhantomData,
                };
                f(&s);
            }
        }
    }
}

/// Create a fork-join scope: all tasks spawned inside have completed when
/// this returns. Mirrors `rayon::scope`. With a global thread count of 1
/// the closure and its spawns run entirely inline.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    if current_num_threads() <= 1 {
        let s = Scope {
            inner: None,
            _env: PhantomData,
        };
        f(&s)
    } else {
        std::thread::scope(|ts| {
            let s = Scope {
                inner: Some(ts),
                _env: PhantomData,
            };
            f(&s)
        })
    }
}

/// Run two closures, returning both results. Mirrors `rayon::join`; this
/// shim runs them sequentially (a is first), which satisfies rayon's
/// semantics since `join` makes no parallelism guarantee.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn scope_joins_all_spawns() {
        let counter = AtomicU32::new(0);
        ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .unwrap();
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn inline_scope_runs_spawns() {
        let counter = AtomicU32::new(0);
        let s = Scope {
            inner: None,
            _env: PhantomData,
        };
        s.spawn(|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicU32::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
