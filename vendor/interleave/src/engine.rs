//! Schedule decision engines: seeded pseudo-random exploration and
//! bounded-preemption depth-first enumeration, plus a fixed-choice replay
//! engine for reproducing a failure from its printed token.

use crate::rng::SplitMix64;

/// A single decision point recorded by the DFS engine.
///
/// Options are enumerated by `rank`: rank 0 is the default option
/// (continue the current thread when possible), ranks 1..n cover the
/// remaining options in index order. This guarantees every option is
/// eventually tried regardless of where the default sits.
#[derive(Clone, Debug)]
pub struct ChoicePoint {
    /// Number of options that were available.
    n: usize,
    /// Enumeration rank taken on the current schedule.
    rank: usize,
    /// The "default" option (continue the current thread when possible).
    default_idx: usize,
    /// Whether non-default picks here are free (the running thread was
    /// blocked, so *some* switch was forced) or count against the
    /// preemption budget.
    free: bool,
}

impl ChoicePoint {
    fn chosen(&self) -> usize {
        if self.rank == 0 {
            self.default_idx
        } else {
            let idx = self.rank - 1;
            if idx < self.default_idx {
                idx
            } else {
                idx + 1
            }
        }
    }
}

/// Decision engine driving one exploration run.
pub enum Engine {
    /// Uniform random choices from a per-schedule seed.
    Random(SplitMix64),
    /// Iterative bounded-preemption DFS over decision prefixes.
    Dfs {
        /// Decision prefix being replayed / extended this schedule.
        stack: Vec<ChoicePoint>,
        /// Cursor into `stack` during the current schedule.
        cursor: usize,
        /// Maximum non-forced context switches per schedule.
        max_preemptions: u32,
        /// Set when the prefix tree is exhausted.
        exhausted: bool,
    },
    /// Replays an explicit recorded choice list (failure reproduction).
    Fixed {
        /// Recorded choices from the failing schedule.
        choices: Vec<u32>,
        /// Cursor into `choices`.
        cursor: usize,
    },
}

impl Engine {
    /// Random engine for one schedule, seeded with that schedule's seed.
    pub fn random(schedule_seed: u64) -> Self {
        Engine::Random(SplitMix64::new(schedule_seed))
    }

    /// Fresh DFS engine with the given preemption bound.
    pub fn dfs(max_preemptions: u32) -> Self {
        Engine::Dfs {
            stack: Vec::new(),
            cursor: 0,
            max_preemptions,
            exhausted: false,
        }
    }

    /// Fixed-replay engine over a recorded choice list.
    pub fn fixed(choices: Vec<u32>) -> Self {
        Engine::Fixed { choices, cursor: 0 }
    }

    /// Picks one of `n` options. `default_idx` is "keep running the current
    /// thread" when that thread is still runnable; `free` marks decision
    /// points where the current thread was blocked (a switch is forced and
    /// does not consume DFS preemption budget).
    pub fn choose(&mut self, n: usize, default_idx: usize, free: bool) -> usize {
        debug_assert!(n > 0 && default_idx < n);
        match self {
            Engine::Random(rng) => rng.below(n),
            Engine::Dfs { stack, cursor, .. } => {
                let idx = if *cursor < stack.len() {
                    // Replaying the mutated prefix. If the program offered a
                    // different option count (should not happen for a
                    // deterministic body), clamp defensively.
                    stack[*cursor].chosen().min(n - 1)
                } else {
                    stack.push(ChoicePoint {
                        n,
                        rank: 0,
                        default_idx,
                        free,
                    });
                    default_idx
                };
                *cursor += 1;
                idx
            }
            Engine::Fixed { choices, cursor } => {
                let idx = choices
                    .get(*cursor)
                    .map(|&c| c as usize)
                    .unwrap_or(default_idx);
                *cursor += 1;
                idx.min(n - 1)
            }
        }
    }

    /// Advances to the next schedule. Returns `false` when exploration is
    /// complete (DFS tree exhausted, or a single-shot replay finished).
    pub fn next_schedule(&mut self, next_seed: u64) -> bool {
        match self {
            Engine::Random(rng) => {
                *rng = SplitMix64::new(next_seed);
                true
            }
            Engine::Dfs {
                stack,
                cursor,
                max_preemptions,
                exhausted,
            } => {
                // Find the deepest choice point that can be advanced without
                // blowing the preemption budget of its prefix. Every rank
                // past 0 is a non-default option, so its cost is uniform:
                // either the budget admits the next rank or none at all.
                let mut i = stack.len();
                while i > 0 {
                    i -= 1;
                    let budget_used: u32 = stack[..i]
                        .iter()
                        .map(|c| u32::from(!c.free && c.rank != 0))
                        .sum();
                    let cp = &mut stack[i];
                    let cost = u32::from(!cp.free);
                    if cp.rank + 1 < cp.n && budget_used + cost <= *max_preemptions {
                        cp.rank += 1;
                        stack.truncate(i + 1);
                        *cursor = 0;
                        return true;
                    }
                }
                *exhausted = true;
                false
            }
            Engine::Fixed { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_enumerates_defaults_first() {
        let mut e = Engine::dfs(2);
        // First schedule: all defaults.
        assert_eq!(e.choose(3, 0, false), 0);
        assert_eq!(e.choose(2, 1, false), 1);
        assert!(e.next_schedule(0));
        // Second schedule: deepest point advanced past its default.
        assert_eq!(e.choose(3, 0, false), 0);
        assert_eq!(e.choose(2, 1, false), 0);
    }

    #[test]
    fn dfs_respects_preemption_budget() {
        let mut e = Engine::dfs(0);
        // With budget 0 every non-forced point is pinned to its default,
        // so a body with only non-free choices has exactly one schedule.
        assert_eq!(e.choose(3, 1, false), 1);
        assert_eq!(e.choose(3, 1, false), 1);
        assert!(!e.next_schedule(0));
    }

    #[test]
    fn dfs_free_points_always_enumerable() {
        let mut e = Engine::dfs(0);
        assert_eq!(e.choose(2, 0, true), 0);
        assert!(e.next_schedule(0));
        assert_eq!(e.choose(2, 0, true), 1);
        assert!(!e.next_schedule(0));
    }

    #[test]
    fn fixed_replays_choices() {
        let mut e = Engine::fixed(vec![2, 0, 1]);
        assert_eq!(e.choose(3, 0, false), 2);
        assert_eq!(e.choose(2, 1, false), 0);
        assert_eq!(e.choose(2, 0, false), 1);
        // Past the recorded list: fall back to default.
        assert_eq!(e.choose(4, 3, false), 3);
        assert!(!e.next_schedule(0));
    }
}
