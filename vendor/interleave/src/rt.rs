//! Exploration runtime: cooperative serialization of real OS threads.
//!
//! Exactly one *participant* thread executes user code at any moment. Every
//! sync operation (lock, unlock, wait, notify, atomic access, channel op,
//! spawn, join) is a yield point that hands control to the schedule engine,
//! which picks the next thread to run. Blocking operations are modeled: the
//! underlying `std` primitives owned by the facade are only ever taken
//! uncontended, so the model alone decides who blocks and who proceeds.
//!
//! Detection machinery carried per schedule:
//! - vector clocks (happens-before) on every thread and sync object,
//! - a per-atomic store log driving lost-update reports,
//! - a lock-order graph with cycle detection (ABBA deadlocks even when the
//!   deadlocking interleaving itself was not hit),
//! - an "all blocked" check at schedule points (deadlocks / lost wakeups),
//! - a step budget (livelock / missed-progress guard).

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::engine::Engine;
use crate::vc::VectorClock;
use crate::{Failure, FailureKind};

/// Panic payload used to unwind participant threads when a schedule is
/// aborted (failure found, budget exhausted, or end of schedule). Never
/// escapes the crate: child wrappers and `explore` both swallow it.
pub(crate) struct Abort;

/// How many recent transitions are kept for failure reports.
const TRACE_CAP: usize = 120;

// ---------------------------------------------------------------------------
// Thread-local participant identity
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Ctx {
    exp: Arc<Exploration>,
    tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

fn cur_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(exp: Arc<Exploration>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { exp, tid }));
}

fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// True when the calling thread is a registered participant of an active
/// exploration. The facade consults this on every sync op; off the checker
/// harness it is a single thread-local read returning `false`.
pub fn participating() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

// ---------------------------------------------------------------------------
// Model state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Wake {
    Notified,
    Spurious,
    TimedOut,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    OnLock(usize),
    OnRw {
        key: usize,
        write: bool,
    },
    OnCv {
        cv: usize,
        mutex: usize,
        wake_at: Option<u64>,
    },
    OnRecv(usize),
    OnJoin(usize),
    Finished,
}

struct ThreadState {
    name: String,
    status: Status,
    vc: VectorClock,
    held: Vec<usize>,
    last_loads: HashMap<usize, u64>,
    pending_wake: Option<Wake>,
}

impl ThreadState {
    fn new(name: String, vc: VectorClock) -> Self {
        Self {
            name,
            status: Status::Runnable,
            vc,
            held: Vec::new(),
            last_loads: HashMap::new(),
            pending_wake: None,
        }
    }
}

struct StoreEvt {
    version: u64,
    tid: usize,
    vc: VectorClock,
}

enum ObjState {
    Mutex {
        locked_by: Option<usize>,
        vc: VectorClock,
    },
    Rw {
        writer: Option<usize>,
        readers: Vec<usize>,
        vc: VectorClock,
    },
    Atomic {
        version: u64,
        vc: VectorClock,
        stores: Vec<StoreEvt>,
    },
    Chan {
        vc: VectorClock,
    },
}

/// Scheduling option at a decision point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Opt {
    Run(usize),
    FireTimeout(usize),
    Spurious(usize),
}

pub(crate) struct RunCfg {
    pub max_steps: u64,
    pub spurious: u32,
}

struct PendingFailure {
    kind: FailureKind,
    message: String,
}

struct ExpState {
    engine: Option<Engine>,
    threads: Vec<ThreadState>,
    running: Option<usize>,
    clock_ns: u64,
    steps: u64,
    max_steps: u64,
    spurious_left: u32,
    /// Participant OS threads whose wrapper has not yet returned. Teardown
    /// blocks until this reaches zero so no thread outlives the schedule
    /// (its unwind panic must land while the quiet panic hook is active).
    os_live: usize,
    aborted: bool,
    failure: Option<PendingFailure>,
    objects: HashMap<usize, ObjState>,
    lock_edges: BTreeSet<(usize, usize)>,
    choices: Vec<u32>,
    trace: VecDeque<String>,
}

pub(crate) struct ScheduleOutcome {
    pub steps: u64,
    pub failure: Option<(FailureKind, String, Vec<u32>, Vec<String>)>,
}

impl ExpState {
    fn trace_evt(&mut self, msg: String) {
        if self.trace.len() == TRACE_CAP {
            self.trace.pop_front();
        }
        self.trace
            .push_back(format!("[step {:>5}] {}", self.steps, msg));
    }

    fn tname(&self, tid: usize) -> String {
        format!("t{}:{}", tid, self.threads[tid].name)
    }

    fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.trace_evt(format!("FAILURE[{kind:?}]: {message}"));
            self.failure = Some(PendingFailure { kind, message });
        }
        self.aborted = true;
    }

    fn choose(&mut self, n: usize, default_idx: usize, free: bool) -> usize {
        let idx = self
            .engine
            .as_mut()
            .expect("engine present during schedule")
            .choose(n, default_idx, free);
        self.choices.push(idx as u32);
        idx
    }

    fn enabled(&self, tid: usize) -> bool {
        match &self.threads[tid].status {
            Status::Runnable => true,
            Status::OnLock(k) => !matches!(
                self.objects.get(k),
                Some(ObjState::Mutex {
                    locked_by: Some(_),
                    ..
                })
            ),
            Status::OnRw { key, write } => match self.objects.get(key) {
                Some(ObjState::Rw {
                    writer, readers, ..
                }) => {
                    if *write {
                        writer.is_none() && readers.is_empty()
                    } else {
                        writer.is_none()
                    }
                }
                _ => true,
            },
            Status::OnCv { .. } | Status::OnRecv(_) | Status::Finished => false,
            Status::OnJoin(t) => self.threads[*t].status == Status::Finished,
        }
    }

    /// Core decision point: pick the next thread to run. Loops over
    /// timeout-fire / spurious-wake meta-choices until an actual thread is
    /// granted, or reports a deadlock when nothing can ever run again.
    fn reschedule(&mut self, current: usize) {
        loop {
            if self.aborted {
                return;
            }
            let mut opts: Vec<Opt> = Vec::new();
            for tid in 0..self.threads.len() {
                if self.enabled(tid) {
                    opts.push(Opt::Run(tid));
                }
            }
            for tid in 0..self.threads.len() {
                if let Status::OnCv {
                    wake_at: Some(_), ..
                } = self.threads[tid].status
                {
                    opts.push(Opt::FireTimeout(tid));
                }
            }
            if self.spurious_left > 0 {
                for tid in 0..self.threads.len() {
                    if matches!(self.threads[tid].status, Status::OnCv { .. }) {
                        opts.push(Opt::Spurious(tid));
                    }
                }
            }
            if opts.is_empty() {
                if self.threads.iter().all(|t| t.status == Status::Finished) {
                    self.running = None;
                    return;
                }
                let blocked: Vec<String> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status != Status::Finished)
                    .map(|(i, t)| format!("{} {:?}", self.tname(i), t.status))
                    .collect();
                let has_cv = blocked.iter().any(|b| b.contains("OnCv"));
                let what = if has_cv {
                    "deadlock (possible lost wakeup)"
                } else {
                    "deadlock"
                };
                self.fail(
                    FailureKind::Deadlock,
                    format!("{what}: all live threads blocked: {}", blocked.join("; ")),
                );
                return;
            }
            let default_idx = opts
                .iter()
                .position(|o| *o == Opt::Run(current))
                .unwrap_or(0);
            let free = opts[default_idx] != Opt::Run(current);
            let idx = self.choose(opts.len(), default_idx, free);
            match opts[idx] {
                Opt::Run(t) => {
                    if self.running != Some(t) {
                        self.trace_evt(format!("switch -> {}", self.tname(t)));
                    }
                    self.running = Some(t);
                    return;
                }
                Opt::FireTimeout(t) => {
                    if let Status::OnCv {
                        mutex,
                        wake_at: Some(w),
                        ..
                    } = self.threads[t].status
                    {
                        self.clock_ns = self.clock_ns.max(w);
                        self.threads[t].pending_wake = Some(Wake::TimedOut);
                        self.threads[t].status = Status::OnLock(mutex);
                        let name = self.tname(t);
                        self.trace_evt(format!(
                            "timeout fires for {name}, clock -> {} ns",
                            self.clock_ns
                        ));
                    }
                }
                Opt::Spurious(t) => {
                    if let Status::OnCv { mutex, .. } = self.threads[t].status {
                        self.spurious_left -= 1;
                        self.threads[t].pending_wake = Some(Wake::Spurious);
                        self.threads[t].status = Status::OnLock(mutex);
                        let name = self.tname(t);
                        self.trace_evt(format!("spurious wakeup injected for {name}"));
                    }
                }
            }
        }
    }

    /// True when `to` is reachable from `from` in the lock-order graph.
    fn lock_path_exists(&self, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            for &(a, b) in self.lock_edges.iter() {
                if a == n {
                    stack.push(b);
                }
            }
        }
        false
    }

    fn record_lock_order(&mut self, tid: usize, key: usize) {
        let held = self.threads[tid].held.clone();
        for h in held {
            if h == key {
                continue;
            }
            if !self.lock_edges.contains(&(h, key)) {
                // Adding h -> key closes a cycle iff key already reaches h.
                if self.lock_path_exists(key, h) {
                    let name = self.tname(tid);
                    self.fail(
                        FailureKind::LockOrderCycle,
                        format!(
                            "lock-order cycle: {name} acquires {key:#x} while holding {h:#x}, \
                             but {key:#x} -> {h:#x} was observed on another path"
                        ),
                    );
                }
                self.lock_edges.insert((h, key));
            }
        }
    }

    fn acquire_mutex(&mut self, tid: usize, key: usize) {
        let obj = self.objects.entry(key).or_insert(ObjState::Mutex {
            locked_by: None,
            vc: VectorClock::new(),
        });
        if !matches!(obj, ObjState::Mutex { .. }) {
            *obj = ObjState::Mutex {
                locked_by: None,
                vc: VectorClock::new(),
            };
        }
        if let ObjState::Mutex { locked_by, vc } = obj {
            debug_assert!(locked_by.is_none(), "model granted a held mutex");
            *locked_by = Some(tid);
            let ovc = vc.clone();
            self.threads[tid].vc.merge(&ovc);
        }
        self.record_lock_order(tid, key);
        self.threads[tid].held.push(key);
        self.threads[tid].status = Status::Runnable;
        let name = self.tname(tid);
        self.trace_evt(format!("{name} acquires mutex {key:#x}"));
    }

    fn release_mutex(&mut self, tid: usize, key: usize) {
        let tvc = self.threads[tid].vc.clone();
        if let Some(ObjState::Mutex { locked_by, vc }) = self.objects.get_mut(&key) {
            *locked_by = None;
            vc.merge(&tvc);
        }
        if let Some(pos) = self.threads[tid].held.iter().position(|&k| k == key) {
            self.threads[tid].held.swap_remove(pos);
        }
        let name = self.tname(tid);
        self.trace_evt(format!("{name} releases mutex {key:#x}"));
    }

    fn acquire_rw(&mut self, tid: usize, key: usize, write: bool) {
        let obj = self.objects.entry(key).or_insert(ObjState::Rw {
            writer: None,
            readers: Vec::new(),
            vc: VectorClock::new(),
        });
        if !matches!(obj, ObjState::Rw { .. }) {
            *obj = ObjState::Rw {
                writer: None,
                readers: Vec::new(),
                vc: VectorClock::new(),
            };
        }
        if let ObjState::Rw {
            writer,
            readers,
            vc,
        } = obj
        {
            if write {
                debug_assert!(writer.is_none() && readers.is_empty());
                *writer = Some(tid);
            } else {
                debug_assert!(writer.is_none());
                readers.push(tid);
            }
            let ovc = vc.clone();
            self.threads[tid].vc.merge(&ovc);
        }
        self.record_lock_order(tid, key);
        self.threads[tid].held.push(key);
        self.threads[tid].status = Status::Runnable;
        let name = self.tname(tid);
        let kind = if write { "write" } else { "read" };
        self.trace_evt(format!("{name} acquires rwlock({kind}) {key:#x}"));
    }

    fn release_rw(&mut self, tid: usize, key: usize, write: bool) {
        let tvc = self.threads[tid].vc.clone();
        if let Some(ObjState::Rw {
            writer,
            readers,
            vc,
        }) = self.objects.get_mut(&key)
        {
            if write {
                *writer = None;
            } else if let Some(pos) = readers.iter().position(|&r| r == tid) {
                readers.swap_remove(pos);
            }
            vc.merge(&tvc);
        }
        if let Some(pos) = self.threads[tid].held.iter().position(|&k| k == key) {
            self.threads[tid].held.swap_remove(pos);
        }
        let name = self.tname(tid);
        self.trace_evt(format!("{name} releases rwlock {key:#x}"));
    }

    fn atomic_access(
        &mut self,
        tid: usize,
        key: usize,
        kind: AtomicKind,
        acquire: bool,
        release: bool,
    ) {
        let obj = self.objects.entry(key).or_insert(ObjState::Atomic {
            version: 0,
            vc: VectorClock::new(),
            stores: Vec::new(),
        });
        if !matches!(obj, ObjState::Atomic { .. }) {
            *obj = ObjState::Atomic {
                version: 0,
                vc: VectorClock::new(),
                stores: Vec::new(),
            };
        }
        let mut lost_update: Option<String> = None;
        if let ObjState::Atomic {
            version,
            vc,
            stores,
        } = obj
        {
            let t = &mut self.threads[tid];
            match kind {
                AtomicKind::Load => {
                    if acquire {
                        t.vc.merge(vc);
                    }
                    t.last_loads.insert(key, *version);
                }
                AtomicKind::Store => {
                    if let Some(&seen) = t.last_loads.get(&key) {
                        for evt in stores.iter() {
                            if evt.version > seen && evt.tid != tid && !evt.vc.dominated_by(&t.vc) {
                                lost_update = Some(format!(
                                    "lost update on atomic {key:#x}: thread {tid} stores after \
                                     loading version {seen}, but thread {} concurrently stored \
                                     version {} that was never observed",
                                    evt.tid, evt.version
                                ));
                                break;
                            }
                        }
                    }
                    *version += 1;
                    if release {
                        vc.merge(&t.vc);
                    }
                    stores.push(StoreEvt {
                        version: *version,
                        tid,
                        vc: t.vc.clone(),
                    });
                    t.last_loads.insert(key, *version);
                }
                AtomicKind::Rmw => {
                    if acquire {
                        t.vc.merge(vc);
                    }
                    *version += 1;
                    if release {
                        vc.merge(&t.vc);
                    }
                    stores.push(StoreEvt {
                        version: *version,
                        tid,
                        vc: t.vc.clone(),
                    });
                    t.last_loads.insert(key, *version);
                }
            }
        }
        if let Some(msg) = lost_update {
            self.fail(FailureKind::LostUpdate, msg);
        }
    }
}

// ---------------------------------------------------------------------------
// Exploration: the shared coordinator
// ---------------------------------------------------------------------------

pub(crate) struct Exploration {
    state: StdMutex<ExpState>,
    cv: StdCondvar,
}

type Guard<'a> = StdMutexGuard<'a, ExpState>;

impl Exploration {
    pub(crate) fn new(engine: Engine, cfg: &RunCfg, root_name: &str) -> Self {
        let mut threads = Vec::new();
        let mut vc = VectorClock::new();
        vc.tick(0);
        threads.push(ThreadState::new(root_name.to_string(), vc));
        Self {
            state: StdMutex::new(ExpState {
                engine: Some(engine),
                threads,
                running: Some(0),
                clock_ns: 0,
                steps: 0,
                max_steps: cfg.max_steps,
                spurious_left: cfg.spurious,
                os_live: 0,
                aborted: false,
                failure: None,
                objects: HashMap::new(),
                lock_edges: BTreeSet::new(),
                choices: Vec::new(),
                trace: VecDeque::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> Guard<'_> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Op prologue: abort propagation, step accounting, livelock guard,
    /// own-clock tick. `panic_on_abort` is false for ops reachable from
    /// `Drop` impls (a panic inside a drop during unwind would abort the
    /// process).
    fn enter(&self, tid: usize, panic_on_abort: bool) -> Option<Guard<'_>> {
        let mut st = self.lock();
        if st.aborted {
            drop(st);
            if panic_on_abort {
                panic_any(Abort);
            }
            return None;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let budget = st.max_steps;
            st.fail(
                FailureKind::Livelock,
                format!("step budget {budget} exceeded (livelock or runaway schedule)"),
            );
            drop(st);
            self.cv.notify_all();
            if panic_on_abort {
                panic_any(Abort);
            }
            return None;
        }
        st.threads[tid].vc.tick(tid);
        Some(st)
    }

    /// Blocks until this thread is granted. Panics with `Abort` on abort.
    fn wait_granted<'a>(&'a self, mut st: Guard<'a>, tid: usize) -> Guard<'a> {
        if !st.aborted && st.running == Some(tid) {
            return st;
        }
        self.cv.notify_all();
        loop {
            if st.aborted {
                drop(st);
                self.cv.notify_all();
                panic_any(Abort);
            }
            if st.running == Some(tid) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-panicking variant for drop-context ops: returns `None` on abort.
    fn wait_granted_opt<'a>(&'a self, mut st: Guard<'a>, tid: usize) -> Option<Guard<'a>> {
        if !st.aborted && st.running == Some(tid) {
            return Some(st);
        }
        self.cv.notify_all();
        loop {
            if st.aborted {
                drop(st);
                self.cv.notify_all();
                return None;
            }
            if st.running == Some(tid) {
                return Some(st);
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn yield_and_wait<'a>(&'a self, mut st: Guard<'a>, tid: usize) -> Guard<'a> {
        st.reschedule(tid);
        self.wait_granted(st, tid)
    }

    /// Op epilogue: if a failure was recorded while we held the grant, wake
    /// all blocked threads so the abort propagates.
    fn finish_op(&self, st: Guard<'_>) {
        let aborted = st.aborted;
        drop(st);
        if aborted {
            self.cv.notify_all();
        }
    }

    // -- individual operations ------------------------------------------------

    fn op_yield(&self, tid: usize) {
        let Some(st) = self.enter(tid, true) else {
            return;
        };
        let st = self.yield_and_wait(st, tid);
        self.finish_op(st);
    }

    fn op_mutex_lock(&self, tid: usize, key: usize) {
        let Some(mut st) = self.enter(tid, true) else {
            return;
        };
        st.threads[tid].status = Status::OnLock(key);
        let mut st = self.yield_and_wait(st, tid);
        st.acquire_mutex(tid, key);
        self.finish_op(st);
    }

    fn op_mutex_unlock(&self, tid: usize, key: usize) {
        let Some(mut st) = self.enter(tid, false) else {
            return;
        };
        st.release_mutex(tid, key);
        st.reschedule(tid);
        if let Some(st) = self.wait_granted_opt(st, tid) {
            self.finish_op(st);
        }
    }

    fn op_rw_lock(&self, tid: usize, key: usize, write: bool) {
        let Some(mut st) = self.enter(tid, true) else {
            return;
        };
        st.threads[tid].status = Status::OnRw { key, write };
        let mut st = self.yield_and_wait(st, tid);
        st.acquire_rw(tid, key, write);
        self.finish_op(st);
    }

    fn op_rw_unlock(&self, tid: usize, key: usize, write: bool) {
        let Some(mut st) = self.enter(tid, false) else {
            return;
        };
        st.release_rw(tid, key, write);
        st.reschedule(tid);
        if let Some(st) = self.wait_granted_opt(st, tid) {
            self.finish_op(st);
        }
    }

    fn op_cv_wait(&self, tid: usize, cv: usize, mutex: usize, timeout_ns: Option<u64>) -> bool {
        let Some(mut st) = self.enter(tid, true) else {
            return false;
        };
        st.release_mutex(tid, mutex);
        let wake_at = timeout_ns.map(|ns| st.clock_ns.saturating_add(ns));
        st.threads[tid].pending_wake = None;
        st.threads[tid].status = Status::OnCv { cv, mutex, wake_at };
        let name = st.tname(tid);
        st.trace_evt(format!(
            "{name} waits on condvar {cv:#x} (mutex {mutex:#x}, timeout {timeout_ns:?} ns)"
        ));
        let mut st = self.yield_and_wait(st, tid);
        st.acquire_mutex(tid, mutex);
        let wake = st.threads[tid].pending_wake.take();
        self.finish_op(st);
        wake == Some(Wake::TimedOut)
    }

    fn op_cv_notify(&self, tid: usize, cv: usize, all: bool) {
        let Some(mut st) = self.enter(tid, true) else {
            return;
        };
        let waiters: Vec<usize> = (0..st.threads.len())
            .filter(|&t| matches!(st.threads[t].status, Status::OnCv { cv: c, .. } if c == cv))
            .collect();
        if waiters.is_empty() {
            let name = st.tname(tid);
            st.trace_evt(format!(
                "{name} notifies condvar {cv:#x}: no waiters (signal dropped)"
            ));
        } else if all {
            for &w in &waiters {
                wake_waiter(&mut st, w, tid);
            }
        } else {
            let idx = if waiters.len() == 1 {
                0
            } else {
                st.choose(waiters.len(), 0, true)
            };
            wake_waiter(&mut st, waiters[idx], tid);
        }
        let st = self.yield_and_wait(st, tid);
        self.finish_op(st);
    }

    fn op_atomic(&self, tid: usize, key: usize, kind: AtomicKind, acquire: bool, release: bool) {
        let Some(st) = self.enter(tid, true) else {
            return;
        };
        let mut st = self.yield_and_wait(st, tid);
        st.atomic_access(tid, key, kind, acquire, release);
        self.finish_op(st);
    }

    fn op_chan_published(&self, tid: usize, key: usize) {
        let Some(mut st) = self.enter(tid, false) else {
            return;
        };
        let tvc = st.threads[tid].vc.clone();
        let obj = st.objects.entry(key).or_insert(ObjState::Chan {
            vc: VectorClock::new(),
        });
        if let ObjState::Chan { vc } = obj {
            vc.merge(&tvc);
        }
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::OnRecv(key) {
                st.threads[t].status = Status::Runnable;
            }
        }
        self.finish_op(st);
    }

    fn op_chan_block(&self, tid: usize, key: usize) {
        let Some(mut st) = self.enter(tid, true) else {
            return;
        };
        st.threads[tid].status = Status::OnRecv(key);
        let name = st.tname(tid);
        st.trace_evt(format!("{name} blocks receiving on channel {key:#x}"));
        let mut st = self.yield_and_wait(st, tid);
        st.threads[tid].status = Status::Runnable;
        self.finish_op(st);
    }

    fn op_chan_received(&self, tid: usize, key: usize) {
        let Some(mut st) = self.enter(tid, false) else {
            return;
        };
        if let Some(ObjState::Chan { vc }) = st.objects.get(&key) {
            let ovc = vc.clone();
            st.threads[tid].vc.merge(&ovc);
        }
        self.finish_op(st);
    }

    fn op_chan_disconnected(&self, tid: usize, key: usize) {
        let Some(mut st) = self.enter(tid, false) else {
            return;
        };
        let tvc = st.threads[tid].vc.clone();
        if let Some(ObjState::Chan { vc }) = st.objects.get_mut(&key) {
            vc.merge(&tvc);
        }
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::OnRecv(key) {
                st.threads[t].status = Status::Runnable;
            }
        }
        self.finish_op(st);
    }

    fn op_join(&self, tid: usize, target: usize) {
        let Some(mut st) = self.enter(tid, true) else {
            return;
        };
        st.threads[tid].status = Status::OnJoin(target);
        let mut st = self.yield_and_wait(st, tid);
        let tvc = st.threads[target].vc.clone();
        st.threads[tid].vc.merge(&tvc);
        st.threads[tid].status = Status::Runnable;
        self.finish_op(st);
    }

    fn op_destroyed(&self, tid: usize, key: usize) {
        let Some(mut st) = self.enter(tid, false) else {
            return;
        };
        st.objects.remove(&key);
        self.finish_op(st);
    }

    fn finish_thread(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        st.threads[tid].status = Status::Finished;
        let name = st.tname(tid);
        st.trace_evt(format!("{name} finished"));
        if let Some(msg) = panic_msg {
            st.fail(FailureKind::Panic, format!("thread {name} panicked: {msg}"));
        }
        if !st.aborted {
            st.reschedule(tid);
        }
        drop(st);
        self.cv.notify_all();
    }

    fn finish_thread_aborted(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid].status = Status::Finished;
        drop(st);
        self.cv.notify_all();
    }

    /// End-of-schedule teardown run by `explore` on the root thread. Returns
    /// the engine (for the next schedule) and the outcome.
    pub(crate) fn finish_root(
        &self,
        body_result: Result<(), Box<dyn std::any::Any + Send>>,
    ) -> (Engine, ScheduleOutcome) {
        let mut st = self.lock();
        match body_result {
            Err(p) => {
                if p.downcast_ref::<Abort>().is_none() && st.failure.is_none() {
                    let msg = panic_message(&*p);
                    st.fail(FailureKind::Panic, format!("harness body panicked: {msg}"));
                }
            }
            Ok(()) => {
                let leaked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .skip(1)
                    .filter(|(_, t)| t.status != Status::Finished)
                    .map(|(i, _)| st.tname(i))
                    .collect();
                if !leaked.is_empty() && st.failure.is_none() {
                    st.fail(
                        FailureKind::ThreadLeak,
                        format!(
                            "harness returned with live threads (join them): {}",
                            leaked.join(", ")
                        ),
                    );
                }
            }
        }
        st.aborted = true;
        let engine = st.engine.take().expect("engine present at teardown");
        let failure = st.failure.take().map(|f| {
            (
                f.kind,
                f.message,
                st.choices.clone(),
                st.trace.iter().cloned().collect(),
            )
        });
        let outcome = ScheduleOutcome {
            steps: st.steps,
            failure,
        };
        drop(st);
        self.cv.notify_all();
        // Wait for every participant OS thread to unwind and exit before
        // handing the schedule back: a thread still parked here would panic
        // with `Abort` only after the caller dropped the quiet panic hook.
        let mut st = self.lock();
        while st.os_live > 0 {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        drop(st);
        (engine, outcome)
    }
}

fn wake_waiter(st: &mut Guard<'_>, w: usize, notifier: usize) {
    let nvc = st.threads[notifier].vc.clone();
    if let Status::OnCv { mutex, .. } = st.threads[w].status {
        st.threads[w].pending_wake = Some(Wake::Notified);
        st.threads[w].status = Status::OnLock(mutex);
        st.threads[w].vc.merge(&nvc);
        let wn = st.tname(w);
        let nn = st.tname(notifier);
        st.trace_evt(format!("{nn} notifies {wn}"));
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Public facade-facing API
// ---------------------------------------------------------------------------

/// Kind of atomic access, from the modeled memory system's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomicKind {
    /// Pure load.
    Load,
    /// Pure store (lost-update candidate).
    Store,
    /// Read-modify-write (`fetch_*`, `swap`, `compare_exchange`): never a
    /// lost update by construction.
    Rmw,
}

/// Yield point with no model side effect (plain preemption opportunity).
pub fn yield_point() {
    if let Some(ctx) = cur_ctx() {
        ctx.exp.op_yield(ctx.tid);
    }
}

/// Models a blocking mutex acquisition. Returns with the model lock held.
pub fn mutex_lock(key: usize) {
    if let Some(ctx) = cur_ctx() {
        ctx.exp.op_mutex_lock(ctx.tid, key);
    }
}

/// Releases a model mutex. Safe to call from `Drop` impls.
pub fn mutex_unlock(key: usize) {
    if let Some(ctx) = cur_ctx() {
        ctx.exp.op_mutex_unlock(ctx.tid, key);
    }
}

/// Models a blocking rwlock acquisition (read or write).
pub fn rw_lock(key: usize, write: bool) {
    if let Some(ctx) = cur_ctx() {
        ctx.exp.op_rw_lock(ctx.tid, key, write);
    }
}

/// Releases a model rwlock. Safe to call from `Drop` impls.
pub fn rw_unlock(key: usize, write: bool) {
    if let Some(ctx) = cur_ctx() {
        ctx.exp.op_rw_unlock(ctx.tid, key, write);
    }
}

/// Models `Condvar::wait[_timeout]`. The caller must have dropped the real
/// guard first; the model mutex is released and re-acquired around the
/// blocked period. Returns true when the wait timed out.
pub fn condvar_wait(cv: usize, mutex: usize, timeout_ns: Option<u64>) -> bool {
    match cur_ctx() {
        Some(ctx) => ctx.exp.op_cv_wait(ctx.tid, cv, mutex, timeout_ns),
        None => false,
    }
}

/// Models `notify_one` (`all = false`, waiter chosen by the engine) or
/// `notify_all`.
pub fn condvar_notify(cv: usize, all: bool) {
    if let Some(ctx) = cur_ctx() {
        ctx.exp.op_cv_notify(ctx.tid, cv, all);
    }
}

/// Yield point plus happens-before/lost-update bookkeeping for one atomic
/// access. Call before performing the real operation.
pub fn atomic_op(key: usize, kind: AtomicKind, acquire: bool, release: bool) {
    if let Some(ctx) = cur_ctx() {
        ctx.exp.op_atomic(ctx.tid, key, kind, acquire, release);
    }
}

/// After pushing into a channel: publishes the sender's clock and wakes
/// blocked receivers. Drop-safe (used by `Sender::send`).
pub fn chan_published(key: usize) {
    if let Some(ctx) = cur_ctx() {
        ctx.exp.op_chan_published(ctx.tid, key);
    }
}

/// Blocks the calling thread until a sender publishes or disconnects.
pub fn chan_block(key: usize) {
    if let Some(ctx) = cur_ctx() {
        ctx.exp.op_chan_block(ctx.tid, key);
    }
}

/// After successfully popping from a channel: acquire the channel clock.
pub fn chan_received(key: usize) {
    if let Some(ctx) = cur_ctx() {
        ctx.exp.op_chan_received(ctx.tid, key);
    }
}

/// Last sender dropped: wakes blocked receivers so they observe disconnect.
/// Drop-safe.
pub fn chan_disconnected(key: usize) {
    if let Some(ctx) = cur_ctx() {
        ctx.exp.op_chan_disconnected(ctx.tid, key);
    }
}

/// Removes per-object model state when a facade object is dropped, so a
/// reused allocation address cannot alias stale state. Drop-safe.
pub fn object_destroyed(key: usize) {
    if let Some(ctx) = cur_ctx() {
        ctx.exp.op_destroyed(ctx.tid, key);
    }
}

/// Virtual clock reading in nanoseconds, `None` outside exploration.
pub fn now_ns() -> Option<u64> {
    cur_ctx().map(|ctx| {
        let st = ctx.exp.lock();
        st.clock_ns
    })
}

/// Handle to a modeled thread spawned with [`spawn`].
pub struct ThreadHandle {
    tid: usize,
    real: Option<std::thread::JoinHandle<()>>,
    panic: Arc<StdMutex<Option<Box<dyn std::any::Any + Send>>>>,
}

impl ThreadHandle {
    /// Model thread id (for diagnostics).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Blocks (in the model) until the thread finishes; propagates its panic
    /// payload like `std::thread::JoinHandle::join`.
    pub fn join(mut self) -> Result<(), Box<dyn std::any::Any + Send>> {
        let ctx = cur_ctx().expect("interleave::ThreadHandle::join outside exploration");
        ctx.exp.op_join(ctx.tid, self.tid);
        if let Some(real) = self.real.take() {
            let _ = real.join();
        }
        let payload = {
            let mut slot = self.panic.lock().unwrap_or_else(|p| p.into_inner());
            slot.take()
        };
        match payload {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }
}

/// Spawns a participant thread running `f` under the scheduler. Returns
/// `None` when the caller is not participating (the facade then falls back
/// to `std::thread::spawn`).
pub fn spawn<F>(name: String, f: F) -> Option<ThreadHandle>
where
    F: FnOnce() + Send + 'static,
{
    let ctx = cur_ctx()?;
    let exp = ctx.exp.clone();
    let parent = ctx.tid;
    let child_tid = {
        let mut st = exp.lock();
        if st.aborted {
            drop(st);
            panic_any(Abort);
        }
        let id = st.threads.len();
        let mut vc = st.threads[parent].vc.clone();
        vc.tick(id);
        st.threads.push(ThreadState::new(name.clone(), vc));
        st.os_live += 1;
        let pn = st.tname(parent);
        st.trace_evt(format!("{pn} spawns t{id}:{name}"));
        id
    };
    let panic_slot: Arc<StdMutex<Option<Box<dyn std::any::Any + Send>>>> =
        Arc::new(StdMutex::new(None));
    let slot2 = panic_slot.clone();
    let exp2 = exp.clone();
    let real = std::thread::Builder::new()
        .name(format!("interleave-{name}"))
        .spawn(move || {
            set_ctx(exp2.clone(), child_tid);
            let granted = {
                let mut st = exp2.lock();
                loop {
                    if st.aborted {
                        break false;
                    }
                    if st.running == Some(child_tid) {
                        break true;
                    }
                    st = exp2.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                }
            };
            if granted {
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(()) => exp2.finish_thread(child_tid, None),
                    Err(p) => {
                        if p.downcast_ref::<Abort>().is_some() {
                            exp2.finish_thread_aborted(child_tid);
                        } else {
                            let msg = panic_message(&*p);
                            {
                                let mut slot = slot2.lock().unwrap_or_else(|e| e.into_inner());
                                *slot = Some(p);
                            }
                            exp2.finish_thread(child_tid, Some(msg));
                        }
                    }
                }
            } else {
                exp2.finish_thread_aborted(child_tid);
            }
            clear_ctx();
            let mut st = exp2.lock();
            st.os_live -= 1;
            drop(st);
            exp2.cv.notify_all();
        })
        .expect("spawn interleave participant thread");
    // Yield so the child is immediately schedulable.
    exp.op_yield(parent);
    Some(ThreadHandle {
        tid: child_tid,
        real: Some(real),
        panic: panic_slot,
    })
}

// ---------------------------------------------------------------------------
// Explore driver plumbing (used by lib.rs)
// ---------------------------------------------------------------------------

pub(crate) fn run_one_schedule<F: Fn()>(
    engine: Engine,
    cfg: &RunCfg,
    body: &F,
) -> (Engine, ScheduleOutcome) {
    let exp = Arc::new(Exploration::new(engine, cfg, "root"));
    set_ctx(exp.clone(), 0);
    let result = catch_unwind(AssertUnwindSafe(body));
    clear_ctx();
    exp.finish_root(result)
}

/// Installs a panic hook that silences panics on participant threads for the
/// duration of an exploration (aborts and harness assertion failures are
/// captured in the report; the default hook would spam stderr). Restores the
/// previous hook on drop.
pub(crate) struct QuietPanics;

impl QuietPanics {
    pub(crate) fn install() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if participating() {
                return;
            }
            prev(info);
        }));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        // Drop our hook; fall back to the default. The previous hook is
        // intentionally not reinstated exactly (it was moved into our
        // closure), which matches the default-hook state of this workspace.
        let _ = std::panic::take_hook();
    }
}

/// Failure construction helper shared by explore/replay.
pub(crate) fn make_failure(
    kind: FailureKind,
    message: String,
    schedule_index: u64,
    seed: u64,
    choices: Vec<u32>,
    trace: Vec<String>,
    mode: &'static str,
) -> Failure {
    Failure {
        kind,
        message,
        schedule_index,
        seed,
        choices,
        trace,
        mode,
    }
}
