//! Small deterministic PRNG (SplitMix64) for schedule exploration.
//!
//! Exploration must be replayable from a single `u64` seed, so the engine
//! cannot use `std` randomness; SplitMix64 is tiny, fast, and has good
//! statistical behavior for the small choice counts involved here.

/// SplitMix64 stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform choice in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Multiply-shift is unbiased enough for scheduling purposes and
        // avoids a modulo; n is always tiny (thread counts).
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// Derives the per-schedule seed for schedule `index` from a base seed.
///
/// This is the value printed in failure reports: re-running a single
/// schedule with this exact seed replays the failing interleaving.
pub fn schedule_seed(base: u64, index: u64) -> u64 {
    // One SplitMix64 scramble of (base ^ golden*index) decorrelates
    // neighboring schedules.
    let mut s = SplitMix64::new(base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    s.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = SplitMix64::new(7);
        for n in 1..16usize {
            for _ in 0..64 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn schedule_seeds_differ() {
        let a = schedule_seed(1, 0);
        let b = schedule_seed(1, 1);
        assert_ne!(a, b);
    }
}
