//! Vector clocks for happens-before tracking during exploration.
//!
//! Every modeled thread carries a clock; synchronization edges (mutex
//! release→acquire, Release store→Acquire load, spawn, join, channel
//! send→recv, notify→wake) merge clocks. The lost-update detector uses
//! `dominated_by` to suppress reports for stores that are ordered into
//! the overwriting thread.

/// A vector clock indexed by model thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    slots: Vec<u64>,
}

impl VectorClock {
    /// The empty (all-zero) clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments this thread's own component.
    pub fn tick(&mut self, tid: usize) {
        if self.slots.len() <= tid {
            self.slots.resize(tid + 1, 0);
        }
        self.slots[tid] += 1;
    }

    /// Component-wise maximum with `other` (the join operation).
    pub fn merge(&mut self, other: &VectorClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (i, &v) in other.slots.iter().enumerate() {
            if self.slots[i] < v {
                self.slots[i] = v;
            }
        }
    }

    /// True when `self` ≤ `other` component-wise: every event in `self`
    /// happens-before (or equals) the view in `other`.
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        self.slots.iter().enumerate().all(|(i, &v)| {
            if v == 0 {
                true
            } else {
                other.slots.get(i).copied().unwrap_or(0) >= v
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_merge() {
        let mut a = VectorClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(2);
        b.merge(&a);
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
    }

    #[test]
    fn incomparable() {
        let mut a = VectorClock::new();
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(1);
        assert!(!a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
    }

    #[test]
    fn empty_dominated_by_all() {
        let e = VectorClock::new();
        let mut a = VectorClock::new();
        a.tick(3);
        assert!(e.dominated_by(&a));
        assert!(e.dominated_by(&VectorClock::new()));
    }
}
