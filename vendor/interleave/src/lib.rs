//! interleave — systematic concurrency exploration (shuttle-lite).
//!
//! Offline stand-in for a shuttle/loom-style model checker. A harness body
//! is executed many times; each run ("schedule") serializes all participant
//! threads so that exactly one runs at a time, and a decision engine picks
//! which thread proceeds at every sync-op yield point. Two engines are
//! provided: seeded pseudo-random exploration (good coverage per wall-clock
//! second, every failure replayable from a printed `u64` seed) and a
//! bounded-preemption iterative DFS (exhaustive for small bodies).
//!
//! Detectors: deadlock / lost wakeup (all live threads blocked), lock-order
//! cycles (ABBA reported even when the fatal interleaving was not hit),
//! atomic lost updates (per-object store logs + vector-clock suppression of
//! happens-before-ordered overwrites), livelock (step budget), harness
//! panics (assertion failures anywhere in the model), and leaked threads.
//!
//! The intended client is the `gendt-sync` facade: production code is
//! migrated onto facade types that forward every acquire/release/wait/
//! notify/load/store to this crate's runtime **only** while an exploration
//! is active on a participant thread, so checked binaries behave bitwise
//! identically outside the harness.
//!
//! Constraints on harness bodies: they must be deterministic given the
//! schedule (no wall clock, no OS randomness), must join every thread they
//! spawn, and must create channels *inside* the body so the modeled
//! variants are used.

#![forbid(unsafe_code)]

mod engine;
mod rng;
mod rt;
mod vc;

pub use rt::{
    atomic_op, chan_block, chan_disconnected, chan_published, chan_received, condvar_notify,
    condvar_wait, mutex_lock, mutex_unlock, now_ns, object_destroyed, participating, rw_lock,
    rw_unlock, spawn, yield_point, AtomicKind, ThreadHandle,
};

use engine::Engine;
use rng::schedule_seed;
use rt::{run_one_schedule, QuietPanics, RunCfg};
use std::sync::Mutex as StdMutex;

/// Exploration strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Seeded pseudo-random schedules; budget = `Config::schedules`.
    Random,
    /// Bounded-preemption iterative DFS; stops at exhaustion or budget.
    Dfs {
        /// Maximum non-forced context switches per schedule.
        max_preemptions: u32,
    },
}

/// Exploration configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum number of schedules to run.
    pub schedules: u64,
    /// Base seed; per-schedule seeds are derived from it.
    pub seed: u64,
    /// Decision engine.
    pub mode: Mode,
    /// Per-schedule sync-op budget (livelock guard).
    pub max_steps: u64,
    /// Per-schedule budget of injectable spurious condvar wakeups.
    pub spurious: u32,
}

impl Config {
    /// Random exploration with sensible defaults.
    pub fn random(schedules: u64, seed: u64) -> Self {
        Self {
            schedules,
            seed,
            mode: Mode::Random,
            max_steps: 50_000,
            spurious: 2,
        }
    }

    /// Bounded-preemption DFS with sensible defaults.
    pub fn dfs(max_schedules: u64, max_preemptions: u32) -> Self {
        Self {
            schedules: max_schedules,
            seed: 0,
            mode: Mode::Dfs { max_preemptions },
            max_steps: 50_000,
            spurious: 1,
        }
    }
}

/// What went wrong in a failing schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// All live threads blocked (includes lost wakeups).
    Deadlock,
    /// The lock-order graph acquired a cycle (ABBA).
    LockOrderCycle,
    /// A store overwrote a value the storing thread never observed.
    LostUpdate,
    /// Step budget exceeded.
    Livelock,
    /// A harness thread panicked (assertion failure).
    Panic,
    /// The body returned while spawned threads were still live.
    ThreadLeak,
}

/// A failing schedule, replayable via [`replay`].
#[derive(Clone, Debug)]
pub struct Failure {
    /// Category of the finding.
    pub kind: FailureKind,
    /// Human-readable description.
    pub message: String,
    /// Index of the failing schedule within the run.
    pub schedule_index: u64,
    /// Per-schedule seed (replay token for random mode).
    pub seed: u64,
    /// Recorded decision list (replay token for any mode).
    pub choices: Vec<u32>,
    /// Recent scheduler transitions leading up to the failure.
    pub trace: Vec<String>,
    /// Engine that produced it: "random" or "dfs".
    pub mode: &'static str,
}

impl Failure {
    /// Compact token that [`replay`] accepts to reproduce this schedule.
    pub fn replay_token(&self) -> String {
        if self.mode == "random" {
            format!("rand:{:016x}", self.seed)
        } else {
            let parts: Vec<String> = self.choices.iter().map(|c| c.to_string()).collect();
            format!("dfs:{}", parts.join("."))
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:?} at schedule #{} (replay with {}):",
            self.kind,
            self.schedule_index,
            self.replay_token()
        )?;
        writeln!(f, "  {}", self.message)?;
        writeln!(f, "  last {} scheduler transitions:", self.trace.len())?;
        for line in &self.trace {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// Outcome of an exploration run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Schedules actually executed.
    pub schedules: u64,
    /// Total sync-op steps across all schedules.
    pub steps_total: u64,
    /// First failure found, if any (exploration stops at the first).
    pub failure: Option<Failure>,
}

impl Report {
    /// True when no failure was found.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

// Explorations mutate process-global state (the panic hook and the
// participant model); serialize them.
static GATE: StdMutex<()> = StdMutex::new(());

/// Runs `body` under systematic exploration per `cfg`.
///
/// Stops at the first failing schedule. Nested explorations are serialized
/// process-wide.
pub fn explore<F: Fn()>(cfg: &Config, body: F) -> Report {
    let _gate = GATE.lock().unwrap_or_else(|p| p.into_inner());
    let _quiet = QuietPanics::install();
    let run_cfg = RunCfg {
        max_steps: cfg.max_steps,
        spurious: cfg.spurious,
    };
    let (mut engine, mode_name) = match cfg.mode {
        Mode::Random => (Engine::random(schedule_seed(cfg.seed, 0)), "random"),
        Mode::Dfs { max_preemptions } => (Engine::dfs(max_preemptions), "dfs"),
    };
    let mut report = Report {
        schedules: 0,
        steps_total: 0,
        failure: None,
    };
    for idx in 0..cfg.schedules {
        let sseed = schedule_seed(cfg.seed, idx);
        let (engine_back, outcome) = run_one_schedule(engine, &run_cfg, &body);
        engine = engine_back;
        report.schedules += 1;
        report.steps_total += outcome.steps;
        if let Some((kind, message, choices, trace)) = outcome.failure {
            report.failure = Some(rt::make_failure(
                kind, message, idx, sseed, choices, trace, mode_name,
            ));
            break;
        }
        if !engine.next_schedule(schedule_seed(cfg.seed, idx + 1)) {
            break;
        }
    }
    report
}

/// Replays a single schedule from a token printed by
/// [`Failure::replay_token`]. `cfg` supplies `max_steps` and `spurious`
/// (use the same values as the original exploration).
pub fn replay<F: Fn()>(cfg: &Config, token: &str, body: F) -> Report {
    let _gate = GATE.lock().unwrap_or_else(|p| p.into_inner());
    let _quiet = QuietPanics::install();
    let run_cfg = RunCfg {
        max_steps: cfg.max_steps,
        spurious: cfg.spurious,
    };
    let (engine, mode_name, seed) = if let Some(hex) = token.strip_prefix("rand:") {
        let seed = u64::from_str_radix(hex, 16).unwrap_or(0);
        (Engine::random(seed), "random", seed)
    } else if let Some(list) = token.strip_prefix("dfs:") {
        let choices: Vec<u32> = list.split('.').filter_map(|s| s.parse().ok()).collect();
        (Engine::fixed(choices), "dfs", 0)
    } else {
        (Engine::fixed(Vec::new()), "dfs", 0)
    };
    let (_engine, outcome) = run_one_schedule(engine, &run_cfg, &body);
    Report {
        schedules: 1,
        steps_total: outcome.steps,
        failure: outcome.failure.map(|(kind, message, choices, trace)| {
            rt::make_failure(kind, message, 0, seed, choices, trace, mode_name)
        }),
    }
}
