//! Offline stand-in for `serde_json`: renders the vendored
//! [`serde::Value`] tree to JSON text and parses it back.
//!
//! Supports exactly the workspace's usage: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and an [`Error`] type. Numbers
//! parse to `Value::Int` when written without a fraction/exponent and to
//! `Value::Float` otherwise; floats render with Rust's shortest
//! round-trip formatting, so `f32`/`f64` checkpoints restore bit-exactly.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialize a value to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer ------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("non-finite float cannot be represented in JSON"));
            }
            let s = f.to_string();
            out.push_str(&s);
            // Keep integral floats distinguishable from ints so the
            // parser's Int/Float split stays stable across round-trips.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

// ---- parser ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume unescaped UTF-8 runs in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unexpected end of input in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a following \uXXXX.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Value::Int(i)),
                // Fall back to float on (absurd) overflow.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid number `{text}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        // Integral floats keep a fraction marker.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
    }

    #[test]
    fn f32_bits_survive_round_trip() {
        for bits in [0x3f80_0001u32, 0x0000_0001, 0x7f7f_ffff, 0xbf99_999a] {
            let x = f32::from_bits(bits);
            let s = to_string(&x).unwrap();
            let y: f32 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), y.to_bits(), "{x} -> {s} -> {y}");
        }
    }

    #[test]
    fn containers_and_strings() {
        let v = vec![vec![1.0f32, 2.0], vec![3.0]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f32>>>(&s).unwrap(), v);
        let text = "line\n\"quoted\" \\ tab\t".to_string();
        let s = to_string(&text).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), text);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![
            (String::from("a"), vec![1u32, 2]),
            (String::from("b"), vec![]),
        ];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<(String, Vec<u32>)>>(&s).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            from_str::<String>("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            "é😀"
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<u32>("[").is_err());
    }
}
