//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a minimal self-consistent serialization
//! framework under the familiar `serde` name. It is **not** wire- or
//! API-compatible with upstream serde beyond the subset this workspace
//! uses:
//!
//! * `Serialize` / `Deserialize` traits (converting through [`Value`],
//!   an owned JSON-like tree),
//! * `#[derive(Serialize, Deserialize)]` for non-generic structs with
//!   named fields, tuple structs, and fieldless enums (re-exported from
//!   the vendored `serde_derive`),
//! * impls for the primitive / container types the workspace stores in
//!   checkpoints and reports.
//!
//! The vendored `serde_json` renders [`Value`] to JSON text and parses it
//! back, so checkpoints round-trip exactly as with the real crates.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Owned JSON-like value tree: the interchange format between the
/// `Serialize`/`Deserialize` traits and the `serde_json` text layer.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (serialized without a decimal point).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object; insertion order is preserved when rendering.
    Map(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error { msg: m.into() }
    }

    /// "expected X while deserializing Y" helper.
    pub fn expected(what: &str, ty: &str) -> Self {
        Error {
            msg: format!("expected {what} while deserializing {ty}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Borrow as an object, or a typed error mentioning `ty`.
    pub fn as_map_for(&self, ty: &str) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(m) => Ok(m),
            _ => Err(Error::expected("object", ty)),
        }
    }

    /// Borrow as an array, or a typed error mentioning `ty`.
    pub fn as_seq_for(&self, ty: &str) -> Result<&[Value], Error> {
        match self {
            Value::Seq(s) => Ok(s),
            _ => Err(Error::expected("array", ty)),
        }
    }

    /// Borrow as a string, or a typed error mentioning `ty`.
    pub fn as_str_for(&self, ty: &str) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(Error::expected("string", ty)),
        }
    }

    /// Numeric value as `f64` (accepts both int and float encodings).
    pub fn as_f64_for(&self, ty: &str) -> Result<f64, Error> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            _ => Err(Error::expected("number", ty)),
        }
    }

    /// Integer value (rejects floats so lossy casts stay visible).
    pub fn as_int_for(&self, ty: &str) -> Result<i128, Error> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i128),
            _ => Err(Error::expected("integer", ty)),
        }
    }
}

/// Look up `key` in an object, with a typed error mentioning `ty`.
pub fn map_field<'a>(m: &'a [(String, Value)], key: &str, ty: &str) -> Result<&'a Value, Error> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{key}` while deserializing {ty}")))
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the interchange tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// `Value` round-trips through itself, so callers can parse arbitrary
// JSON (`serde_json::from_str::<Value>`) and inspect it generically.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- primitive impls ---------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i128) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_int_for(stringify!($t))?;
                <$t>::try_from(i)
                    .map_err(|_| Error::msg(format!("integer {i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64_for("f32")? as f32)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64_for("f64")
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str_for("String")?.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(std::path::PathBuf::from(v.as_str_for("PathBuf")?))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str_for("char")?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

// ---- container impls ---------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq_for("Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq_for("array")?;
        if s.len() != N {
            return Err(Error::msg(format!(
                "expected array of length {N}, got {}",
                s.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(s.iter()) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq_for("tuple")?;
        if s.len() != 2 {
            return Err(Error::msg(format!(
                "expected 2-tuple, got length {}",
                s.len()
            )));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq_for("tuple")?;
        if s.len() != 3 {
            return Err(Error::msg(format!(
                "expected 3-tuple, got length {}",
                s.len()
            )));
        }
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map_for("BTreeMap")?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"x".to_string().to_value()).unwrap(),
            "x"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f32, 2.0, 3.0];
        assert_eq!(Vec::<f32>::from_value(&v.to_value()).unwrap(), v);
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(<[f32; 5]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<usize> = Some(7);
        assert_eq!(Option::<usize>::from_value(&o.to_value()).unwrap(), o);
        let none: Option<usize> = None;
        assert_eq!(Option::<usize>::from_value(&none.to_value()).unwrap(), none);
        let t = (3u32, 4.5f64);
        assert_eq!(<(u32, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn int_range_errors() {
        let v = Value::Int(300);
        assert!(u8::from_value(&v).is_err());
    }
}
