//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API this workspace's benches use
//! (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `criterion_group!`, `criterion_main!`) backed by a simple wall-clock
//! harness: warm-up, then `sample_size` timed samples, reporting
//! `[min median max]` per iteration. Statistical analysis, plotting, and
//! baseline persistence of the real crate are intentionally absent.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement configuration and entry point, mirroring
/// `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Per-group sample-size override.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(2);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_bench(&full, self.c, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(&full, self.c, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Measured duration of the last [`Bencher::iter`] call.
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export of the standard black box, matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench(name: &str, cfg: &Criterion, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: grow the iteration count until the warm-up budget is spent,
    // which also calibrates iterations-per-sample.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_secs(1);
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed > Duration::ZERO {
            per_iter = b.elapsed / iters.max(1) as u32;
        }
        if warm_start.elapsed() >= cfg.warm_up {
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 24);
    }
    // Aim each sample at measurement/sample_size wall time.
    let sample_budget = cfg.measurement.as_nanos() / cfg.sample_size.max(1) as u128;
    let per_iter_ns = per_iter.as_nanos().max(1);
    let iters_per_sample = ((sample_budget / per_iter_ns).clamp(1, 1 << 24)) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = samples[samples.len() / 2];
    println!(
        "{name:<40} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        samples.len(),
        iters_per_sample
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declare a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
