//! Cell deployment: sectorized LTE cells built from a world's site plan.
//!
//! Each planned site becomes three sectorized cells with 120°-spaced
//! azimuths (plus per-site jitter), district-dependent transmit power, and
//! the `[lat, lon, p_max, direction]` attribute schema the GenDT network
//! context uses (paper §2.3.3).

use gendt_geo::coords::{LatLon, XY};
use gendt_geo::world::{DistrictKind, World};
use gendt_rng::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a cell within a deployment.
pub type CellId = u32;

/// One sectorized LTE cell.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Cell {
    /// Deployment-unique identifier.
    pub id: CellId,
    /// Site position in the world's local frame.
    pub pos: XY,
    /// Site position as lat/lon (the schema drive-test context uses).
    pub latlon: LatLon,
    /// Boresight azimuth in degrees clockwise from north.
    pub azimuth_deg: f64,
    /// Maximum transmit power (EIRP) in dBm.
    pub p_max_dbm: f64,
    /// District kind the site serves.
    pub district: DistrictKind,
}

/// A full cell deployment with a spatial index for range queries.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Deployment {
    /// All cells, indexed by [`CellId`].
    pub cells: Vec<Cell>,
    extent_m: f64,
    bucket_m: f64,
    side: usize,
    buckets: Vec<Vec<CellId>>,
}

/// Transmit EIRP by district: urban sites run lower power (smaller cells),
/// rural/highway sites higher power for coverage.
fn p_max_for(district: DistrictKind, rng: &mut Rng) -> f64 {
    let base = match district {
        DistrictKind::CityCenter => 41.0,
        DistrictKind::Urban => 42.0,
        DistrictKind::Suburban => 43.5,
        DistrictKind::Industrial => 42.0,
        DistrictKind::Park => 43.5,
        DistrictKind::Rural => 46.0,
    };
    base + rng.uniform(-1.5, 1.5)
}

impl Deployment {
    /// Sectorize a world's site plan into cells. Deterministic in
    /// `world.cfg.seed`.
    pub fn from_world(world: &World) -> Deployment {
        let mut rng = Rng::seed_from(world.cfg.seed ^ DEPLOY_SEED_SALT);
        let mut cells = Vec::with_capacity(world.sites.len() * 3);
        for site in &world.sites {
            let jitter = rng.uniform(0.0, 120.0);
            let p = p_max_for(site.district, &mut rng);
            for s in 0..3 {
                let az = (jitter + 120.0 * s as f64) % 360.0;
                let id = cells.len() as CellId;
                cells.push(Cell {
                    id,
                    pos: site.pos,
                    latlon: world.to_latlon(site.pos),
                    azimuth_deg: az,
                    p_max_dbm: p,
                    district: site.district,
                });
            }
        }
        Self::index(cells, world.cfg.extent_m)
    }

    /// Build a deployment from an explicit cell list (tests, what-if
    /// studies with hand-placed cells).
    pub fn from_cells(cells: Vec<Cell>, extent_m: f64) -> Deployment {
        Self::index(cells, extent_m)
    }

    fn index(cells: Vec<Cell>, extent_m: f64) -> Deployment {
        let bucket_m = 1000.0;
        let side = ((2.0 * extent_m / bucket_m).ceil() as usize).max(1);
        let mut buckets = vec![Vec::new(); side * side];
        for c in &cells {
            let gx = (((c.pos.x + extent_m) / bucket_m) as isize).clamp(0, side as isize - 1);
            let gy = (((c.pos.y + extent_m) / bucket_m) as isize).clamp(0, side as isize - 1);
            buckets[gy as usize * side + gx as usize].push(c.id);
        }
        Deployment {
            cells,
            extent_m,
            bucket_m,
            side,
            buckets,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the deployment has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cell by id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id as usize]
    }

    /// Ids of all cells within `radius_m` of `p` — the "visible region"
    /// of potential serving cells (paper Fig. 3). Sorted by distance.
    pub fn cells_within(&self, p: XY, radius_m: f64) -> Vec<CellId> {
        let br = (radius_m / self.bucket_m).ceil() as isize + 1;
        let bx = ((p.x + self.extent_m) / self.bucket_m) as isize;
        let by = ((p.y + self.extent_m) / self.bucket_m) as isize;
        let mut out: Vec<(f64, CellId)> = Vec::new();
        for dy in -br..=br {
            for dx in -br..=br {
                let gx = bx + dx;
                let gy = by + dy;
                if gx < 0 || gy < 0 || gx >= self.side as isize || gy >= self.side as isize {
                    continue;
                }
                for &id in &self.buckets[gy as usize * self.side + gx as usize] {
                    let d = self.cells[id as usize].pos.dist(&p);
                    if d <= radius_m {
                        out.push((d, id));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        out.into_iter().map(|(_, id)| id).collect()
    }
}

/// Seed salt separating deployment randomness from world generation.
const DEPLOY_SEED_SALT: u64 = 0xCE11_0DE9_107A_55A1;

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_geo::world::{World, WorldCfg};

    fn deployment() -> (World, Deployment) {
        let w = World::generate(WorldCfg::city(11));
        let d = Deployment::from_world(&w);
        (w, d)
    }

    #[test]
    fn three_sectors_per_site() {
        let (w, d) = deployment();
        assert_eq!(d.len(), w.sites.len() * 3);
    }

    #[test]
    fn sector_azimuths_are_spread() {
        let (_, d) = deployment();
        // The three sectors of one site are 120° apart.
        let a0 = d.cells[0].azimuth_deg;
        let a1 = d.cells[1].azimuth_deg;
        let a2 = d.cells[2].azimuth_deg;
        let mut diffs = [
            (a1 - a0).rem_euclid(360.0),
            (a2 - a1).rem_euclid(360.0),
            (a0 - a2).rem_euclid(360.0),
        ];
        diffs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!(
            diffs.iter().all(|d| (d - 120.0).abs() < 1e-6),
            "azimuths {a0} {a1} {a2}"
        );
    }

    #[test]
    fn cells_within_sorted_and_bounded() {
        let (_, d) = deployment();
        let p = XY::new(0.0, 0.0);
        let ids = d.cells_within(p, 2000.0);
        assert!(!ids.is_empty(), "no cells near origin");
        let mut last = 0.0;
        for id in &ids {
            let dist = d.cell(*id).pos.dist(&p);
            assert!(dist <= 2000.0);
            assert!(dist >= last, "not sorted by distance");
            last = dist;
        }
    }

    #[test]
    fn cells_within_matches_brute_force() {
        let (_, d) = deployment();
        let p = XY::new(500.0, -750.0);
        let fast = d.cells_within(p, 1500.0);
        let brute: Vec<CellId> = d
            .cells
            .iter()
            .filter(|c| c.pos.dist(&p) <= 1500.0)
            .map(|c| c.id)
            .collect();
        assert_eq!(fast.len(), brute.len());
        for id in brute {
            assert!(fast.contains(&id));
        }
    }

    #[test]
    fn deployment_is_deterministic() {
        let w = World::generate(WorldCfg::city(11));
        let d1 = Deployment::from_world(&w);
        let d2 = Deployment::from_world(&w);
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.cells.iter().zip(d2.cells.iter()) {
            assert_eq!(a.azimuth_deg, b.azimuth_deg);
            assert_eq!(a.p_max_dbm, b.p_max_dbm);
        }
    }

    #[test]
    fn rural_cells_run_more_power() {
        let w = World::generate(WorldCfg::region(13));
        let d = Deployment::from_world(&w);
        let avg = |k: DistrictKind| {
            let v: Vec<f64> = d
                .cells
                .iter()
                .filter(|c| c.district == k)
                .map(|c| c.p_max_dbm)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        assert!(avg(DistrictKind::Rural) > avg(DistrictKind::CityCenter));
    }
}
