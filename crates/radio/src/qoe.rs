//! Quality-of-experience model: downlink throughput and packet error rate
//! as functions of radio KPIs.
//!
//! The paper's QoE use case (§6.3.1) measures throughput and PER with
//! iPerf3 alongside the drive test; we do not have iPerf3 and a live
//! network, so this module provides ground truth from a physically
//! plausible link model: Shannon-capped spectral efficiency from SINR,
//! scaled by the serving cell's spare capacity, plus a sigmoid PER curve
//! in SINR. The substitution preserves what the use case tests — QoE being
//! a learnable function of the radio KPIs.

use crate::kpi::KpiSample;
use gendt_rng::Rng;
use serde::{Deserialize, Serialize};

/// QoE model configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct QoeCfg {
    /// Carrier bandwidth in Hz available to the UE before load sharing.
    pub bandwidth_hz: f64,
    /// Spectral-efficiency implementation loss factor (0..1].
    pub efficiency: f64,
    /// Cap on spectral efficiency (256-QAM ceiling), bit/s/Hz.
    pub max_se: f64,
    /// SINR at which PER is 50 %, dB.
    pub per_midpoint_db: f64,
    /// PER sigmoid steepness, dB.
    pub per_slope_db: f64,
    /// Residual PER floor on a good link.
    pub per_floor: f64,
    /// Multiplicative measurement noise on throughput (std, fraction).
    pub tput_noise: f64,
}

impl Default for QoeCfg {
    fn default() -> Self {
        QoeCfg {
            bandwidth_hz: 9e6,
            efficiency: 0.65,
            max_se: 5.5,
            per_midpoint_db: -3.0,
            per_slope_db: 2.5,
            per_floor: 0.01,
            tput_noise: 0.08,
        }
    }
}

/// A QoE measurement sample aligned with a [`KpiSample`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct QoeSample {
    /// Seconds since trajectory start.
    pub t: f64,
    /// Downlink application throughput, Mbit/s.
    pub throughput_mbps: f64,
    /// Packet error rate in `[0, 1]`.
    pub per: f64,
}

/// Compute QoE ground truth for a KPI series. Deterministic in `seed`.
pub fn qoe_series(cfg: &QoeCfg, samples: &[KpiSample], seed: u64) -> Vec<QoeSample> {
    let mut rng = Rng::seed_from(seed);
    samples
        .iter()
        .map(|s| {
            let sinr_lin = 10f64.powf(s.sinr_db / 10.0);
            let se = (cfg.efficiency * (1.0 + sinr_lin).log2()).min(cfg.max_se);
            // The UE gets the cell's spare capacity share.
            let share = (1.0 - s.serving_load).clamp(0.05, 1.0);
            let noise = (1.0 + cfg.tput_noise * rng.normal()).max(0.2);
            let tput = cfg.bandwidth_hz * se * share * noise / 1e6;
            let per_raw =
                1.0 / (1.0 + ((s.sinr_db - cfg.per_midpoint_db) / cfg.per_slope_db).exp());
            let per = (per_raw + cfg.per_floor + 0.01 * rng.normal().abs()).clamp(0.0, 1.0);
            QoeSample {
                t: s.t,
                throughput_mbps: tput,
                per,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellId;

    fn sample(sinr_db: f64, load: f64) -> KpiSample {
        KpiSample {
            t: 0.0,
            rsrp_dbm: -85.0,
            rsrq_db: -10.0,
            sinr_db,
            cqi: 10,
            rssi_dbm: -60.0,
            serving: 0 as CellId,
            serving_load: load,
            visible_cells: 5,
            serving_dist_m: 400.0,
        }
    }

    #[test]
    fn better_sinr_means_more_throughput() {
        let cfg = QoeCfg::default();
        let good = qoe_series(&cfg, &[sample(20.0, 0.5)], 1)[0];
        let bad = qoe_series(&cfg, &[sample(-5.0, 0.5)], 1)[0];
        assert!(good.throughput_mbps > 2.0 * bad.throughput_mbps);
    }

    #[test]
    fn load_reduces_throughput() {
        let cfg = QoeCfg::default();
        let idle = qoe_series(&cfg, &[sample(10.0, 0.1)], 1)[0];
        let busy = qoe_series(&cfg, &[sample(10.0, 0.9)], 1)[0];
        assert!(idle.throughput_mbps > 2.0 * busy.throughput_mbps);
    }

    #[test]
    fn per_is_monotone_decreasing_in_sinr() {
        let cfg = QoeCfg::default();
        let worse = qoe_series(&cfg, &[sample(-10.0, 0.5)], 3)[0];
        let better = qoe_series(&cfg, &[sample(15.0, 0.5)], 3)[0];
        assert!(worse.per > better.per);
        assert!((0.0..=1.0).contains(&worse.per));
        assert!((0.0..=1.0).contains(&better.per));
    }

    #[test]
    fn throughput_scale_is_plausible() {
        // Typical loaded-city link (~5 dB SINR, 50 % load) lands in the
        // single-digit Mbps range like the paper's iPerf3 traces.
        let cfg = QoeCfg::default();
        let q = qoe_series(&cfg, &[sample(5.0, 0.5)], 7)[0];
        assert!(
            (0.5..30.0).contains(&q.throughput_mbps),
            "tput {}",
            q.throughput_mbps
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = QoeCfg::default();
        let a = qoe_series(&cfg, &[sample(5.0, 0.5), sample(7.0, 0.4)], 11);
        let b = qoe_series(&cfg, &[sample(5.0, 0.5), sample(7.0, 0.4)], 11);
        assert_eq!(a[1].throughput_mbps, b[1].throughput_mbps);
    }
}
