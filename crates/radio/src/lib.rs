//! # gendt-radio — LTE radio-network simulator
//!
//! The physical substrate that stands in for the paper's real drive-test
//! measurements (Nemo Handy / the CNI cell tracker): sectorized cell
//! deployments, a composite propagation model (pathloss + spatially
//! correlated shadowing + fast fading + antenna patterns), a KPI
//! measurement engine with A3 handover, and a QoE (throughput / packet
//! error rate) link model for the downstream use cases.
//!
//! See `DESIGN.md` §2 for the substitution argument: the synthetic KPI
//! series have the same structure a generative model must learn —
//! context-dependent means, location-correlated variation, and stochastic
//! serving-cell churn.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod kpi;
pub mod propagation;
pub mod qoe;

pub use cells::{Cell, CellId, Deployment};
pub use kpi::{
    avg_serving_dwell_s, cqi_from_sinr, dbm_to_mw, inter_handover_times, mw_to_dbm, KpiCfg,
    KpiEngine, KpiSample,
};
pub use propagation::{antenna_gain_db, pathloss_db, Fading, PropagationCfg, ShadowField};
pub use qoe::{qoe_series, QoeCfg, QoeSample};
