//! Radio-KPI measurement engine.
//!
//! Walks a trajectory through a deployment and produces, per sample, the
//! KPIs a drive-test tool reports (paper §2.2): RSRP, RSRQ, SINR, CQI, and
//! the serving cell id. Serving-cell selection uses the standard A3 event
//! (neighbor better than serving by a hysteresis, sustained for a
//! time-to-trigger), which produces the serving-cell churn the paper's
//! Figs. 1–2 highlight.

use crate::cells::{CellId, Deployment};
use crate::propagation::{mean_rx_power_dbm, Fading, PropagationCfg, ShadowField};
use gendt_geo::trajectory::Trajectory;
use gendt_geo::world::World;
use gendt_rng::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// dBm → milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Milliwatts → dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.max(1e-30).log10()
}

/// Measurement-engine configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KpiCfg {
    /// Number of LTE resource blocks (50 = 10 MHz).
    pub n_rb: usize,
    /// Receiver noise figure in dB.
    pub noise_figure_db: f64,
    /// A3 handover hysteresis in dB.
    pub a3_hysteresis_db: f64,
    /// A3 time-to-trigger in consecutive samples.
    pub a3_ttt_samples: usize,
    /// Maximum distance at which a cell can serve (`d_s`, paper §4.2:
    /// ~2 km in cities, ~4 km on highways — use the larger bound).
    pub serving_range_m: f64,
    /// Cap on the number of nearest cells evaluated per step; cells beyond
    /// this rank contribute negligible interference. Keeps dense-city
    /// measurement cost bounded.
    pub max_cells: usize,
    /// Mean cell load in `[0, 1]` (drives interference activity).
    pub mean_load: f64,
    /// Load OU time constant in seconds.
    pub load_tau_s: f64,
    /// Load OU standard deviation.
    pub load_sigma: f64,
}

impl Default for KpiCfg {
    fn default() -> Self {
        KpiCfg {
            n_rb: 50,
            noise_figure_db: 7.0,
            a3_hysteresis_db: 3.0,
            a3_ttt_samples: 2,
            serving_range_m: 4000.0,
            max_cells: 48,
            mean_load: 0.5,
            load_tau_s: 30.0,
            load_sigma: 0.2,
        }
    }
}

impl KpiCfg {
    /// Thermal-plus-receiver noise over the full carrier, in dBm.
    pub fn noise_floor_dbm(&self) -> f64 {
        // -174 dBm/Hz + 10 log10(n_rb * 180 kHz) + NF
        -174.0 + 10.0 * (self.n_rb as f64 * 180_000.0).log10() + self.noise_figure_db
    }
}

/// One drive-test measurement sample.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KpiSample {
    /// Seconds since trajectory start.
    pub t: f64,
    /// Reference Signal Received Power of the serving cell, dBm.
    pub rsrp_dbm: f64,
    /// Reference Signal Received Quality, dB.
    pub rsrq_db: f64,
    /// Signal to interference-plus-noise ratio, dB.
    pub sinr_db: f64,
    /// Channel quality indicator, 1–15.
    pub cqi: u8,
    /// Total received wideband power, dBm.
    pub rssi_dbm: f64,
    /// Serving cell id.
    pub serving: CellId,
    /// Serving-cell load in `[0, 1]` at this instant.
    pub serving_load: f64,
    /// Number of cells visible within the serving range.
    pub visible_cells: usize,
    /// 2-D distance to the serving cell, meters.
    pub serving_dist_m: f64,
}

/// CQI from SINR using a 15-step MCS-style mapping: thresholds spaced
/// ~1.9 dB apart from -6.7 dB (CQI 1) to ~20 dB (CQI 15).
pub fn cqi_from_sinr(sinr_db: f64) -> u8 {
    let idx = ((sinr_db + 6.7) / 1.9).floor() as i64 + 1;
    idx.clamp(1, 15) as u8
}

/// Measures KPIs along trajectories over a fixed deployment; owns the
/// per-cell shadowing fields (spatial, pass-invariant) and spawns per-pass
/// fading and load processes.
pub struct KpiEngine<'a> {
    world: &'a World,
    deployment: &'a Deployment,
    prop: PropagationCfg,
    cfg: KpiCfg,
    shadows: Vec<ShadowField>,
}

impl<'a> KpiEngine<'a> {
    /// Build an engine over a world and deployment.
    pub fn new(
        world: &'a World,
        deployment: &'a Deployment,
        prop: PropagationCfg,
        cfg: KpiCfg,
    ) -> Self {
        let shadows = (0..deployment.len() as u32)
            .map(|id| ShadowField::new(world.cfg.seed, id, &prop))
            .collect();
        KpiEngine {
            world,
            deployment,
            prop,
            cfg,
            shadows,
        }
    }

    /// KPI configuration in use.
    pub fn cfg(&self) -> &KpiCfg {
        &self.cfg
    }

    /// Measure one pass over a trajectory. `pass_seed` controls the
    /// pass-specific randomness (fading, load); repeated passes with
    /// different seeds over the same trajectory reproduce the variability
    /// of paper Fig. 1.
    pub fn measure(&self, traj: &Trajectory, pass_seed: u64) -> Vec<KpiSample> {
        let mut rng = Rng::seed_from(pass_seed);
        let mut fadings: HashMap<CellId, Fading> = HashMap::new();
        let mut pass_shadows: HashMap<CellId, Fading> = HashMap::new();
        let mut loads: HashMap<CellId, (f64, Rng)> = HashMap::new();
        let noise_mw = dbm_to_mw(self.cfg.noise_floor_dbm());
        let rb_factor = 10.0 * (12.0 * self.cfg.n_rb as f64).log10();

        let mut serving: Option<CellId> = None;
        let mut a3_count: usize = 0;
        let mut a3_candidate: Option<CellId> = None;
        let mut out = Vec::with_capacity(traj.points.len());
        let mut last_t = traj.points.first().map(|p| p.t).unwrap_or(0.0);

        for pt in &traj.points {
            let dt = (pt.t - last_t).max(1e-3);
            last_t = pt.t;
            let mut visible = self
                .deployment
                .cells_within(pt.pos, self.cfg.serving_range_m);
            visible.truncate(self.cfg.max_cells);
            if visible.is_empty() {
                // Out of coverage: emit a floor sample attached to the last
                // serving cell (or cell 0) so series stay dense.
                let sid = serving.unwrap_or(0);
                out.push(KpiSample {
                    t: pt.t,
                    rsrp_dbm: -140.0,
                    rsrq_db: -19.5,
                    sinr_db: -10.0,
                    cqi: 1,
                    rssi_dbm: self.cfg.noise_floor_dbm(),
                    serving: sid,
                    serving_load: self.cfg.mean_load,
                    visible_cells: 0,
                    serving_dist_m: f64::MAX,
                });
                continue;
            }

            // Per-cell instantaneous received power (dBm) and load.
            let mut powers: Vec<(CellId, f64, f64)> = Vec::with_capacity(visible.len());
            for &id in &visible {
                let cell = self.deployment.cell(id);
                let fading = fadings.entry(id).or_insert_with(|| {
                    Fading::new(pass_seed ^ ((id as u64 + 1) << 20), &self.prop)
                });
                let pass_shadow = pass_shadows.entry(id).or_insert_with(|| {
                    Fading::new_pass_shadow(
                        pass_seed ^ ((id as u64 + 1) << 21) ^ 0x5AD0,
                        &self.prop,
                    )
                });
                let (load, _) = {
                    let entry = loads.entry(id).or_insert_with(|| {
                        let mut r = Rng::seed_from(pass_seed ^ ((id as u64 + 1) << 40));
                        let init = (self.cfg.mean_load + self.cfg.load_sigma * r.normal())
                            .clamp(0.05, 0.95);
                        (init, r)
                    });
                    // OU load update.
                    let rho = (-dt / self.cfg.load_tau_s).exp();
                    let (l, r) = entry;
                    *l = (self.cfg.mean_load
                        + rho * (*l - self.cfg.mean_load)
                        + (1.0 - rho * rho).sqrt() * self.cfg.load_sigma * r.normal())
                    .clamp(0.05, 0.95);
                    (*l, ())
                };
                let mean = mean_rx_power_dbm(
                    &self.prop,
                    self.world,
                    cell,
                    pt.pos,
                    &self.shadows[id as usize],
                );
                let p = mean + fading.step(dt) + pass_shadow.step(dt);
                powers.push((id, p, load));
            }

            // Serving-cell selection with A3 hysteresis + TTT.
            powers.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let best = powers[0].0;
            let cur = match serving {
                Some(s) if powers.iter().any(|&(id, _, _)| id == s) => s,
                _ => {
                    serving = Some(best);
                    a3_count = 0;
                    a3_candidate = None;
                    best
                }
            };
            let cur_power = powers
                .iter()
                .find(|&&(id, _, _)| id == cur)
                .map(|&(_, p, _)| p)
                .unwrap();
            let serving_id = if best != cur && powers[0].1 > cur_power + self.cfg.a3_hysteresis_db {
                if a3_candidate == Some(best) {
                    a3_count += 1;
                } else {
                    a3_candidate = Some(best);
                    a3_count = 1;
                }
                if a3_count >= self.cfg.a3_ttt_samples {
                    serving = Some(best);
                    a3_count = 0;
                    a3_candidate = None;
                    best
                } else {
                    cur
                }
            } else {
                a3_count = 0;
                a3_candidate = None;
                cur
            };

            // Wideband powers: serving at full reference power; the
            // interference contribution of other cells scales with their
            // load (activity factor).
            let (serving_p, serving_load) = powers
                .iter()
                .find(|&&(id, _, _)| id == serving_id)
                .map(|&(_, p, l)| (p, l))
                .unwrap();
            let serving_mw = dbm_to_mw(serving_p);
            let mut interference_mw = 0.0;
            for &(id, p, load) in &powers {
                if id != serving_id {
                    interference_mw += dbm_to_mw(p) * load;
                }
            }
            let rssi_mw = serving_mw + interference_mw + noise_mw;
            let rssi_dbm = mw_to_dbm(rssi_mw);
            // RSRP: per-resource-element power of the serving cell
            // (paper: RSRP = RSSI - 10 log10(12 N_RB) when serving
            // dominates; we compute it from the serving power directly).
            let rsrp_dbm = (serving_p - rb_factor).clamp(-140.0, -44.0);
            // RSRQ = N_RB * RSRP / RSSI in linear terms, expressed in dB.
            let rsrq_db =
                (10.0 * (self.cfg.n_rb as f64).log10() + rsrp_dbm - rssi_dbm).clamp(-19.5, -3.0);
            let sinr_db = mw_to_dbm(serving_mw) - mw_to_dbm(interference_mw + noise_mw);
            let cqi = cqi_from_sinr(sinr_db + rng.uniform(-0.5, 0.5));

            out.push(KpiSample {
                t: pt.t,
                rsrp_dbm,
                rsrq_db,
                sinr_db,
                cqi,
                rssi_dbm,
                serving: serving_id,
                serving_load,
                visible_cells: powers.len(),
                serving_dist_m: self.deployment.cell(serving_id).pos.dist(&pt.pos),
            });
        }
        out
    }
}

/// Average time between serving-cell changes in a sample series, seconds.
/// Returns the full duration when no handover occurs.
pub fn avg_serving_dwell_s(samples: &[KpiSample]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let mut changes = 0usize;
    for w in samples.windows(2) {
        if w[0].serving != w[1].serving {
            changes += 1;
        }
    }
    let duration = samples.last().unwrap().t - samples.first().unwrap().t;
    duration / (changes + 1) as f64
}

/// Times between consecutive handovers, seconds (paper §6.3.2).
pub fn inter_handover_times(samples: &[KpiSample]) -> Vec<f64> {
    let mut out = Vec::new();
    let mut last_ho: Option<f64> = None;
    for w in samples.windows(2) {
        if w[0].serving != w[1].serving {
            let t = w[1].t;
            if let Some(prev) = last_ho {
                out.push(t - prev);
            }
            last_ho = Some(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::Deployment;
    use gendt_geo::trajectory::{generate, Scenario, TrajectoryCfg};
    use gendt_geo::world::{World, WorldCfg};
    use gendt_geo::XY;

    fn setup() -> (World, Deployment) {
        let w = World::generate(WorldCfg::city(21));
        let d = Deployment::from_world(&w);
        (w, d)
    }

    #[test]
    fn noise_floor_magnitude() {
        let cfg = KpiCfg::default();
        let nf = cfg.noise_floor_dbm();
        assert!((-100.0..-90.0).contains(&nf), "noise floor {nf}");
    }

    #[test]
    fn kpis_in_valid_ranges() {
        let (w, d) = setup();
        let engine = KpiEngine::new(&w, &d, PropagationCfg::default(), KpiCfg::default());
        let traj = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Walk, 300.0, XY::new(0.0, 0.0), 1),
        );
        let samples = engine.measure(&traj, 99);
        assert_eq!(samples.len(), traj.points.len());
        for s in &samples {
            assert!(
                (-140.0..=-44.0).contains(&s.rsrp_dbm),
                "RSRP {}",
                s.rsrp_dbm
            );
            assert!((-19.5..=-3.0).contains(&s.rsrq_db), "RSRQ {}", s.rsrq_db);
            assert!((1..=15).contains(&s.cqi), "CQI {}", s.cqi);
            assert!(s.sinr_db.is_finite());
            assert!((0.0..=1.0).contains(&s.serving_load));
        }
    }

    #[test]
    fn city_rsrp_is_plausible() {
        let (w, d) = setup();
        let engine = KpiEngine::new(&w, &d, PropagationCfg::default(), KpiCfg::default());
        let traj = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Tram, 900.0, XY::new(0.0, 0.0), 2),
        );
        let samples = engine.measure(&traj, 3);
        let mean: f64 = samples.iter().map(|s| s.rsrp_dbm).sum::<f64>() / samples.len() as f64;
        assert!((-105.0..-65.0).contains(&mean), "mean RSRP {mean}");
    }

    #[test]
    fn repeated_passes_differ_but_correlate() {
        let (w, d) = setup();
        let engine = KpiEngine::new(&w, &d, PropagationCfg::default(), KpiCfg::default());
        let traj = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Tram, 300.0, XY::new(0.0, 0.0), 2),
        );
        let a = engine.measure(&traj, 1);
        let b = engine.measure(&traj, 2);
        let diff: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x.rsrp_dbm - y.rsrp_dbm).abs())
            .sum::<f64>()
            / a.len() as f64;
        // Passes differ (fading/load/serving churn) but share the spatial
        // structure, so the difference is bounded.
        assert!(diff > 0.3, "passes identical: diff {diff}");
        assert!(diff < 15.0, "passes unrelated: diff {diff}");
    }

    #[test]
    fn same_seed_is_deterministic() {
        let (w, d) = setup();
        let engine = KpiEngine::new(&w, &d, PropagationCfg::default(), KpiCfg::default());
        let traj = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Bus, 200.0, XY::new(0.0, 0.0), 2),
        );
        let a = engine.measure(&traj, 5);
        let b = engine.measure(&traj, 5);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.rsrp_dbm, y.rsrp_dbm);
            assert_eq!(x.serving, y.serving);
        }
    }

    #[test]
    fn handovers_happen_on_moving_trajectories() {
        let (w, d) = setup();
        let engine = KpiEngine::new(&w, &d, PropagationCfg::default(), KpiCfg::default());
        let traj = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Tram, 1200.0, XY::new(0.0, 0.0), 4),
        );
        let samples = engine.measure(&traj, 7);
        let changes = samples
            .windows(2)
            .filter(|wn| wn[0].serving != wn[1].serving)
            .count();
        assert!(changes >= 3, "expected handovers, got {changes}");
        let dwell = avg_serving_dwell_s(&samples);
        assert!((10.0..300.0).contains(&dwell), "dwell {dwell}");
    }

    #[test]
    fn faster_scenarios_have_shorter_dwell() {
        let (w, d) = setup();
        let engine = KpiEngine::new(&w, &d, PropagationCfg::default(), KpiCfg::default());
        let walk = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Walk, 2000.0, XY::new(0.0, 0.0), 4),
        );
        let tram = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Tram, 2000.0, XY::new(0.0, 0.0), 4),
        );
        let dwell_walk = avg_serving_dwell_s(&engine.measure(&walk, 1));
        let dwell_tram = avg_serving_dwell_s(&engine.measure(&tram, 1));
        assert!(
            dwell_walk > dwell_tram,
            "walk dwell {dwell_walk} should exceed tram dwell {dwell_tram}"
        );
    }

    #[test]
    fn cqi_mapping_monotone_and_clamped() {
        assert_eq!(cqi_from_sinr(-20.0), 1);
        assert_eq!(cqi_from_sinr(40.0), 15);
        let mut last = 0;
        for s in -10..=25 {
            let c = cqi_from_sinr(s as f64);
            assert!(c >= last, "CQI not monotone at {s}");
            last = c;
        }
    }

    #[test]
    fn inter_handover_times_positive() {
        let (w, d) = setup();
        let engine = KpiEngine::new(&w, &d, PropagationCfg::default(), KpiCfg::default());
        let traj = generate(
            &w,
            &TrajectoryCfg::new(Scenario::Tram, 1800.0, XY::new(0.0, 0.0), 8),
        );
        let times = inter_handover_times(&engine.measure(&traj, 2));
        assert!(times.iter().all(|&t| t > 0.0));
    }
}
