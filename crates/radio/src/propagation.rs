//! Radio propagation: pathloss, antenna pattern, spatially correlated
//! shadowing, and fast fading.
//!
//! The model is a physically grounded composite:
//!
//! * **Pathloss** — log-distance with a land-use-dependent exponent and a
//!   clutter term (3GPP-UMa-like constants, COST-231-Hata family).
//! * **Antenna gain** — the standard 3GPP sectorized parabolic pattern
//!   with a 25 dB front-to-back floor.
//! * **Shadowing** — a deterministic-in-space lattice noise field per cell
//!   (two octaves, ~80 m and ~400 m correlation lengths), which plays the
//!   role of a Gudmundson-correlated log-normal field. Determinism in
//!   space means repeated passes over the same trajectory see the same
//!   shadowing, so the pass-to-pass variation seen in the paper's Fig. 1
//!   comes from fading, load, and serving-cell churn — as in reality.
//! * **Fast fading** — per-pass AR(1) process in time around 0 dB.

use crate::cells::Cell;
use gendt_geo::coords::{bearing_diff_deg, XY};
use gendt_geo::landuse::LandUse;
use gendt_geo::world::World;
use gendt_rng::Rng;
use serde::{Deserialize, Serialize};

/// Propagation model configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PropagationCfg {
    /// Pathloss intercept at 1 km in dB for the densest clutter.
    pub pl_intercept_db: f64,
    /// Reference pathloss exponent (urban); `10 n log10(d_km)` term.
    pub pl_exponent: f64,
    /// Shadowing standard deviation in dB.
    pub shadow_sigma_db: f64,
    /// Short shadowing correlation length in meters.
    pub shadow_corr_short_m: f64,
    /// Long shadowing correlation length in meters.
    pub shadow_corr_long_m: f64,
    /// Fast-fading standard deviation in dB.
    pub fading_sigma_db: f64,
    /// Fast-fading AR(1) time constant in seconds.
    pub fading_tau_s: f64,
    /// Slow per-pass shadow jitter in dB: dynamic-environment effects
    /// (traffic, foliage, parked vehicles) that change between repeated
    /// passes of the same route but persist for tens of seconds within a
    /// pass. This is the main source of the pass-to-pass variability the
    /// paper's Fig. 1 highlights.
    pub pass_shadow_sigma_db: f64,
    /// Time constant of the per-pass shadow jitter, seconds.
    pub pass_shadow_tau_s: f64,
    /// Antenna 3 dB beamwidth in degrees.
    pub beamwidth_deg: f64,
    /// Antenna front-to-back attenuation cap in dB.
    pub front_to_back_db: f64,
}

impl Default for PropagationCfg {
    fn default() -> Self {
        PropagationCfg {
            pl_intercept_db: 128.1,
            pl_exponent: 3.76,
            shadow_sigma_db: 6.0,
            shadow_corr_short_m: 80.0,
            shadow_corr_long_m: 400.0,
            fading_sigma_db: 3.0,
            fading_tau_s: 4.0,
            pass_shadow_sigma_db: 3.0,
            pass_shadow_tau_s: 60.0,
            beamwidth_deg: 65.0,
            front_to_back_db: 25.0,
        }
    }
}

/// Distance-dependent pathloss in dB, adjusted for the land use at the
/// receiver. Distances below 10 m are clamped.
pub fn pathloss_db(cfg: &PropagationCfg, dist_m: f64, land_use: LandUse) -> f64 {
    let d_km = (dist_m.max(10.0)) / 1000.0;
    // Clutter scales relative to dense urban (18 dB): open land propagates
    // with both a lower intercept and a slightly lower exponent.
    let clutter = land_use.clutter_db();
    let exponent = cfg.pl_exponent - 0.04 * (18.0 - clutter);
    cfg.pl_intercept_db + (clutter - 18.0) * 0.5 + 10.0 * exponent * d_km.log10()
}

/// 3GPP sectorized antenna gain in dB relative to boresight (non-positive).
pub fn antenna_gain_db(cfg: &PropagationCfg, cell: &Cell, ue: XY) -> f64 {
    let bearing = cell.pos.bearing_deg_to(&ue);
    let delta = bearing_diff_deg(bearing, cell.azimuth_deg);
    -(12.0 * (delta / cfg.beamwidth_deg).powi(2)).min(cfg.front_to_back_db)
}

/// Deterministic, spatially smooth shadowing field per cell.
///
/// Built from two octaves of seeded lattice noise with bilinear
/// interpolation; values are approximately `N(0, sigma^2)` and decorrelate
/// over the configured correlation lengths.
#[derive(Clone, Debug)]
pub struct ShadowField {
    seed: u64,
    sigma: f64,
    short_m: f64,
    long_m: f64,
}

fn lattice_hash(seed: u64, ix: i64, iy: i64) -> f64 {
    // SplitMix-style hash to a standard normal via two uniforms.
    let mut z = seed
        ^ (ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (iy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let u1 = ((z >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
    let z2 = z.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    let u2 = (z2 >> 11) as f64 / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn lattice_noise(seed: u64, p: XY, scale_m: f64) -> f64 {
    let fx = p.x / scale_m;
    let fy = p.y / scale_m;
    let ix = fx.floor() as i64;
    let iy = fy.floor() as i64;
    let tx = fx - ix as f64;
    let ty = fy - iy as f64;
    // Smoothstep for C1 continuity.
    let sx = tx * tx * (3.0 - 2.0 * tx);
    let sy = ty * ty * (3.0 - 2.0 * ty);
    let v00 = lattice_hash(seed, ix, iy);
    let v10 = lattice_hash(seed, ix + 1, iy);
    let v01 = lattice_hash(seed, ix, iy + 1);
    let v11 = lattice_hash(seed, ix + 1, iy + 1);
    let a = v00 + (v10 - v00) * sx;
    let b = v01 + (v11 - v01) * sx;
    a + (b - a) * sy
}

impl ShadowField {
    /// Shadowing field for one cell in one world.
    pub fn new(world_seed: u64, cell_id: u32, cfg: &PropagationCfg) -> Self {
        ShadowField {
            seed: world_seed ^ (cell_id as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F),
            sigma: cfg.shadow_sigma_db,
            short_m: cfg.shadow_corr_short_m,
            long_m: cfg.shadow_corr_long_m,
        }
    }

    /// Shadowing value at a position, in dB.
    pub fn at(&self, p: XY) -> f64 {
        // Two octaves; interpolated lattice noise has variance below 1, so
        // rescale empirically (~0.6 per octave combines to ~0.85).
        let s = 0.75 * lattice_noise(self.seed, p, self.short_m)
            + 0.66 * lattice_noise(self.seed ^ 0x5851_F42D_4C95_7F2D, p, self.long_m);
        self.sigma * s
    }
}

/// Per-pass AR(1) fast-fading process in time.
#[derive(Clone, Debug)]
pub struct Fading {
    rng: Rng,
    sigma: f64,
    tau_s: f64,
    state: f64,
}

impl Fading {
    /// New fast-fading process; `seed` should differ per (pass, cell).
    pub fn new(seed: u64, cfg: &PropagationCfg) -> Self {
        Self::with(seed, cfg.fading_sigma_db, cfg.fading_tau_s)
    }

    /// New slow per-pass shadow-jitter process (see
    /// [`PropagationCfg::pass_shadow_sigma_db`]).
    pub fn new_pass_shadow(seed: u64, cfg: &PropagationCfg) -> Self {
        Self::with(seed, cfg.pass_shadow_sigma_db, cfg.pass_shadow_tau_s)
    }

    /// AR(1) process with explicit parameters.
    pub fn with(seed: u64, sigma: f64, tau_s: f64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let state = rng.normal() * sigma;
        Fading {
            rng,
            sigma,
            tau_s,
            state,
        }
    }

    /// Advance by `dt` seconds and return the fading value in dB.
    pub fn step(&mut self, dt: f64) -> f64 {
        let rho = (-dt / self.tau_s).exp();
        self.state = rho * self.state + (1.0 - rho * rho).sqrt() * self.sigma * self.rng.normal();
        self.state
    }
}

/// Received wideband power from `cell` at `ue`, excluding fading, in dBm.
pub fn mean_rx_power_dbm(
    cfg: &PropagationCfg,
    world: &World,
    cell: &Cell,
    ue: XY,
    shadow: &ShadowField,
) -> f64 {
    let lu = world.land_use_at(ue);
    let pl = pathloss_db(cfg, cell.pos.dist(&ue), lu);
    let gain = antenna_gain_db(cfg, cell, ue);
    cell.p_max_dbm + gain - pl + shadow.at(ue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_geo::coords::LatLon;
    use gendt_geo::world::DistrictKind;

    fn cfg() -> PropagationCfg {
        PropagationCfg::default()
    }

    fn cell_at(pos: XY, az: f64) -> Cell {
        Cell {
            id: 0,
            pos,
            latlon: LatLon::new(0.0, 0.0),
            azimuth_deg: az,
            p_max_dbm: 57.0,
            district: DistrictKind::Urban,
        }
    }

    #[test]
    fn pathloss_increases_with_distance() {
        let c = cfg();
        let a = pathloss_db(&c, 100.0, LandUse::HighDenseUrban);
        let b = pathloss_db(&c, 1000.0, LandUse::HighDenseUrban);
        let d = pathloss_db(&c, 3000.0, LandUse::HighDenseUrban);
        assert!(a < b && b < d);
    }

    #[test]
    fn pathloss_typical_urban_magnitude() {
        // ~500 m dense urban should be in the 105-125 dB range.
        let pl = pathloss_db(&cfg(), 500.0, LandUse::ContinuousUrban);
        assert!((105.0..125.0).contains(&pl), "PL {pl}");
    }

    #[test]
    fn open_land_attenuates_less_than_city() {
        let c = cfg();
        let urban = pathloss_db(&c, 1000.0, LandUse::ContinuousUrban);
        let open = pathloss_db(&c, 1000.0, LandUse::BarrenLands);
        assert!(open < urban - 5.0, "urban {urban}, open {open}");
    }

    #[test]
    fn antenna_gain_peaks_at_boresight() {
        let c = cfg();
        let cell = cell_at(XY::new(0.0, 0.0), 0.0); // pointing north
        let front = antenna_gain_db(&c, &cell, XY::new(0.0, 500.0));
        let side = antenna_gain_db(&c, &cell, XY::new(500.0, 0.0));
        let back = antenna_gain_db(&c, &cell, XY::new(0.0, -500.0));
        assert!(front > side && side > back);
        assert!((front - 0.0).abs() < 1e-9);
        assert!((back + c.front_to_back_db).abs() < 1e-9);
    }

    #[test]
    fn shadowing_is_deterministic_in_space() {
        let c = cfg();
        let f = ShadowField::new(7, 3, &c);
        let p = XY::new(123.0, -456.0);
        assert_eq!(f.at(p), f.at(p));
        let f2 = ShadowField::new(7, 3, &c);
        assert_eq!(f.at(p), f2.at(p));
    }

    #[test]
    fn shadowing_decorrelates_with_distance() {
        let c = cfg();
        let f = ShadowField::new(11, 1, &c);
        // Close points are similar; far points differ on average.
        let mut near_diff = 0.0;
        let mut far_diff = 0.0;
        let n = 200;
        for i in 0..n {
            let p = XY::new(i as f64 * 37.0, i as f64 * 17.0);
            near_diff += (f.at(p) - f.at(XY::new(p.x + 5.0, p.y))).abs();
            far_diff += (f.at(p) - f.at(XY::new(p.x + 2000.0, p.y))).abs();
        }
        assert!(
            near_diff / n as f64 * 3.0 < far_diff / n as f64,
            "near {near_diff}, far {far_diff}"
        );
    }

    #[test]
    fn shadowing_sigma_is_plausible() {
        let c = cfg();
        let f = ShadowField::new(5, 9, &c);
        let vals: Vec<f64> = (0..4000)
            .map(|i| f.at(XY::new((i % 64) as f64 * 310.0, (i / 64) as f64 * 290.0)))
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let std = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt();
        assert!(mean.abs() < 1.0, "shadow mean {mean}");
        assert!((3.0..9.0).contains(&std), "shadow std {std}");
    }

    #[test]
    fn fading_is_zero_mean_and_correlated() {
        let c = cfg();
        let mut f = Fading::new(3, &c);
        let xs: Vec<f64> = (0..5000).map(|_| f.step(1.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.35, "fading mean {mean}");
        // Lag-1 autocorrelation should be near exp(-1/tau) = exp(-0.25).
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        let cov: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (xs.len() - 1) as f64;
        let rho = cov / var;
        assert!((rho - (-0.25f64).exp()).abs() < 0.1, "rho {rho}");
    }
}
