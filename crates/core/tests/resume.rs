//! Kill-and-resume: SIGKILL `gendt-train` mid-run, resume from the
//! rolling `latest` checkpoint, and require the final model to be
//! bitwise-identical to an uninterrupted run with the same seed.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes tests that arm the process-global fault plan.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn train_bin() -> &'static str {
    env!("CARGO_BIN_EXE_gendt-train")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gendt-resume-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run_to_completion(dir: &Path, resume: bool) {
    let mut cmd = Command::new(train_bin());
    cmd.args(["--out"])
        .arg(dir)
        .args(["--steps", "10", "--seed", "7", "--ckpt-every", "2"])
        .env_remove("GENDT_FAULTS")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if resume {
        cmd.arg("--resume");
    }
    let status = cmd.status().expect("spawn gendt-train");
    assert!(status.success(), "gendt-train failed: {status:?}");
}

fn has_checkpoint(dir: &Path) -> bool {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok()).any(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with("step_") && name.ends_with(".ckpt")
            })
        })
        .unwrap_or(false)
}

#[test]
fn kill_and_resume_is_bitwise_identical() {
    // Uninterrupted baseline with the same seed and step count.
    let baseline = fresh_dir("baseline");
    run_to_completion(&baseline, false);
    let want = std::fs::read(baseline.join("final.json")).expect("baseline final model");

    // Victim run: slowed via the fault harness so the SIGKILL reliably
    // lands mid-training, after at least one checkpoint exists.
    let victim = fresh_dir("victim");
    let mut child = Command::new(train_bin())
        .args(["--out"])
        .arg(&victim)
        .args(["--steps", "10", "--seed", "7", "--ckpt-every", "2"])
        .env("GENDT_FAULTS", "slow@train.step:ms=200")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn gendt-train victim");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !has_checkpoint(&victim) {
        assert!(Instant::now() < deadline, "no checkpoint appeared in 60s");
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!("victim exited before it could be killed: {status:?}");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL the victim"); // SIGKILL on unix
    child.wait().expect("reap the victim");

    // Resume from whatever the kill left behind and finish the run.
    run_to_completion(&victim, true);
    let got = std::fs::read(victim.join("final.json")).expect("resumed final model");
    assert_eq!(
        got, want,
        "resumed final model differs bitwise from the uninterrupted run"
    );

    std::fs::remove_dir_all(&baseline).ok();
    std::fs::remove_dir_all(&victim).ok();
}

#[test]
fn resume_without_checkpoints_fails_with_taxonomy_exit_code() {
    let dir = fresh_dir("empty-resume");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let status = Command::new(train_bin())
        .args(["--out"])
        .arg(&dir)
        .args(["--steps", "4", "--seed", "7", "--resume"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn gendt-train");
    // "no training checkpoint found" is a Corrupt-kind failure → exit 4.
    assert_eq!(status.code(), Some(4), "unexpected exit: {status:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flags_exit_with_config_code() {
    let status = Command::new(train_bin())
        .args(["--steps", "banana"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn gendt-train");
    assert_eq!(status.code(), Some(2), "config errors map to exit 2");
}

#[test]
fn injected_write_fault_never_corrupts_the_latest_checkpoint() {
    let _g = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let dir = fresh_dir("write-fault");

    let mut cfg = gendt::GenDtCfg::builder(4, 57)
        .hidden(8)
        .resgen_hidden(8)
        .disc_hidden(4)
        .window(10, 10)
        .max_cells(2)
        .batch_size(4)
        .build()
        .expect("valid config");
    cfg.steps = 2;
    let ds = gendt_data::builders::dataset_a(&gendt_data::builders::BuildCfg::quick(58));
    let run = &ds.runs[0];
    let ctx = gendt_data::context::extract(
        &ds.world,
        &ds.deployment,
        &run.traj,
        &gendt_data::context::ContextCfg {
            max_cells: 2,
            ..Default::default()
        },
    );
    let pool = gendt_data::windows::windows(
        run,
        &ctx,
        &gendt_data::kpi_types::Kpi::DATASET_A,
        &cfg.window,
    );

    let mut model = gendt::GenDt::new(cfg);
    model.train_step(&pool);
    gendt::save_train_checkpoint(&model, 1, &dir).expect("first checkpoint");

    // Every subsequent write fails with an injected io::Error; the
    // step-1 checkpoint and its `latest` pointer must survive untouched.
    gendt_faults::set_spec("io_err@checkpoint.write:n=100", 3).expect("arm faults");
    model.train_step(&pool);
    let res = gendt::save_train_checkpoint(&model, 2, &dir);
    gendt_faults::clear_faults();
    let err = res.expect_err("injected write fault must surface");
    assert!(
        err.to_string().contains("injected fault"),
        "undescriptive error: {err}"
    );

    let (_model, step, _path) = gendt::resume_latest(&dir).expect("resume after failed write");
    assert_eq!(step, 1, "failed write must leave the old latest intact");
    std::fs::remove_dir_all(&dir).ok();
}
