//! Uncertainty-driven training-data selection (paper §6.2.2).
//!
//! Mimics the real-world measurement-collection loop: start from one small
//! regional subset, train, score every remaining subset by the model's
//! MC-dropout uncertainty, add the most uncertain subset, retrain, and
//! track fidelity on a held-out long trajectory at each step. A random-
//! selection twin provides the comparison curve of Fig. 11.

use crate::cfg::GenDtCfg;
use crate::generate::{generate_series, model_uncertainty};
use crate::trainer::GenDt;
use gendt_data::context::RunContext;
use gendt_data::kpi_types::Kpi;
use gendt_data::windows::Window;
use gendt_metrics::Fidelity;
use gendt_nn::Rng;
use serde::{Deserialize, Serialize};

/// How the next training subset is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Highest model uncertainty first (GenDT's approach).
    Uncertainty,
    /// Uniformly at random (the baseline curve).
    Random,
}

/// One point of the selection curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SelectionPoint {
    /// Number of subsets in the training set at this step.
    pub subsets_used: usize,
    /// Fraction of all available data used, in `[0, 1]`.
    pub data_fraction: f64,
    /// Index of the subset added at this step.
    pub added_subset: usize,
    /// Fidelity of generated RSRP on the held-out evaluation trajectory.
    pub eval: Fidelity,
}

/// Inputs of one active-learning experiment.
pub struct ActiveConfig<'a> {
    /// Model configuration template (retrained from scratch each step, as
    /// in the paper's setup).
    pub model_cfg: GenDtCfg,
    /// Training windows per regional subset.
    pub subsets: &'a [Vec<Window>],
    /// Contexts used to score subset uncertainty (one per subset; usually
    /// extracted from one representative run of the subset).
    pub subset_ctx: &'a [RunContext],
    /// Held-out evaluation trajectory context.
    pub eval_ctx: &'a RunContext,
    /// Real KPI series on the evaluation trajectory (for fidelity).
    pub eval_real: &'a [f64],
    /// The KPI channel evaluated (index into the model's KPI list).
    pub eval_kpi: Kpi,
    /// Full KPI channel list of the model.
    pub kpis: &'a [Kpi],
    /// Number of selection steps (subsets added beyond the first).
    pub steps: usize,
    /// MC samples for the uncertainty score.
    pub mc_samples: usize,
    /// Seed.
    pub seed: u64,
}

/// Run the selection loop under a policy; returns one curve point per
/// training-set size.
pub fn run_selection(cfg: &ActiveConfig<'_>, policy: SelectionPolicy) -> Vec<SelectionPoint> {
    assert_eq!(
        cfg.subsets.len(),
        cfg.subset_ctx.len(),
        "subset/context mismatch"
    );
    assert!(!cfg.subsets.is_empty(), "no subsets");
    let mut rng = Rng::seed_from(cfg.seed);
    let total: usize = cfg.subsets.iter().map(|s| s.len()).sum();
    let mut selected: Vec<usize> = vec![0]; // both policies share the start subset
    let mut remaining: Vec<usize> = (1..cfg.subsets.len()).collect();
    let mut out = Vec::new();

    for step in 0..=cfg.steps {
        // Train from scratch on the selected subsets.
        let mut pool = Vec::new();
        for &i in &selected {
            pool.extend(cfg.subsets[i].iter().cloned());
        }
        let mut model_cfg = cfg.model_cfg.clone();
        model_cfg.seed = cfg.seed ^ ((step as u64 + 1) << 16);
        let mut model = GenDt::new(model_cfg);
        if !pool.is_empty() {
            model.train(&pool);
        }

        // Evaluate on the held-out trajectory, averaging several sample
        // draws so optimization progress — not sampling noise — drives
        // the curve.
        let mut draws = Vec::new();
        for d in 0..3u64 {
            let gen = generate_series(
                &mut model,
                cfg.eval_ctx,
                cfg.kpis,
                false,
                cfg.seed ^ 0xE7A1 ^ (d << 40),
            );
            if let Some(series) = gen.channel(cfg.eval_kpi) {
                if !series.is_empty() {
                    let n = series.len().min(cfg.eval_real.len());
                    draws.push(Fidelity::compute(&cfg.eval_real[..n], &series[..n]));
                }
            }
        }
        let eval = Fidelity::average(&draws);
        let used: usize = selected.iter().map(|&i| cfg.subsets[i].len()).sum();
        out.push(SelectionPoint {
            subsets_used: selected.len(),
            data_fraction: used as f64 / total.max(1) as f64,
            added_subset: *selected.last().unwrap(),
            eval,
        });

        if remaining.is_empty() || step == cfg.steps {
            break;
        }

        // Choose the next subset.
        let next_pos = match policy {
            SelectionPolicy::Random => rng.gen_range(remaining.len()),
            SelectionPolicy::Uncertainty => {
                let mut best = 0usize;
                let mut best_u = f64::MIN;
                for (pos, &i) in remaining.iter().enumerate() {
                    let rep = model_uncertainty(
                        &mut model,
                        &cfg.subset_ctx[i],
                        cfg.mc_samples,
                        cfg.seed ^ ((i as u64 + 1) << 8),
                    );
                    if rep.model_uncertainty > best_u {
                        best_u = rep.model_uncertainty;
                        best = pos;
                    }
                }
                best
            }
        };
        selected.push(remaining.swap_remove(next_pos));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::context::{extract, ContextCfg};
    use gendt_data::windows::windows as make_windows;

    #[test]
    fn selection_curves_have_expected_shape() {
        let mut model_cfg = GenDtCfg::fast(4, 5);
        model_cfg.hidden = 8;
        model_cfg.resgen_hidden = 8;
        model_cfg.disc_hidden = 4;
        model_cfg.window.len = 10;
        model_cfg.window.stride = 10;
        model_cfg.window.max_cells = 2;
        model_cfg.steps = 3;
        model_cfg.batch_size = 4;

        let ds = dataset_a(&BuildCfg::quick(53));
        let ctx_cfg = ContextCfg {
            max_cells: 2,
            ..ContextCfg::default()
        };
        let mut subsets = Vec::new();
        let mut subset_ctx = Vec::new();
        for run in ds.runs.iter().take(3) {
            let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ctx_cfg);
            subsets.push(make_windows(run, &ctx, &Kpi::DATASET_A, &model_cfg.window));
            subset_ctx.push(ctx);
        }
        let eval_run = &ds.runs[4];
        let eval_ctx = extract(&ds.world, &ds.deployment, &eval_run.traj, &ctx_cfg);
        let eval_real = eval_run.series(Kpi::Rsrp);

        let cfg = ActiveConfig {
            model_cfg,
            subsets: &subsets,
            subset_ctx: &subset_ctx,
            eval_ctx: &eval_ctx,
            eval_real: &eval_real,
            eval_kpi: Kpi::Rsrp,
            kpis: &Kpi::DATASET_A,
            steps: 2,
            mc_samples: 2,
            seed: 77,
        };
        let unc = run_selection(&cfg, SelectionPolicy::Uncertainty);
        let rnd = run_selection(&cfg, SelectionPolicy::Random);
        assert_eq!(unc.len(), 3);
        assert_eq!(rnd.len(), 3);
        // Data fraction grows monotonically and stays in (0, 1].
        for curve in [&unc, &rnd] {
            for pair in curve.windows(2) {
                assert!(pair[1].data_fraction > pair[0].data_fraction);
            }
            assert!(curve.last().unwrap().data_fraction <= 1.0);
        }
        // Both start from the same first subset.
        assert_eq!(unc[0].added_subset, rnd[0].added_subset);
    }
}
