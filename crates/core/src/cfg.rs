//! GenDT model configuration and ablation switches.

use gendt_data::windows::WindowCfg;
use gendt_faults::GendtError;
use gendt_nn::StochasticCfg;
use serde::{Deserialize, Serialize};

/// Ablation switches (paper Table 12): each disables one design element.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Ablation {
    /// Use the ResGen residual generator (environment-conditioned
    /// autoregressive Gaussian head).
    pub resgen: bool,
    /// Use the SRNN stochastic layers in the LSTMs.
    pub srnn: bool,
    /// Include the adversarial (GAN) loss term.
    pub gan_loss: bool,
    /// Train with overlapping batch windows; `false` trains on whole-run
    /// chunks with stride = window length (the "No batch" ablation).
    pub overlap_batching: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Ablation {
            resgen: true,
            srnn: true,
            gan_loss: true,
            overlap_batching: true,
        }
    }
}

/// Full model configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GenDtCfg {
    /// Number of output KPI channels (`N_ch`).
    pub n_ch: usize,
    /// LSTM hidden dimension (`H`, paper default 100).
    pub hidden: usize,
    /// Windowing (batch length `L`, stride `Δt`).
    pub window: WindowCfg,
    /// GNN-node input-noise dimension (`N_z0`).
    pub n_z0: usize,
    /// ResGen input-noise dimension (`N_z1`).
    pub n_z1: usize,
    /// ResGen hidden layer width.
    pub resgen_hidden: usize,
    /// Discriminator hidden dimension.
    pub disc_hidden: usize,
    /// SRNN noise intensities.
    pub stochastic: StochasticCfg,
    /// Adversarial-loss weight `λ` (paper default 0.1).
    pub lambda_gan: f32,
    /// Dropout probability before ResGen's final layer.
    pub dropout: f32,
    /// Generator learning rate.
    pub lr_g: f32,
    /// Discriminator learning rate.
    pub lr_d: f32,
    /// Mini-batch size (windows per step).
    pub batch_size: usize,
    /// Training steps.
    pub steps: usize,
    /// Gradient-norm clip.
    pub grad_clip: f32,
    /// Data-parallel shards per training step. The mini-batch is split
    /// into this many fixed contiguous row ranges whose forward/backward
    /// passes may run on worker threads; gradients are reduced in shard
    /// order, so results depend on this value but never on the thread
    /// count. `1` reproduces unsharded training exactly.
    pub train_shards: usize,
    /// Ablation switches.
    pub ablation: Ablation,
    /// Seed for weight init and training randomness.
    pub seed: u64,
}

impl GenDtCfg {
    /// Paper-faithful settings (`H = 100`, `L = 50`, `Δt = 5`, `λ = 0.1`,
    /// `a_h = a_c = 2`). Heavy on a single CPU core — used for the final
    /// full experiment runs.
    pub fn paper(n_ch: usize, seed: u64) -> Self {
        GenDtCfg {
            n_ch,
            hidden: 100,
            window: WindowCfg::training(),
            n_z0: 2,
            n_z1: 4,
            resgen_hidden: 64,
            disc_hidden: 32,
            stochastic: StochasticCfg::paper_default(),
            lambda_gan: 0.1,
            dropout: 0.2,
            lr_g: 2e-3,
            lr_d: 1e-3,
            batch_size: 8,
            steps: 300,
            grad_clip: 5.0,
            train_shards: 2,
            ablation: Ablation::default(),
            seed,
        }
    }

    /// Reduced settings for CPU-budget experiments and tests: smaller
    /// hidden size and shorter windows, same architecture. Documented in
    /// EXPERIMENTS.md as the deviation from the paper's training scale.
    pub fn fast(n_ch: usize, seed: u64) -> Self {
        GenDtCfg {
            hidden: 32,
            window: gendt_data::windows::WindowCfg {
                len: 30,
                stride: 6,
                max_cells: 6,
                ar_context: 4,
            },
            resgen_hidden: 32,
            disc_hidden: 16,
            batch_size: 8,
            steps: 120,
            ..Self::paper(n_ch, seed)
        }
    }

    /// Generation windowing: non-overlapping with the same length.
    pub fn generation_window(&self) -> WindowCfg {
        WindowCfg {
            stride: self.window.len,
            ..self.window
        }
    }

    /// Training windowing honoring the batching ablation: without overlap
    /// batching, the stride equals the window length.
    pub fn training_window(&self) -> WindowCfg {
        if self.ablation.overlap_batching {
            self.window
        } else {
            WindowCfg {
                stride: self.window.len,
                ..self.window
            }
        }
    }

    /// Start a validated builder from the `fast` profile. `build()`
    /// rejects degenerate values (zero batch window, zero-size layers,
    /// non-finite learning rates) with a descriptive [`GendtError`]
    /// instead of panicking deep inside training.
    pub fn builder(n_ch: usize, seed: u64) -> GenDtCfgBuilder {
        GenDtCfgBuilder {
            cfg: GenDtCfg::fast(n_ch, seed),
        }
    }

    /// Check every field for degenerate values. Construction through
    /// [`builder`](Self::builder) calls this; direct struct literals can
    /// call it before handing the config to [`crate::GenDt::new`].
    pub fn validate(&self) -> Result<(), GendtError> {
        let bad = |msg: String| Err(GendtError::config(format!("GenDtCfg: {msg}")));
        if self.n_ch == 0 {
            return bad("n_ch must be > 0 (no KPI channels to model)".into());
        }
        if self.hidden == 0 || self.resgen_hidden == 0 || self.disc_hidden == 0 {
            return bad(format!(
                "layer sizes must be > 0 (hidden={}, resgen_hidden={}, disc_hidden={})",
                self.hidden, self.resgen_hidden, self.disc_hidden
            ));
        }
        if self.window.len == 0 {
            return bad("window.len must be > 0 (zero batch window)".into());
        }
        if self.window.stride == 0 {
            return bad("window.stride must be > 0 (windowing would not advance)".into());
        }
        if self.window.max_cells == 0 {
            return bad("window.max_cells must be > 0 (no serving-cell candidates)".into());
        }
        if self.batch_size == 0 {
            return bad("batch_size must be > 0".into());
        }
        if self.train_shards == 0 {
            return bad("train_shards must be > 0".into());
        }
        for (name, lr) in [("lr_g", self.lr_g), ("lr_d", self.lr_d)] {
            if !(lr.is_finite() && lr > 0.0) {
                return bad(format!("{name}={lr} must be finite and > 0"));
            }
        }
        if !(self.lambda_gan.is_finite() && self.lambda_gan >= 0.0) {
            return bad(format!(
                "lambda_gan={} must be finite and >= 0",
                self.lambda_gan
            ));
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return bad(format!("dropout={} must be in [0, 1)", self.dropout));
        }
        if !(self.grad_clip.is_finite() && self.grad_clip > 0.0) {
            return bad(format!(
                "grad_clip={} must be finite and > 0",
                self.grad_clip
            ));
        }
        Ok(())
    }
}

/// Builder for [`GenDtCfg`] whose `build()` validates instead of
/// letting a bad value panic later (`gen_range(0)`, zero-size matmul).
#[derive(Clone, Debug)]
pub struct GenDtCfgBuilder {
    cfg: GenDtCfg,
}

impl GenDtCfgBuilder {
    /// LSTM hidden dimension.
    pub fn hidden(mut self, hidden: usize) -> Self {
        self.cfg.hidden = hidden;
        self
    }

    /// ResGen hidden layer width.
    pub fn resgen_hidden(mut self, width: usize) -> Self {
        self.cfg.resgen_hidden = width;
        self
    }

    /// Discriminator hidden dimension.
    pub fn disc_hidden(mut self, width: usize) -> Self {
        self.cfg.disc_hidden = width;
        self
    }

    /// Batch window length and stride.
    pub fn window(mut self, len: usize, stride: usize) -> Self {
        self.cfg.window.len = len;
        self.cfg.window.stride = stride;
        self
    }

    /// Serving-cell candidates per step.
    pub fn max_cells(mut self, max_cells: usize) -> Self {
        self.cfg.window.max_cells = max_cells;
        self
    }

    /// Mini-batch size (windows per step).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.cfg.batch_size = batch_size;
        self
    }

    /// Training steps.
    pub fn steps(mut self, steps: usize) -> Self {
        self.cfg.steps = steps;
        self
    }

    /// Generator / discriminator learning rates.
    pub fn learning_rates(mut self, lr_g: f32, lr_d: f32) -> Self {
        self.cfg.lr_g = lr_g;
        self.cfg.lr_d = lr_d;
        self
    }

    /// Data-parallel shards per training step.
    pub fn train_shards(mut self, shards: usize) -> Self {
        self.cfg.train_shards = shards;
        self
    }

    /// Ablation switches.
    pub fn ablation(mut self, ablation: Ablation) -> Self {
        self.cfg.ablation = ablation;
        self
    }

    /// Validate and return the configuration.
    pub fn build(self) -> Result<GenDtCfg, GendtError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_paper() {
        let c = GenDtCfg::paper(4, 1);
        assert_eq!(c.hidden, 100);
        assert_eq!(c.window.len, 50);
        assert_eq!(c.window.stride, 5);
        assert!((c.lambda_gan - 0.1).abs() < 1e-9);
        assert_eq!(c.stochastic.a_h, 2.0);
    }

    #[test]
    fn generation_window_is_non_overlapping() {
        let c = GenDtCfg::fast(2, 1);
        let w = c.generation_window();
        assert_eq!(w.stride, w.len);
    }

    #[test]
    fn builder_validates_and_rejects_degenerate_configs() {
        let cfg = GenDtCfg::builder(4, 1)
            .hidden(16)
            .window(20, 5)
            .batch_size(4)
            .steps(10)
            .build()
            .expect("valid config builds");
        assert_eq!(cfg.hidden, 16);
        assert_eq!(cfg.window.len, 20);

        // Zero batch window is the canonical degenerate value.
        let err = GenDtCfg::builder(4, 1)
            .window(0, 5)
            .build()
            .expect_err("zero window must be rejected");
        assert_eq!(err.kind(), gendt_faults::ErrorKind::Config);
        assert!(err.context().contains("zero batch window"), "{err}");

        for bad in [
            GenDtCfg::builder(0, 1).build(),
            GenDtCfg::builder(4, 1).hidden(0).build(),
            GenDtCfg::builder(4, 1).window(10, 0).build(),
            GenDtCfg::builder(4, 1).batch_size(0).build(),
            GenDtCfg::builder(4, 1).train_shards(0).build(),
            GenDtCfg::builder(4, 1).learning_rates(-1.0, 1e-3).build(),
            GenDtCfg::builder(4, 1)
                .learning_rates(f32::NAN, 1e-3)
                .build(),
        ] {
            let err = bad.expect_err("degenerate config must be rejected");
            assert_eq!(err.kind(), gendt_faults::ErrorKind::Config);
        }
    }

    #[test]
    fn paper_and_fast_profiles_validate() {
        GenDtCfg::paper(4, 1)
            .validate()
            .expect("paper profile valid");
        GenDtCfg::fast(2, 1).validate().expect("fast profile valid");
    }

    #[test]
    fn batching_ablation_disables_overlap() {
        let mut c = GenDtCfg::fast(2, 1);
        assert!(c.training_window().stride < c.training_window().len);
        c.ablation.overlap_batching = false;
        assert_eq!(c.training_window().stride, c.training_window().len);
    }
}
