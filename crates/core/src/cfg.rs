//! GenDT model configuration and ablation switches.

use gendt_data::windows::WindowCfg;
use gendt_nn::StochasticCfg;
use serde::{Deserialize, Serialize};

/// Ablation switches (paper Table 12): each disables one design element.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Ablation {
    /// Use the ResGen residual generator (environment-conditioned
    /// autoregressive Gaussian head).
    pub resgen: bool,
    /// Use the SRNN stochastic layers in the LSTMs.
    pub srnn: bool,
    /// Include the adversarial (GAN) loss term.
    pub gan_loss: bool,
    /// Train with overlapping batch windows; `false` trains on whole-run
    /// chunks with stride = window length (the "No batch" ablation).
    pub overlap_batching: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Ablation {
            resgen: true,
            srnn: true,
            gan_loss: true,
            overlap_batching: true,
        }
    }
}

/// Full model configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GenDtCfg {
    /// Number of output KPI channels (`N_ch`).
    pub n_ch: usize,
    /// LSTM hidden dimension (`H`, paper default 100).
    pub hidden: usize,
    /// Windowing (batch length `L`, stride `Δt`).
    pub window: WindowCfg,
    /// GNN-node input-noise dimension (`N_z0`).
    pub n_z0: usize,
    /// ResGen input-noise dimension (`N_z1`).
    pub n_z1: usize,
    /// ResGen hidden layer width.
    pub resgen_hidden: usize,
    /// Discriminator hidden dimension.
    pub disc_hidden: usize,
    /// SRNN noise intensities.
    pub stochastic: StochasticCfg,
    /// Adversarial-loss weight `λ` (paper default 0.1).
    pub lambda_gan: f32,
    /// Dropout probability before ResGen's final layer.
    pub dropout: f32,
    /// Generator learning rate.
    pub lr_g: f32,
    /// Discriminator learning rate.
    pub lr_d: f32,
    /// Mini-batch size (windows per step).
    pub batch_size: usize,
    /// Training steps.
    pub steps: usize,
    /// Gradient-norm clip.
    pub grad_clip: f32,
    /// Data-parallel shards per training step. The mini-batch is split
    /// into this many fixed contiguous row ranges whose forward/backward
    /// passes may run on worker threads; gradients are reduced in shard
    /// order, so results depend on this value but never on the thread
    /// count. `1` reproduces unsharded training exactly.
    pub train_shards: usize,
    /// Ablation switches.
    pub ablation: Ablation,
    /// Seed for weight init and training randomness.
    pub seed: u64,
}

impl GenDtCfg {
    /// Paper-faithful settings (`H = 100`, `L = 50`, `Δt = 5`, `λ = 0.1`,
    /// `a_h = a_c = 2`). Heavy on a single CPU core — used for the final
    /// full experiment runs.
    pub fn paper(n_ch: usize, seed: u64) -> Self {
        GenDtCfg {
            n_ch,
            hidden: 100,
            window: WindowCfg::training(),
            n_z0: 2,
            n_z1: 4,
            resgen_hidden: 64,
            disc_hidden: 32,
            stochastic: StochasticCfg::paper_default(),
            lambda_gan: 0.1,
            dropout: 0.2,
            lr_g: 2e-3,
            lr_d: 1e-3,
            batch_size: 8,
            steps: 300,
            grad_clip: 5.0,
            train_shards: 2,
            ablation: Ablation::default(),
            seed,
        }
    }

    /// Reduced settings for CPU-budget experiments and tests: smaller
    /// hidden size and shorter windows, same architecture. Documented in
    /// EXPERIMENTS.md as the deviation from the paper's training scale.
    pub fn fast(n_ch: usize, seed: u64) -> Self {
        GenDtCfg {
            hidden: 32,
            window: gendt_data::windows::WindowCfg {
                len: 30,
                stride: 6,
                max_cells: 6,
                ar_context: 4,
            },
            resgen_hidden: 32,
            disc_hidden: 16,
            batch_size: 8,
            steps: 120,
            ..Self::paper(n_ch, seed)
        }
    }

    /// Generation windowing: non-overlapping with the same length.
    pub fn generation_window(&self) -> WindowCfg {
        WindowCfg {
            stride: self.window.len,
            ..self.window
        }
    }

    /// Training windowing honoring the batching ablation: without overlap
    /// batching, the stride equals the window length.
    pub fn training_window(&self) -> WindowCfg {
        if self.ablation.overlap_batching {
            self.window
        } else {
            WindowCfg {
                stride: self.window.len,
                ..self.window
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_paper() {
        let c = GenDtCfg::paper(4, 1);
        assert_eq!(c.hidden, 100);
        assert_eq!(c.window.len, 50);
        assert_eq!(c.window.stride, 5);
        assert!((c.lambda_gan - 0.1).abs() < 1e-9);
        assert_eq!(c.stochastic.a_h, 2.0);
    }

    #[test]
    fn generation_window_is_non_overlapping() {
        let c = GenDtCfg::fast(2, 1);
        let w = c.generation_window();
        assert_eq!(w.stride, w.len);
    }

    #[test]
    fn batching_ablation_disables_overlap() {
        let mut c = GenDtCfg::fast(2, 1);
        assert!(c.training_window().stride < c.training_window().len);
        c.ablation.overlap_batching = false;
        assert_eq!(c.training_window().stride, c.training_window().len);
    }
}
