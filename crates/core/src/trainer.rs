//! GenDT training (paper §4.3.5): `L = L_MSE + λ·L_JS` with adversarial
//! training of a single LSTM discriminator.
//!
//! Each step runs two graphs:
//!
//! 1. **Generator step** — forward the generator, forward the
//!    discriminator on `(x', h_avg)`, and minimize
//!    `MSE(x', x) + λ·BCE(D(x'), 1)` (the non-saturating GAN form). The
//!    discriminator's gradients from this graph are discarded.
//! 2. **Discriminator step** — with the generated values as constants,
//!    minimize `BCE(D(x), 1) + BCE(D(x'), 0)`.
//!
//! The trainer also tracks the per-step statistics of ResGen's `(μ, σ)`
//! outputs — the raw material of the paper's model-uncertainty measure.

use crate::cfg::GenDtCfg;
use crate::discriminator::Discriminator;
use crate::generator::{ArMode, CarryState, ForwardOut, Generator};
use gendt_data::windows::Window;
use gendt_nn::{Adam, Graph, Matrix, NodeId, ParamStore, PlanCache, PlanKey, Rng};
use serde::{Deserialize, Serialize};

/// Loss trace of one training step.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StepTrace {
    /// Supervised MSE term.
    pub mse: f32,
    /// Adversarial generator term (before λ).
    pub gan_g: f32,
    /// Discriminator loss.
    pub gan_d: f32,
    /// Mean of ResGen σ over the batch (data-uncertainty proxy).
    pub sigma_mean: f32,
}

/// A trained (or in-training) GenDT model.
pub struct GenDt {
    /// Generator (owns its parameters).
    pub generator: Generator,
    /// Discriminator (owns its parameters).
    pub discriminator: Discriminator,
    /// Loss history, one entry per training step.
    pub trace: Vec<StepTrace>,
    // pub(crate) so `checkpoint` can snapshot/restore the full training
    // state (optimizer moments + RNG) for bitwise-identical resume.
    pub(crate) opt_g: Adam,
    pub(crate) opt_d: Adam,
    pub(crate) rng: Rng,
    /// Compiled execution plans keyed by graph shape, populated lazily by
    /// the train/generate hot paths when [`GenDt::plan_mode`] is on.
    pub(crate) plans: PlanCache,
    plan_mode: bool,
    /// Per-shard gradient stores, cloned once and reused every step
    /// (re-cloning the full parameter store per shard per step serialized
    /// sharded training on the allocator).
    shard_grads: Vec<ParamStore>,
}

impl GenDt {
    /// Initialize an untrained model from a configuration.
    pub fn new(cfg: GenDtCfg) -> Self {
        let mut rng = Rng::seed_from(cfg.seed);
        let generator = Generator::new(cfg.clone(), &mut rng);
        let discriminator = Discriminator::new(&cfg, &mut rng);
        let opt_g = Adam::new(cfg.lr_g);
        let opt_d = Adam::new(cfg.lr_d);
        let plan_mode = std::env::var("GENDT_PLAN")
            .map(|v| v == "1")
            .unwrap_or(false);
        GenDt {
            generator,
            discriminator,
            trace: Vec::new(),
            opt_g,
            opt_d,
            rng,
            plans: PlanCache::new(),
            plan_mode,
            shard_grads: Vec::new(),
        }
    }

    /// Model configuration.
    pub fn cfg(&self) -> &GenDtCfg {
        &self.generator.cfg
    }

    /// Whether compiled-plan execution is active. Defaults to the
    /// `GENDT_PLAN=1` environment switch; forced off while
    /// `GENDT_SANITIZE` is on (the sanitizer needs the interpreted tape's
    /// per-op inspection).
    pub fn plan_mode(&self) -> bool {
        self.plan_mode && !gendt_nn::sanitize_enabled()
    }

    /// Enable or disable compiled-plan execution. Cached plans are kept;
    /// they re-synchronize against the parameter stores on next use.
    pub fn set_plan_mode(&mut self, on: bool) {
        self.plan_mode = on;
    }

    /// Run `cfg.steps` training steps over a pool of training windows.
    /// Windows are sampled uniformly per step.
    pub fn train(&mut self, pool: &[Window]) {
        let steps = self.cfg().steps;
        for _ in 0..steps {
            self.train_step(pool);
        }
    }

    /// One training step (one generator update + one discriminator
    /// update) on a random mini-batch from `pool`.
    ///
    /// The generator's forward/backward is data-parallel: the batch is
    /// split into `cfg.train_shards` fixed contiguous row ranges, each
    /// shard runs on its own graph (on a worker thread when more than
    /// one is configured) with an RNG stream derived from a per-step
    /// seed and its shard index, and the shard gradients are reduced
    /// into the parameter store in shard order. Partitioning, RNG
    /// streams, and reduction order all depend only on the
    /// configuration — never on the thread count — so a step is
    /// bitwise reproducible for any `GENDT_THREADS`.
    ///
    /// # Panics
    /// Panics if `pool` is empty.
    pub fn train_step(&mut self, pool: &[Window]) -> StepTrace {
        gendt_trace::span!("train_step");
        assert!(!pool.is_empty(), "empty training pool");
        let bsz = self.cfg().batch_size.min(pool.len());
        let batch: Vec<&Window> = (0..bsz)
            .map(|_| &pool[self.rng.gen_range(pool.len())])
            .collect();
        let l = batch[0].env.len();
        let n_ch = self.cfg().n_ch;
        let m = self.cfg().window.ar_context;
        let lambda = self.cfg().lambda_gan;
        let use_gan = self.cfg().ablation.gan_loss;

        // Real targets per step as B x n_ch matrices.
        let real_steps: Vec<Matrix> = (0..l)
            .map(|t| {
                let mut mtx = Matrix::zeros(bsz, n_ch);
                for (bi, w) in batch.iter().enumerate() {
                    for ch in 0..n_ch {
                        mtx.data[bi * n_ch + ch] = w.targets[ch][t];
                    }
                }
                mtx
            })
            .collect();

        // Fixed contiguous shard ranges: shape-derived, thread-agnostic.
        let n_shards = self.cfg().train_shards.clamp(1, bsz);
        let (base, rem) = (bsz / n_shards, bsz % n_shards);
        let mut ranges: Vec<std::ops::Range<usize>> = Vec::with_capacity(n_shards);
        let mut start = 0usize;
        for s in 0..n_shards {
            let len = base + usize::from(s < rem);
            ranges.push(start..start + len);
            start += len;
        }
        // One sequential draw per step seeds every shard's private stream.
        let step_seed = self.rng.next_u64();

        // ---------------- Generator step -----------------------------
        self.generator.store.zero_grad();
        self.discriminator.store.zero_grad();
        // Scheduled sampling: alternate teacher forcing with free-running
        // steps so the autoregressive ResGen is trained in the regime it
        // generates in (otherwise the free-run distribution drifts).
        let ar_mode = if self.trace.len().is_multiple_of(2) {
            ArMode::TeacherForced
        } else {
            ArMode::FreeRunning
        };

        struct ShardOut {
            mse: f32,
            gan_g: f32,
            sigma_mean: f32,
            fake_steps: Vec<Matrix>,
            ctx_steps: Vec<Matrix>,
        }

        // Reuse the per-shard gradient stores across steps (cloning the
        // full parameter store per shard per step was the dominant
        // allocation of sharded training); zeroed inside each shard.
        while self.shard_grads.len() < n_shards {
            self.shard_grads.push(self.generator.store.clone());
        }
        let mut shard_grads = std::mem::take(&mut self.shard_grads);

        let plan_on = self.plan_mode();
        let plans = &self.plans;
        let generator = &self.generator;
        let discriminator = &self.discriminator;
        let run_shard = |s: usize, grads: &mut ParamStore| -> ShardOut {
            let range = ranges[s].clone();
            let shard: &[&Window] = &batch[range.clone()];
            let bs_s = shard.len();
            // Shard weight: shard losses are row means, so scaling by
            // bs_s/B makes the shard sum equal the full-batch mean loss
            // (and its gradient).
            let w_s = bs_s as f32 / bsz as f32;
            let mut rng =
                Rng::seed_from(step_seed ^ (s as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            // Carry state: windows are sampled independently, so carry
            // uses the windows' own AR seeds with zero LSTM state.
            let mut carry = CarryState::zeros(&generator.cfg, bs_s);
            for (bi, w) in shard.iter().enumerate() {
                for ch in 0..n_ch {
                    for k in 0..m {
                        carry.ar_tail.data[bi * n_ch * m + ch * m + k] = w.ar_seed[ch][k];
                    }
                }
            }
            // Replay the compiled plan for this shard shape when one is
            // cached; otherwise record the tape and compile it below.
            let plan_key = plan_on.then(|| {
                PlanKey::new(
                    "train_g",
                    [
                        bs_s as u64,
                        l as u64,
                        crate::generator::batch_max_cells(shard) as u64,
                        u64::from(matches!(ar_mode, ArMode::FreeRunning)),
                        u64::from(use_gan),
                        0,
                    ],
                )
            });
            let mut g = match plan_key.as_ref().and_then(|k| plans.take(k)) {
                Some(plan) => Graph::replay(plan),
                None => Graph::new(),
            };
            let fwd: ForwardOut = generator.forward(&mut g, shard, &carry, ar_mode, true, &mut rng);
            // MSE across steps, on this shard's target rows.
            let mut mse_terms: Vec<(NodeId, f32)> = Vec::with_capacity(l);
            for (t, &out) in fwd.outputs.iter().enumerate() {
                let rows = &real_steps[t].data[range.start * n_ch..range.end * n_ch];
                let target = g.input(Matrix::from_vec(bs_s, n_ch, rows.to_vec()));
                let mse_t = g.mse_loss(out, target);
                mse_terms.push((mse_t, 1.0 / l as f32));
            }
            let mse_node = g.weighted_sum(mse_terms);
            let sigma_mean = if fwd.res_sigma.is_empty() {
                0.0
            } else {
                fwd.res_sigma
                    .iter()
                    .map(|&sg| g.value(sg).mean())
                    .sum::<f32>()
                    / fwd.res_sigma.len() as f32
            };
            let (loss_node, gan_g_val) = if use_gan {
                let logit = discriminator.forward(&mut g, &fwd.outputs, &fwd.h_avg, true);
                let rows = g.value(logit).rows;
                let gan_g = g.bce_with_logits(logit, Matrix::full(rows, 1, 1.0));
                let v = g.value(gan_g).data[0];
                (
                    g.weighted_sum(vec![(mse_node, w_s), (gan_g, lambda * w_s)]),
                    v,
                )
            } else {
                (g.weighted_sum(vec![(mse_node, w_s)]), 0.0)
            };
            let mse_val = g.value(mse_node).data[0];
            // Backward into this shard's private store; the trainer
            // reduces the stores in shard order afterwards.
            grads.zero_grad();
            g.backward(loss_node, grads);
            let fake_steps = fwd.outputs.iter().map(|&o| g.value(o).clone()).collect();
            let ctx_steps = fwd.h_avg.iter().map(|&hn| g.value(hn).clone()).collect();
            if let Some(key) = plan_key {
                plans.put(key, g.into_plan(Some(loss_node)));
            }
            ShardOut {
                mse: w_s * mse_val,
                gan_g: w_s * gan_g_val,
                sigma_mean: w_s * sigma_mean,
                fake_steps,
                ctx_steps,
            }
        };

        let mut shard_outs: Vec<Option<ShardOut>> = (0..n_shards).map(|_| None).collect();
        if n_shards == 1 || gendt_nn::num_threads() <= 1 {
            for (s, (slot, grads)) in shard_outs
                .iter_mut()
                .zip(shard_grads.iter_mut())
                .enumerate()
            {
                *slot = Some(run_shard(s, grads));
            }
        } else {
            let run_shard = &run_shard;
            rayon::scope(|sc| {
                for (s, (slot, grads)) in shard_outs
                    .iter_mut()
                    .zip(shard_grads.iter_mut())
                    .enumerate()
                {
                    sc.spawn(move |_| *slot = Some(run_shard(s, grads)));
                }
            });
        }
        let shard_outs: Vec<ShardOut> = shard_outs.into_iter().flatten().collect();
        assert_eq!(shard_outs.len(), n_shards, "a generator shard did not run");

        // Shard-order reduction: deterministic regardless of which worker
        // finished first.
        let mut mse_val = 0.0;
        let mut gan_g_val = 0.0;
        let mut sigma_mean = 0.0;
        for (out, grads) in shard_outs.iter().zip(shard_grads.iter()) {
            self.generator.store.accumulate_grads_from(grads);
            mse_val += out.mse;
            gan_g_val += out.gan_g;
            sigma_mean += out.sigma_mean;
        }
        self.shard_grads = shard_grads;
        // Under GENDT_SANITIZE the per-op checks inside each shard graph
        // already caught non-finite values at their birthplace; this
        // final check covers the cross-shard reduction itself and names
        // the offending parameter, before scrubbing can hide it.
        if gendt_nn::sanitize_enabled() {
            for p in self.generator.store.iter() {
                assert!(
                    !p.grad.has_non_finite(),
                    "GENDT_SANITIZE: non-finite reduced gradient for generator param {:?} \
                     (shape {}x{})",
                    p.name,
                    p.grad.rows,
                    p.grad.cols
                );
            }
        }
        self.generator.store.scrub_non_finite_grads();
        let grad_norm_g = self.generator.store.clip_grad_norm(self.cfg().grad_clip);
        // Telemetry-only parameter snapshot: the per-step update magnitude
        // is the L2 distance the optimizer moves the generator weights.
        let pre_step: Option<Vec<Vec<f32>>> = gendt_trace::trace_enabled().then(|| {
            self.generator
                .store
                .iter()
                .map(|p| p.value.data.clone())
                .collect()
        });
        self.opt_g.step(&mut self.generator.store);
        let update_norm_g = pre_step
            .map(|pre| {
                let mut acc = 0.0f64;
                for (p, old) in self.generator.store.iter().zip(pre.iter()) {
                    for (&w, &o) in p.value.data.iter().zip(old.iter()) {
                        let d = f64::from(w - o);
                        acc += d * d;
                    }
                }
                acc.sqrt()
            })
            .unwrap_or(0.0);

        // ---------------- Discriminator step -------------------------
        let (gan_d_val, grad_norm_d) = if use_gan {
            // Reassemble full-batch fakes/contexts from the contiguous
            // shard rows, in shard order.
            let stack = |pick: &dyn Fn(&ShardOut) -> &Vec<Matrix>| -> Vec<Matrix> {
                (0..l)
                    .map(|t| {
                        let cols = pick(&shard_outs[0])[t].cols;
                        let mut full = Matrix::zeros(bsz, cols);
                        for (out, range) in shard_outs.iter().zip(ranges.iter()) {
                            full.data[range.start * cols..range.end * cols]
                                .copy_from_slice(&pick(out)[t].data);
                        }
                        full
                    })
                    .collect()
            };
            let fake_steps = stack(&|o: &ShardOut| &o.fake_steps);
            let ctx_steps = stack(&|o: &ShardOut| &o.ctx_steps);
            let plan_key = self
                .plan_mode()
                .then(|| PlanKey::new("train_d", [bsz as u64, l as u64, 0, 0, 0, 0]));
            let mut gd = match plan_key.as_ref().and_then(|k| self.plans.take(k)) {
                Some(plan) => Graph::replay(plan),
                None => Graph::new(),
            };
            let real_nodes: Vec<NodeId> =
                real_steps.iter().map(|mtx| gd.input(mtx.clone())).collect();
            let fake_nodes: Vec<NodeId> =
                fake_steps.iter().map(|mtx| gd.input(mtx.clone())).collect();
            let ctx_nodes: Vec<NodeId> =
                ctx_steps.iter().map(|mtx| gd.input(mtx.clone())).collect();
            let logit_r = self
                .discriminator
                .forward(&mut gd, &real_nodes, &ctx_nodes, false);
            let logit_f = self
                .discriminator
                .forward(&mut gd, &fake_nodes, &ctx_nodes, false);
            let loss_r = gd.bce_with_logits(logit_r, Matrix::full(bsz, 1, 1.0));
            let loss_f = gd.bce_with_logits(logit_f, Matrix::full(bsz, 1, 0.0));
            let loss_d = gd.weighted_sum(vec![(loss_r, 0.5), (loss_f, 0.5)]);
            let v = gd.value(loss_d).data[0];
            gd.backward(loss_d, &mut self.discriminator.store);
            if let Some(key) = plan_key {
                self.plans.put(key, gd.into_plan(Some(loss_d)));
            }
            self.discriminator.store.scrub_non_finite_grads();
            let norm = self
                .discriminator
                .store
                .clip_grad_norm(self.cfg().grad_clip);
            self.opt_d.step(&mut self.discriminator.store);
            (v, norm)
        } else {
            (0.0, 0.0)
        };

        let trace = StepTrace {
            mse: mse_val,
            gan_g: gan_g_val,
            gan_d: gan_d_val,
            sigma_mean,
        };
        if gendt_trace::trace_enabled() {
            let u_model = self.mc_uncertainty_probe(batch[0], step_seed);
            gendt_trace::Record::new("train_step")
                .int("step", self.trace.len() as i64)
                .num("l_mse", f64::from(mse_val))
                .num("l_js", f64::from(gan_g_val))
                .num("lambda_l_js", f64::from(lambda * gan_g_val))
                .num("l_d", f64::from(gan_d_val))
                .num("sigma_mean", f64::from(sigma_mean))
                .num("grad_norm_g", f64::from(grad_norm_g))
                .num("grad_norm_d", f64::from(grad_norm_d))
                .num("update_norm_g", update_norm_g)
                .num("u_model", u_model)
                .emit();
        }
        self.trace.push(trace);
        trace
    }

    /// `U(G_θ)` estimated from two MC-dropout passes over one batch
    /// window (paper §6.2.1, restricted to a single window so the cost
    /// stays a small constant per traced step). The passes use their own
    /// RNG streams derived from `step_seed` — never the trainer RNG — so
    /// enabling telemetry cannot perturb the training trajectory.
    fn mc_uncertainty_probe(&self, w: &Window, step_seed: u64) -> f64 {
        let n_ch = self.cfg().n_ch;
        let m = self.cfg().window.ar_context;
        let run = |s: u64| -> (Vec<f32>, Vec<f32>) {
            let mut rng = Rng::seed_from(step_seed ^ ((s + 1) << 32));
            let mut carry = CarryState::zeros(self.cfg(), 1);
            for ch in 0..n_ch {
                for k in 0..m {
                    carry.ar_tail.data[ch * m + k] = w.ar_seed[ch][k];
                }
            }
            let mut g = Graph::new();
            let fwd =
                self.generator
                    .forward(&mut g, &[w], &carry, ArMode::FreeRunning, true, &mut rng);
            let mut mu = Vec::new();
            let mut sg = Vec::new();
            for (&mn, &sn) in fwd.res_mu.iter().zip(fwd.res_sigma.iter()) {
                mu.extend_from_slice(&g.value(mn).data);
                sg.extend_from_slice(&g.value(sn).data);
            }
            (mu, sg)
        };
        let (mu_a, sg_a) = run(0);
        let (mu_b, sg_b) = run(1);
        let t_len = mu_a.len().min(mu_b.len());
        if t_len == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for t in 0..t_len {
            acc += gendt_metrics::std_dev(&[f64::from(mu_a[t]), f64::from(mu_b[t])])
                + gendt_metrics::std_dev(&[f64::from(sg_a[t]), f64::from(sg_b[t])]);
        }
        acc / t_len as f64
    }

    /// Borrow the internal RNG (generation utilities need it).
    pub fn rng_mut(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::context::{extract, ContextCfg};
    use gendt_data::kpi_types::Kpi;
    use gendt_data::windows::windows as make_windows;

    fn tiny_cfg() -> GenDtCfg {
        let mut c = GenDtCfg::fast(4, 7);
        c.hidden = 8;
        c.resgen_hidden = 8;
        c.disc_hidden = 6;
        c.window.len = 10;
        c.window.stride = 5;
        c.window.max_cells = 3;
        c.batch_size = 4;
        c.steps = 5;
        c
    }

    fn training_pool(cfg: &GenDtCfg) -> Vec<Window> {
        let ds = dataset_a(&BuildCfg::quick(43));
        let mut pool = Vec::new();
        for run in ds.runs.iter().take(3) {
            let ctx = extract(
                &ds.world,
                &ds.deployment,
                &run.traj,
                &ContextCfg {
                    max_cells: cfg.window.max_cells,
                    ..ContextCfg::default()
                },
            );
            pool.extend(make_windows(run, &ctx, &Kpi::DATASET_A, &cfg.window));
        }
        pool
    }

    #[test]
    fn training_runs_and_traces() {
        let cfg = tiny_cfg();
        let pool = training_pool(&cfg);
        let mut model = GenDt::new(cfg);
        model.train(&pool);
        assert_eq!(model.trace.len(), 5);
        for t in &model.trace {
            assert!(t.mse.is_finite());
            assert!(t.gan_d.is_finite());
            assert!(t.sigma_mean > 0.0, "ResGen sigma should be positive");
        }
    }

    #[test]
    fn mse_decreases_over_training() {
        let mut cfg = tiny_cfg();
        cfg.steps = 60;
        let pool = training_pool(&cfg);
        let mut model = GenDt::new(cfg);
        model.train(&pool);
        let early: f32 = model.trace[..10].iter().map(|t| t.mse).sum::<f32>() / 10.0;
        let late: f32 = model.trace[model.trace.len() - 10..]
            .iter()
            .map(|t| t.mse)
            .sum::<f32>()
            / 10.0;
        assert!(
            late < early,
            "MSE did not improve: early {early}, late {late}"
        );
    }

    #[test]
    fn gan_ablation_skips_discriminator() {
        let mut cfg = tiny_cfg();
        cfg.ablation.gan_loss = false;
        let pool = training_pool(&cfg);
        let mut model = GenDt::new(cfg);
        let t = model.train_step(&pool);
        assert_eq!(t.gan_g, 0.0);
        assert_eq!(t.gan_d, 0.0);
    }

    #[test]
    fn sharded_training_is_thread_count_invariant() {
        let cfg = tiny_cfg(); // train_shards = 2, batch_size = 4
        assert!(cfg.train_shards > 1, "test must exercise the sharded path");
        let pool = training_pool(&cfg);
        let mut runs: Vec<Vec<Vec<f32>>> = Vec::new();
        for threads in [1, 4] {
            gendt_nn::set_num_threads(threads);
            let mut model = GenDt::new(cfg.clone());
            model.train(&pool);
            runs.push(
                model
                    .generator
                    .store
                    .iter()
                    .map(|p| p.value.data.clone())
                    .collect(),
            );
        }
        gendt_nn::set_num_threads(1);
        assert_eq!(
            runs[0], runs[1],
            "trained weights depend on the thread count"
        );
    }

    #[test]
    fn plan_mode_training_is_bitwise_equal_to_interpreted() {
        let mut cfg = tiny_cfg();
        cfg.steps = 8; // several steps so compiled plans replay from cache
        let pool = training_pool(&cfg);
        type RunSnapshot = (Vec<Vec<f32>>, Vec<Vec<f32>>, Vec<f32>);
        let mut runs: Vec<RunSnapshot> = Vec::new();
        for plan in [false, true] {
            let mut model = GenDt::new(cfg.clone());
            model.set_plan_mode(plan);
            model.train(&pool);
            runs.push((
                model
                    .generator
                    .store
                    .iter()
                    .map(|p| p.value.data.clone())
                    .collect(),
                model
                    .discriminator
                    .store
                    .iter()
                    .map(|p| p.value.data.clone())
                    .collect(),
                model.trace.iter().map(|t| t.mse).collect(),
            ));
        }
        assert_eq!(
            runs[0].0, runs[1].0,
            "generator weights diverge under plans"
        );
        assert_eq!(
            runs[0].1, runs[1].1,
            "discriminator weights diverge under plans"
        );
        assert_eq!(runs[0].2, runs[1].2, "training trace diverges under plans");
    }

    #[test]
    fn weights_stay_finite() {
        let cfg = tiny_cfg();
        let pool = training_pool(&cfg);
        let mut model = GenDt::new(cfg);
        model.train(&pool);
        for p in model.generator.store.iter() {
            assert!(
                !p.value.has_non_finite(),
                "param {} went non-finite",
                p.name
            );
        }
        for p in model.discriminator.store.iter() {
            assert!(
                !p.value.has_non_finite(),
                "param {} went non-finite",
                p.name
            );
        }
    }
}
