//! GenDT training (paper §4.3.5): `L = L_MSE + λ·L_JS` with adversarial
//! training of a single LSTM discriminator.
//!
//! Each step runs two graphs:
//!
//! 1. **Generator step** — forward the generator, forward the
//!    discriminator on `(x', h_avg)`, and minimize
//!    `MSE(x', x) + λ·BCE(D(x'), 1)` (the non-saturating GAN form). The
//!    discriminator's gradients from this graph are discarded.
//! 2. **Discriminator step** — with the generated values as constants,
//!    minimize `BCE(D(x), 1) + BCE(D(x'), 0)`.
//!
//! The trainer also tracks the per-step statistics of ResGen's `(μ, σ)`
//! outputs — the raw material of the paper's model-uncertainty measure.

use crate::cfg::GenDtCfg;
use crate::discriminator::Discriminator;
use crate::generator::{ArMode, CarryState, ForwardOut, Generator};
use gendt_data::windows::Window;
use gendt_nn::{Adam, Graph, Matrix, NodeId, Rng};
use serde::{Deserialize, Serialize};

/// Loss trace of one training step.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StepTrace {
    /// Supervised MSE term.
    pub mse: f32,
    /// Adversarial generator term (before λ).
    pub gan_g: f32,
    /// Discriminator loss.
    pub gan_d: f32,
    /// Mean of ResGen σ over the batch (data-uncertainty proxy).
    pub sigma_mean: f32,
}

/// A trained (or in-training) GenDT model.
pub struct GenDt {
    /// Generator (owns its parameters).
    pub generator: Generator,
    /// Discriminator (owns its parameters).
    pub discriminator: Discriminator,
    /// Loss history, one entry per training step.
    pub trace: Vec<StepTrace>,
    opt_g: Adam,
    opt_d: Adam,
    rng: Rng,
}

impl GenDt {
    /// Initialize an untrained model from a configuration.
    pub fn new(cfg: GenDtCfg) -> Self {
        let mut rng = Rng::seed_from(cfg.seed);
        let generator = Generator::new(cfg.clone(), &mut rng);
        let discriminator = Discriminator::new(&cfg, &mut rng);
        let opt_g = Adam::new(cfg.lr_g);
        let opt_d = Adam::new(cfg.lr_d);
        GenDt { generator, discriminator, trace: Vec::new(), opt_g, opt_d, rng }
    }

    /// Model configuration.
    pub fn cfg(&self) -> &GenDtCfg {
        &self.generator.cfg
    }

    /// Run `cfg.steps` training steps over a pool of training windows.
    /// Windows are sampled uniformly per step.
    pub fn train(&mut self, pool: &[Window]) {
        let steps = self.cfg().steps;
        for _ in 0..steps {
            self.train_step(pool);
        }
    }

    /// One training step (one generator update + one discriminator
    /// update) on a random mini-batch from `pool`.
    ///
    /// # Panics
    /// Panics if `pool` is empty.
    pub fn train_step(&mut self, pool: &[Window]) -> StepTrace {
        assert!(!pool.is_empty(), "empty training pool");
        let bsz = self.cfg().batch_size.min(pool.len());
        let batch: Vec<&Window> = (0..bsz).map(|_| &pool[self.rng.gen_range(pool.len())]).collect();
        let l = batch[0].env.len();
        let n_ch = self.cfg().n_ch;
        let lambda = self.cfg().lambda_gan;
        let use_gan = self.cfg().ablation.gan_loss;

        // Real targets per step as B x n_ch matrices.
        let real_steps: Vec<Matrix> = (0..l)
            .map(|t| {
                let mut m = Matrix::zeros(bsz, n_ch);
                for (bi, w) in batch.iter().enumerate() {
                    for ch in 0..n_ch {
                        m.data[bi * n_ch + ch] = w.targets[ch][t];
                    }
                }
                m
            })
            .collect();

        // Carry state: windows are sampled independently, so carry uses
        // the windows' own AR seeds with zero LSTM state.
        let mut carry = CarryState::zeros(self.cfg(), bsz);
        let m = self.cfg().window.ar_context;
        for (bi, w) in batch.iter().enumerate() {
            for ch in 0..n_ch {
                for k in 0..m {
                    carry.ar_tail.data[bi * n_ch * m + ch * m + k] = w.ar_seed[ch][k];
                }
            }
        }

        // ---------------- Generator step -----------------------------
        self.generator.store.zero_grad();
        self.discriminator.store.zero_grad();
        // Scheduled sampling: alternate teacher forcing with free-running
        // steps so the autoregressive ResGen is trained in the regime it
        // generates in (otherwise the free-run distribution drifts).
        let ar_mode = if self.trace.len() % 2 == 0 {
            ArMode::TeacherForced
        } else {
            ArMode::FreeRunning
        };
        let mut g = Graph::new();
        let fwd: ForwardOut =
            self.generator.forward(&mut g, &batch, &carry, ar_mode, true, &mut self.rng);
        // MSE across steps.
        let mut mse_terms: Vec<(NodeId, f32)> = Vec::with_capacity(l);
        for (t, &out) in fwd.outputs.iter().enumerate() {
            let target = g.input(real_steps[t].clone());
            let mse_t = g.mse_loss(out, target);
            mse_terms.push((mse_t, 1.0 / l as f32));
        }
        let mse_node = g.weighted_sum(mse_terms);
        let sigma_mean = if fwd.res_sigma.is_empty() {
            0.0
        } else {
            fwd.res_sigma.iter().map(|&s| g.value(s).mean()).sum::<f32>()
                / fwd.res_sigma.len() as f32
        };

        let (loss_node, gan_g_val) = if use_gan {
            let logit = self.discriminator.forward(&mut g, &fwd.outputs, &fwd.h_avg, true);
            let rows = g.value(logit).rows;
            let gan_g = g.bce_with_logits(logit, Matrix::full(rows, 1, 1.0));
            let v = g.value(gan_g).data[0];
            (g.weighted_sum(vec![(mse_node, 1.0), (gan_g, lambda)]), v)
        } else {
            (mse_node, 0.0)
        };
        let mse_val = g.value(mse_node).data[0];
        g.backward(loss_node, &mut self.generator.store);
        self.generator.store.scrub_non_finite_grads();
        self.generator.store.clip_grad_norm(self.cfg().grad_clip);
        self.opt_g.step(&mut self.generator.store);

        // ---------------- Discriminator step -------------------------
        let gan_d_val = if use_gan {
            let fake_steps: Vec<Matrix> =
                fwd.outputs.iter().map(|&o| g.value(o).clone()).collect();
            let ctx_steps: Vec<Matrix> = fwd.h_avg.iter().map(|&h| g.value(h).clone()).collect();
            drop(g);
            let mut gd = Graph::new();
            let real_nodes: Vec<NodeId> =
                real_steps.iter().map(|mtx| gd.input(mtx.clone())).collect();
            let fake_nodes: Vec<NodeId> =
                fake_steps.iter().map(|mtx| gd.input(mtx.clone())).collect();
            let ctx_nodes: Vec<NodeId> =
                ctx_steps.iter().map(|mtx| gd.input(mtx.clone())).collect();
            let logit_r = self.discriminator.forward(&mut gd, &real_nodes, &ctx_nodes, false);
            let logit_f = self.discriminator.forward(&mut gd, &fake_nodes, &ctx_nodes, false);
            let loss_r = gd.bce_with_logits(logit_r, Matrix::full(bsz, 1, 1.0));
            let loss_f = gd.bce_with_logits(logit_f, Matrix::full(bsz, 1, 0.0));
            let loss_d = gd.weighted_sum(vec![(loss_r, 0.5), (loss_f, 0.5)]);
            let v = gd.value(loss_d).data[0];
            gd.backward(loss_d, &mut self.discriminator.store);
            self.discriminator.store.scrub_non_finite_grads();
            self.discriminator.store.clip_grad_norm(self.cfg().grad_clip);
            self.opt_d.step(&mut self.discriminator.store);
            v
        } else {
            0.0
        };

        let trace = StepTrace { mse: mse_val, gan_g: gan_g_val, gan_d: gan_d_val, sigma_mean };
        self.trace.push(trace);
        trace
    }

    /// Borrow the internal RNG (generation utilities need it).
    pub fn rng_mut(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::context::{extract, ContextCfg};
    use gendt_data::kpi_types::Kpi;
    use gendt_data::windows::windows as make_windows;

    fn tiny_cfg() -> GenDtCfg {
        let mut c = GenDtCfg::fast(4, 7);
        c.hidden = 8;
        c.resgen_hidden = 8;
        c.disc_hidden = 6;
        c.window.len = 10;
        c.window.stride = 5;
        c.window.max_cells = 3;
        c.batch_size = 4;
        c.steps = 5;
        c
    }

    fn training_pool(cfg: &GenDtCfg) -> Vec<Window> {
        let ds = dataset_a(&BuildCfg::quick(43));
        let mut pool = Vec::new();
        for run in ds.runs.iter().take(3) {
            let ctx = extract(
                &ds.world,
                &ds.deployment,
                &run.traj,
                &ContextCfg { max_cells: cfg.window.max_cells, ..ContextCfg::default() },
            );
            pool.extend(make_windows(run, &ctx, &Kpi::DATASET_A, &cfg.window));
        }
        pool
    }

    #[test]
    fn training_runs_and_traces() {
        let cfg = tiny_cfg();
        let pool = training_pool(&cfg);
        let mut model = GenDt::new(cfg);
        model.train(&pool);
        assert_eq!(model.trace.len(), 5);
        for t in &model.trace {
            assert!(t.mse.is_finite());
            assert!(t.gan_d.is_finite());
            assert!(t.sigma_mean > 0.0, "ResGen sigma should be positive");
        }
    }

    #[test]
    fn mse_decreases_over_training() {
        let mut cfg = tiny_cfg();
        cfg.steps = 60;
        let pool = training_pool(&cfg);
        let mut model = GenDt::new(cfg);
        model.train(&pool);
        let early: f32 =
            model.trace[..10].iter().map(|t| t.mse).sum::<f32>() / 10.0;
        let late: f32 = model.trace[model.trace.len() - 10..]
            .iter()
            .map(|t| t.mse)
            .sum::<f32>()
            / 10.0;
        assert!(late < early, "MSE did not improve: early {early}, late {late}");
    }

    #[test]
    fn gan_ablation_skips_discriminator() {
        let mut cfg = tiny_cfg();
        cfg.ablation.gan_loss = false;
        let pool = training_pool(&cfg);
        let mut model = GenDt::new(cfg);
        let t = model.train_step(&pool);
        assert_eq!(t.gan_g, 0.0);
        assert_eq!(t.gan_d, 0.0);
    }

    #[test]
    fn weights_stay_finite() {
        let cfg = tiny_cfg();
        let pool = training_pool(&cfg);
        let mut model = GenDt::new(cfg);
        model.train(&pool);
        for p in model.generator.store.iter() {
            assert!(!p.value.has_non_finite(), "param {} went non-finite", p.name);
        }
        for p in model.discriminator.store.iter() {
            assert!(!p.value.has_non_finite(), "param {} went non-finite", p.name);
        }
    }
}
