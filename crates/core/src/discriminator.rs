//! The GenDT discriminator (paper §4.3.5): a single-layer LSTM density-
//! ratio estimator over `(x_t, h_avg_t)` pairs, with a linear head on the
//! final hidden state producing one real/fake logit per window.

use crate::cfg::GenDtCfg;
use gendt_nn::{Graph, Linear, Lstm, LstmNodeState, Matrix, NodeId, ParamStore, Rng};

/// The discriminator's trainable components.
pub struct Discriminator {
    /// Parameter store holding the discriminator weights.
    pub store: ParamStore,
    lstm: Lstm,
    head: Linear,
    hidden: usize,
}

impl Discriminator {
    /// Initialize for a given model configuration.
    pub fn new(cfg: &GenDtCfg, rng: &mut Rng) -> Self {
        let mut store = ParamStore::new();
        let in_dim = cfg.n_ch + cfg.hidden;
        let lstm = Lstm::new(&mut store, "disc", in_dim, cfg.disc_hidden, rng);
        let head = Linear::new(&mut store, "disc_head", cfg.disc_hidden, 1, rng);
        Discriminator {
            store,
            lstm,
            head,
            hidden: cfg.disc_hidden,
        }
    }

    /// Forward a window of per-step inputs.
    ///
    /// * `xs` — `[L]` nodes of `B x n_ch` (real or generated KPI values).
    /// * `ctx` — `[L]` nodes of `B x H` (the graph-level context `h_avg`).
    /// * `frozen` — when true, the discriminator weights enter the graph
    ///   as constants: gradients flow through to `xs`/`ctx` (the
    ///   generator-update graph) but never into the discriminator store.
    ///
    /// Returns the `B x 1` logit.
    pub fn forward(&self, g: &mut Graph, xs: &[NodeId], ctx: &[NodeId], frozen: bool) -> NodeId {
        assert_eq!(xs.len(), ctx.len(), "x/context length mismatch");
        assert!(!xs.is_empty(), "empty discriminator input");
        let b = g.value(xs[0]).rows;
        let mut st = LstmNodeState {
            h: g.input(Matrix::zeros(b, self.hidden)),
            c: g.input(Matrix::zeros(b, self.hidden)),
        };
        for (&x, &c) in xs.iter().zip(ctx.iter()) {
            let inp = g.concat_cols(x, c);
            st = self.lstm.step_mode(g, &self.store, inp, st, frozen);
        }
        self.head.forward_mode(g, &self.store, st.h, frozen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::GenDtCfg;

    fn tiny() -> GenDtCfg {
        let mut c = GenDtCfg::fast(2, 1);
        c.hidden = 6;
        c.disc_hidden = 4;
        c
    }

    #[test]
    fn logit_shape() {
        let cfg = tiny();
        let mut rng = Rng::seed_from(1);
        let d = Discriminator::new(&cfg, &mut rng);
        let mut g = Graph::new();
        let xs: Vec<NodeId> = (0..5).map(|_| g.input(Matrix::full(3, 2, 0.1))).collect();
        let cs: Vec<NodeId> = (0..5).map(|_| g.input(Matrix::full(3, 6, 0.2))).collect();
        let logit = d.forward(&mut g, &xs, &cs, false);
        assert_eq!(g.value(logit).shape(), (3, 1));
        assert!(!g.value(logit).has_non_finite());
    }

    #[test]
    fn discriminator_learns_to_separate() {
        // Real = constant 0.8 series, fake = constant -0.8 series; after a
        // few steps D should assign them different logits.
        let cfg = tiny();
        let mut rng = Rng::seed_from(2);
        let d = Discriminator::new(&cfg, &mut rng);
        let mut store = d.store.clone();
        let mut opt = gendt_nn::Adam::new(0.02);
        let ctx_val = Matrix::zeros(4, 6);
        for _ in 0..100 {
            store.zero_grad();
            let mut g = Graph::new();
            let d2 = Discriminator {
                store: store.clone(),
                ..rebuild(&cfg)
            };
            let real: Vec<NodeId> = (0..6).map(|_| g.input(Matrix::full(4, 2, 0.8))).collect();
            let fake: Vec<NodeId> = (0..6).map(|_| g.input(Matrix::full(4, 2, -0.8))).collect();
            let cs: Vec<NodeId> = (0..6).map(|_| g.input(ctx_val.clone())).collect();
            let lr = d2.forward(&mut g, &real, &cs, false);
            let lf = d2.forward(&mut g, &fake, &cs, false);
            let loss_r = g.bce_with_logits(lr, Matrix::full(4, 1, 1.0));
            let loss_f = g.bce_with_logits(lf, Matrix::full(4, 1, 0.0));
            let loss = g.weighted_sum(vec![(loss_r, 0.5), (loss_f, 0.5)]);
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        // Evaluate.
        let d2 = Discriminator {
            store: store.clone(),
            ..rebuild(&cfg)
        };
        let mut g = Graph::new();
        let real: Vec<NodeId> = (0..6).map(|_| g.input(Matrix::full(4, 2, 0.8))).collect();
        let fake: Vec<NodeId> = (0..6).map(|_| g.input(Matrix::full(4, 2, -0.8))).collect();
        let cs: Vec<NodeId> = (0..6).map(|_| g.input(ctx_val.clone())).collect();
        let lr_node = d2.forward(&mut g, &real, &cs, false);
        let lf_node = d2.forward(&mut g, &fake, &cs, false);
        let lr = g.value(lr_node).data[0];
        let lf = g.value(lf_node).data[0];
        assert!(lr > lf + 1.0, "real logit {lr} should exceed fake {lf}");
    }

    /// Rebuild a discriminator skeleton with the same layer structure (the
    /// stores are swapped in by the caller). Parameter ids are positional,
    /// so a same-shape rebuild aligns with a cloned store.
    fn rebuild(cfg: &GenDtCfg) -> Discriminator {
        let mut rng = Rng::seed_from(2);
        Discriminator::new(cfg, &mut rng)
    }
}
