//! Generation: synthesize KPI time series for a (possibly unseen)
//! trajectory from its context, and the MC-dropout model-uncertainty
//! measure (paper §6.2.1).
//!
//! Long series are produced window-by-window with non-overlapping windows
//! (paper §4.3.3); the aggregation-LSTM state and the autoregressive tail
//! carry across windows so temporal correlation survives window borders.

use crate::cfg::GenDtCfg;
use crate::generator::{ArMode, CarryState};
use crate::trainer::GenDt;
use gendt_data::context::RunContext;
use gendt_data::kpi_types::Kpi;
use gendt_data::windows::{Window, WindowCfg};
use gendt_geo::landuse::ENV_ATTRS;
use gendt_nn::{Graph, PlanKey};
use serde::{Deserialize, Serialize};

/// Build generation windows from context alone (no KPI targets — this is
/// what "generating for a new trajectory without field measurements"
/// means). Targets and AR seeds are zero-filled placeholders.
pub fn generation_windows(ctx: &RunContext, n_ch: usize, cfg: &WindowCfg) -> Vec<Window> {
    let n = ctx.steps.len();
    let mut out = Vec::new();
    let mut start = 0usize;
    while start + cfg.len <= n {
        let end = start + cfg.len;
        // Rank cells by presence over the window, as in training.
        let mut presence: std::collections::BTreeMap<u32, usize> = Default::default();
        for step in &ctx.steps[start..end] {
            for &(id, _) in &step.cells {
                *presence.entry(id).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(u32, usize)> = presence.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(cfg.max_cells);
        let cell_ids: Vec<u32> = ranked.into_iter().map(|(id, _)| id).collect();
        let cells = cell_ids
            .iter()
            .map(|&id| {
                ctx.steps[start..end]
                    .iter()
                    .map(|s| {
                        s.cells
                            .iter()
                            .find(|&&(cid, _)| cid == id)
                            .map(|&(_, f)| f)
                            .unwrap_or([0.0, 0.0, 0.0, 0.0, 1.0])
                    })
                    .collect()
            })
            .collect();
        let env: Vec<Vec<f32>> = ctx.steps[start..end]
            .iter()
            .map(|s| s.env.clone())
            .collect();
        debug_assert!(env.iter().all(|e| e.len() == ENV_ATTRS));
        out.push(Window {
            targets: vec![vec![0.0; cfg.len]; n_ch],
            cells,
            cell_ids,
            env,
            ar_seed: vec![vec![0.0; cfg.ar_context]; n_ch],
            start,
        });
        start += cfg.stride;
    }
    out
}

/// One generated multi-KPI series in physical units.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneratedSeries {
    /// KPI channels, aligned with the `kpis` list used at generation.
    pub kpis: Vec<Kpi>,
    /// Physical-unit series per KPI, `[n_ch][T']` where
    /// `T' = ⌊T/L⌋·L` (the paper's batch generation length).
    pub series: Vec<Vec<f64>>,
}

impl GeneratedSeries {
    /// Series for one KPI channel.
    pub fn channel(&self, kpi: Kpi) -> Option<&[f64]> {
        self.kpis
            .iter()
            .position(|&k| k == kpi)
            .map(|i| self.series[i].as_slice())
    }

    /// Length of the generated series.
    pub fn len(&self) -> usize {
        self.series.first().map(|s| s.len()).unwrap_or(0)
    }

    /// True when nothing was generated (trajectory shorter than one window).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generate a multi-KPI series for a trajectory context.
///
/// * `mc_dropout` keeps ResGen's dropout active (used by the uncertainty
///   measure); normal generation passes `false`.
/// * `sample_seed` decorrelates repeated draws for the same trajectory.
pub fn generate_series(
    model: &mut GenDt,
    ctx: &RunContext,
    kpis: &[Kpi],
    mc_dropout: bool,
    sample_seed: u64,
) -> GeneratedSeries {
    gendt_trace::span!("generate_series");
    let cfg: GenDtCfg = model.cfg().clone();
    assert_eq!(
        kpis.len(),
        cfg.n_ch,
        "KPI list does not match model channels"
    );
    let wins = generation_windows(ctx, cfg.n_ch, &cfg.generation_window());
    let mut rng = gendt_nn::Rng::seed_from(sample_seed);
    let mut carry = CarryState::zeros(&cfg, 1);
    let mut norm: Vec<Vec<f32>> = vec![Vec::new(); cfg.n_ch];
    let plan_on = model.plan_mode();
    for w in &wins {
        let plan_key = plan_on.then(|| {
            PlanKey::new(
                "gen",
                [
                    1,
                    w.env.len() as u64,
                    crate::generator::batch_max_cells(&[w]) as u64,
                    u64::from(mc_dropout),
                    0,
                    0,
                ],
            )
        });
        let mut g = match plan_key.as_ref().and_then(|k| model.plans.take(k)) {
            Some(plan) => Graph::replay(plan),
            None => Graph::new(),
        };
        let fwd = model.generator.forward(
            &mut g,
            &[w],
            &carry,
            ArMode::FreeRunning,
            mc_dropout,
            &mut rng,
        );
        for &out in &fwd.outputs {
            let v = g.value(out);
            for (n, &val) in norm.iter_mut().zip(v.data.iter().take(cfg.n_ch)) {
                n.push(val);
            }
        }
        carry = fwd.carry;
        if let Some(key) = plan_key {
            model.plans.put(key, g.into_plan(None));
        }
    }
    let series: Vec<Vec<f64>> = norm
        .into_iter()
        .enumerate()
        .map(|(ch, s)| s.into_iter().map(|v| kpis[ch].denormalize(v)).collect())
        .collect();
    // Under GENDT_SANITIZE the tape already vetted every intermediate op;
    // this guards the last unvetted hop, denormalization to physical units.
    if gendt_nn::sanitize_enabled() {
        for (ch, s) in series.iter().enumerate() {
            if let Some(t) = s.iter().position(|v| !v.is_finite()) {
                panic!(
                    "GENDT_SANITIZE: generated series for KPI {:?} is non-finite at step {t}",
                    kpis[ch]
                );
            }
        }
    }
    GeneratedSeries {
        kpis: kpis.to_vec(),
        series,
    }
}

/// One request in a batched generation call: a trajectory context plus
/// the explicit sample seed that makes its output reproducible.
pub struct GenBatchItem<'a> {
    /// Trajectory context to generate for.
    pub ctx: &'a RunContext,
    /// Sample seed, same meaning as `generate_series`'s `sample_seed`.
    pub seed: u64,
}

/// Resumable generation position for one stream: the carried LSTM state
/// and autoregressive tail (batch row of one), the RNG stream position,
/// and the index of the next window to generate. Holding a cursor across
/// calls makes chunk N+1 continue bitwise-exactly where chunk N stopped —
/// the contract the streaming API (`/v1/stream`) is built on.
#[derive(Clone, Debug)]
pub struct GenCursor {
    /// Carried aggregation-LSTM state and AR tail (`b = 1`).
    pub carry: CarryState,
    /// xoshiro256++ state of the per-request sample stream.
    pub rng_state: [u64; 4],
    /// Index of the next generation window to produce.
    pub next_window: usize,
}

impl GenCursor {
    /// Cursor at the start of a stream: zero carry, RNG freshly seeded
    /// from `sample_seed`, positioned before window 0. Generating from a
    /// fresh cursor with no window cap reproduces the one-shot series.
    pub fn fresh(cfg: &GenDtCfg, sample_seed: u64) -> Self {
        GenCursor {
            carry: CarryState::zeros(cfg, 1),
            rng_state: gendt_nn::Rng::seed_from(sample_seed).state(),
            next_window: 0,
        }
    }
}

/// One stream in a chunked generation call: the trajectory context, the
/// resume cursor (updated in place), and how many windows to produce at
/// most in this chunk (`usize::MAX` for "run to the end").
pub struct GenChunkItem<'a> {
    /// Trajectory context to generate for.
    pub ctx: &'a RunContext,
    /// Resume position; advanced past the produced windows on return.
    pub cursor: GenCursor,
    /// Window budget for this chunk.
    pub max_windows: usize,
}

/// Generate the next chunk of each stream in one batched forward pass per
/// window step, advancing every cursor in place.
///
/// Streams at different absolute window positions batch together safely:
/// all batched compute ops are row-local (see
/// `Generator::forward_gen_batch`), so each row's output depends only on
/// its own window, carry, and RNG stream. A stream whose chunk budget or
/// trajectory is exhausted simply drops out of the batch. Concatenating
/// the chunks of one stream is **bitwise-identical** to the one-shot
/// [`generate_series_batch`] output for the same seed — one-shot
/// generation is itself a single unbounded chunk.
pub fn generate_series_chunk(
    model: &GenDt,
    kpis: &[Kpi],
    items: &mut [GenChunkItem],
) -> Vec<GeneratedSeries> {
    gendt_trace::span!("generate_series_chunk", "items" => items.len());
    let cfg: GenDtCfg = model.cfg().clone();
    assert_eq!(
        kpis.len(),
        cfg.n_ch,
        "KPI list does not match model channels"
    );
    let n = items.len();
    let wins: Vec<Vec<Window>> = items
        .iter()
        .map(|it| generation_windows(it.ctx, cfg.n_ch, &cfg.generation_window()))
        .collect();
    // Window range this chunk covers for stream i: [starts[i], ends[i]).
    let starts: Vec<usize> = items
        .iter()
        .zip(wins.iter())
        .map(|(it, w)| it.cursor.next_window.min(w.len()))
        .collect();
    let ends: Vec<usize> = items
        .iter()
        .zip(wins.iter())
        .zip(starts.iter())
        .map(|((it, w), &s)| s.saturating_add(it.max_windows).min(w.len()))
        .collect();
    let mut rngs: Vec<gendt_nn::Rng> = items
        .iter()
        .map(|it| gendt_nn::Rng::from_state(it.cursor.rng_state))
        .collect();
    let mut carries: Vec<CarryState> = items.iter().map(|it| it.cursor.carry.clone()).collect();
    let mut norm: Vec<Vec<Vec<f32>>> = vec![vec![Vec::new(); cfg.n_ch]; n];

    let hid = cfg.hidden;
    let tail_w = cfg.n_ch * cfg.window.ar_context;
    let max_len = (0..n).map(|i| ends[i] - starts[i]).max().unwrap_or(0);
    for k in 0..max_len {
        let active: Vec<usize> = (0..n).filter(|&i| starts[i] + k < ends[i]).collect();
        let wrefs: Vec<&Window> = active.iter().map(|&i| &wins[i][starts[i] + k]).collect();
        let bn = active.len();

        // Stack per-stream carry rows and RNG streams for the active set.
        let mut carry_b = CarryState::zeros(&cfg, bn);
        let mut rng_b: Vec<gendt_nn::Rng> = Vec::with_capacity(bn);
        for (r, &i) in active.iter().enumerate() {
            carry_b.agg_h.data[r * hid..(r + 1) * hid].copy_from_slice(&carries[i].agg_h.data);
            carry_b.agg_c.data[r * hid..(r + 1) * hid].copy_from_slice(&carries[i].agg_c.data);
            carry_b.ar_tail.data[r * tail_w..(r + 1) * tail_w]
                .copy_from_slice(&carries[i].ar_tail.data);
            rng_b.push(rngs[i].clone());
        }

        let plan_key = model.plan_mode().then(|| {
            PlanKey::new(
                "gen_batch",
                [
                    bn as u64,
                    cfg.generation_window().len as u64,
                    crate::generator::batch_max_cells(&wrefs) as u64,
                    0,
                    0,
                    0,
                ],
            )
        });
        let mut g = match plan_key.as_ref().and_then(|k| model.plans.take(k)) {
            Some(plan) => Graph::replay(plan),
            None => Graph::new(),
        };
        let fwd = model
            .generator
            .forward_gen_batch(&mut g, &wrefs, &carry_b, &mut rng_b);

        for &out in &fwd.outputs {
            let v = g.value(out);
            for (r, &i) in active.iter().enumerate() {
                for (ch, acc) in norm[i].iter_mut().enumerate() {
                    acc.push(v.data[r * cfg.n_ch + ch]);
                }
            }
        }
        // Split the carry rows and advanced RNG streams back out.
        for (r, &i) in active.iter().enumerate() {
            carries[i]
                .agg_h
                .data
                .copy_from_slice(&fwd.carry.agg_h.data[r * hid..(r + 1) * hid]);
            carries[i]
                .agg_c
                .data
                .copy_from_slice(&fwd.carry.agg_c.data[r * hid..(r + 1) * hid]);
            carries[i]
                .ar_tail
                .data
                .copy_from_slice(&fwd.carry.ar_tail.data[r * tail_w..(r + 1) * tail_w]);
            rngs[i] = rng_b[r].clone();
        }
        if let Some(key) = plan_key {
            model.plans.put(key, g.into_plan(None));
        }
    }

    // Advance every cursor past the windows this chunk produced.
    for (i, (it, carry)) in items.iter_mut().zip(carries).enumerate() {
        it.cursor.carry = carry;
        it.cursor.rng_state = rngs[i].state();
        it.cursor.next_window = ends[i];
    }

    norm.into_iter()
        .map(|per_ch| {
            let series: Vec<Vec<f64>> = per_ch
                .into_iter()
                .enumerate()
                .map(|(ch, s)| s.into_iter().map(|v| kpis[ch].denormalize(v)).collect())
                .collect();
            if gendt_nn::sanitize_enabled() {
                for (ch, s) in series.iter().enumerate() {
                    if let Some(t) = s.iter().position(|v| !v.is_finite()) {
                        panic!(
                            "GENDT_SANITIZE: chunked series for KPI {:?} is non-finite at step {t}",
                            kpis[ch]
                        );
                    }
                }
            }
            GeneratedSeries {
                kpis: kpis.to_vec(),
                series,
            }
        })
        .collect()
}

/// Generate series for several independent requests in one batched
/// forward pass per window index.
///
/// Each result is **bitwise-identical** to what
/// [`generate_series`]`(model, item.ctx, kpis, false, item.seed)` returns
/// for that item alone: every request keeps its own RNG stream (seeded
/// from its own seed, advanced in single-request order), and all batched
/// compute ops are row-local — see `Generator::forward_gen_batch`. This
/// is the micro-batching entry point the serving layer coalesces
/// concurrent `/generate` requests onto.
///
/// Requests whose trajectories yield different window counts simply drop
/// out of the batch once exhausted; the batch shrinks over window index.
pub fn generate_series_batch(
    model: &GenDt,
    kpis: &[Kpi],
    items: &[GenBatchItem],
) -> Vec<GeneratedSeries> {
    gendt_trace::span!("generate_series_batch", "items" => items.len());
    // One-shot generation is a single unbounded chunk from a fresh
    // cursor, so chunk-concatenation parity holds by construction.
    let cfg = model.cfg();
    let mut chunk_items: Vec<GenChunkItem> = items
        .iter()
        .map(|it| GenChunkItem {
            ctx: it.ctx,
            cursor: GenCursor::fresh(cfg, it.seed),
            max_windows: usize::MAX,
        })
        .collect();
    generate_series_chunk(model, kpis, &mut chunk_items)
}

/// ResGen distribution-parameter statistics from repeated MC-dropout
/// passes — the inputs of the model-uncertainty measure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UncertaintyReport {
    /// `U(G_θ) = mean_t [ std(σ_θ)_t + std(μ_θ)_t ]` over MC samples.
    pub model_uncertainty: f64,
    /// Mean σ over time and samples (data-uncertainty proxy).
    pub data_uncertainty: f64,
    /// Number of MC samples used.
    pub samples: usize,
}

/// Estimate model uncertainty on a trajectory context via MC dropout
/// (paper §6.2.1): run `n_samples` generations with dropout on, collect
/// the per-step `(μ, σ)` of ResGen, and average the across-sample standard
/// deviations over time.
///
/// Samples are independent (each seeds its own RNG stream), so they run
/// on worker threads when more than one is configured; results are
/// joined in sample order, keeping the report thread-count independent.
pub fn model_uncertainty(
    model: &mut GenDt,
    ctx: &RunContext,
    n_samples: usize,
    seed: u64,
) -> UncertaintyReport {
    gendt_trace::span!("model_uncertainty", "samples" => n_samples);
    assert!(n_samples >= 2, "need at least two MC samples");
    let cfg = model.cfg().clone();
    let wins = generation_windows(ctx, cfg.n_ch, &cfg.generation_window());
    let generator = &model.generator;
    // One MC pass: (mu_flat, sigma_flat) over all windows and steps.
    let run_sample = |s: usize| -> (Vec<f32>, Vec<f32>) {
        let mut rng = gendt_nn::Rng::seed_from(seed ^ ((s as u64 + 1) << 32));
        let mut carry = CarryState::zeros(&cfg, 1);
        let mut mu_flat = Vec::new();
        let mut sg_flat = Vec::new();
        for w in &wins {
            let mut g = Graph::new();
            let fwd = generator.forward(&mut g, &[w], &carry, ArMode::FreeRunning, true, &mut rng);
            for (&mu, &sg) in fwd.res_mu.iter().zip(fwd.res_sigma.iter()) {
                mu_flat.extend_from_slice(&g.value(mu).data);
                sg_flat.extend_from_slice(&g.value(sg).data);
            }
            carry = fwd.carry;
        }
        (mu_flat, sg_flat)
    };
    let mut samples: Vec<Option<(Vec<f32>, Vec<f32>)>> = (0..n_samples).map(|_| None).collect();
    if gendt_nn::num_threads() <= 1 {
        for (s, slot) in samples.iter_mut().enumerate() {
            *slot = Some(run_sample(s));
        }
    } else {
        let run_sample = &run_sample;
        rayon::scope(|sc| {
            for (s, slot) in samples.iter_mut().enumerate() {
                sc.spawn(move |_| *slot = Some(run_sample(s)));
            }
        });
    }
    // mus[sample][t][ch], sigmas likewise (flattened over windows).
    let mut mus: Vec<Vec<f32>> = Vec::with_capacity(n_samples);
    let mut sigmas: Vec<Vec<f32>> = Vec::with_capacity(n_samples);
    for pair in samples.into_iter().flatten() {
        mus.push(pair.0);
        sigmas.push(pair.1);
    }
    assert_eq!(mus.len(), n_samples, "an MC sample did not run");
    let t_len = mus[0].len();
    if t_len == 0 {
        // ResGen ablated or trajectory too short: no uncertainty signal.
        return UncertaintyReport {
            model_uncertainty: 0.0,
            data_uncertainty: 0.0,
            samples: n_samples,
        };
    }
    let mut acc = 0.0;
    let mut sigma_acc = 0.0;
    for t in 0..t_len {
        let mu_t: Vec<f64> = mus.iter().map(|s| s[t] as f64).collect();
        let sg_t: Vec<f64> = sigmas.iter().map(|s| s[t] as f64).collect();
        acc += gendt_metrics::std_dev(&mu_t) + gendt_metrics::std_dev(&sg_t);
        sigma_acc += gendt_metrics::mean(&sg_t);
    }
    UncertaintyReport {
        model_uncertainty: acc / t_len as f64,
        data_uncertainty: sigma_acc / t_len as f64,
        samples: n_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::GenDtCfg;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::context::{extract, ContextCfg};

    fn tiny_model_and_ctx() -> (GenDt, RunContext) {
        let mut cfg = GenDtCfg::fast(4, 9);
        cfg.hidden = 8;
        cfg.resgen_hidden = 8;
        cfg.disc_hidden = 6;
        cfg.window.len = 10;
        cfg.window.stride = 5;
        cfg.window.max_cells = 3;
        cfg.steps = 3;
        cfg.batch_size = 4;
        let ds = dataset_a(&BuildCfg::quick(47));
        let run = &ds.runs[0];
        let ctx = extract(
            &ds.world,
            &ds.deployment,
            &run.traj,
            &ContextCfg {
                max_cells: 3,
                ..ContextCfg::default()
            },
        );
        let mut pool = Vec::new();
        pool.extend(gendt_data::windows::windows(
            run,
            &ctx,
            &Kpi::DATASET_A,
            &cfg.window,
        ));
        let mut model = GenDt::new(cfg);
        model.train(&pool);
        (model, ctx)
    }

    #[test]
    fn generated_series_has_expected_length_and_ranges() {
        let (mut model, ctx) = tiny_model_and_ctx();
        let out = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 5);
        let expected = (ctx.steps.len() / 10) * 10;
        assert_eq!(out.len(), expected);
        let rsrp = out.channel(Kpi::Rsrp).unwrap();
        assert!(rsrp.iter().all(|&v| (-140.0..=-44.0).contains(&v)));
        let cqi = out.channel(Kpi::Cqi).unwrap();
        assert!(cqi
            .iter()
            .all(|&v| (1.0..=15.0).contains(&v) && v.fract() == 0.0));
    }

    #[test]
    fn batched_generation_is_bitwise_equal_to_direct() {
        let (mut model, ctx) = tiny_model_and_ctx();
        assert!(ctx.steps.len() >= 40, "fixture trajectory too short");
        // Different-length views of the trajectory give the requests
        // different window counts (the batch shrinks over window index)
        // and different visible-cell sets (padding inside the batch).
        let short = RunContext {
            steps: ctx.steps[..20].to_vec(),
        };
        let mid = RunContext {
            steps: ctx.steps[7..37].to_vec(),
        };
        let items = [
            GenBatchItem {
                ctx: &short,
                seed: 101,
            },
            GenBatchItem {
                ctx: &ctx,
                seed: 202,
            },
            GenBatchItem {
                ctx: &mid,
                seed: 303,
            },
        ];
        let batched = generate_series_batch(&model, &Kpi::DATASET_A, &items);
        assert_eq!(batched.len(), items.len());
        for (it, got) in items.iter().zip(batched.iter()) {
            let direct = generate_series(&mut model, it.ctx, &Kpi::DATASET_A, false, it.seed);
            assert_eq!(direct.kpis, got.kpis);
            // Exact f64 equality: the batched pass must be
            // bitwise-identical to the single-request pass.
            assert_eq!(direct.series, got.series, "batched output diverges");
        }
    }

    #[test]
    fn plan_mode_generation_is_bitwise_equal_to_interpreted() {
        let (mut model, ctx) = tiny_model_and_ctx();
        model.set_plan_mode(false);
        let base = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 9);
        model.set_plan_mode(true);
        // Run twice: the first compiles the plans, the second replays
        // them from the cache — both must match the interpreted output.
        let first = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 9);
        let replay = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 9);
        assert_eq!(base.series, first.series, "compiled pass diverges");
        assert_eq!(base.series, replay.series, "cached replay diverges");

        let items = [
            GenBatchItem { ctx: &ctx, seed: 5 },
            GenBatchItem { ctx: &ctx, seed: 6 },
        ];
        model.set_plan_mode(false);
        let b_base = generate_series_batch(&model, &Kpi::DATASET_A, &items);
        model.set_plan_mode(true);
        let b_first = generate_series_batch(&model, &Kpi::DATASET_A, &items);
        let b_replay = generate_series_batch(&model, &Kpi::DATASET_A, &items);
        for k in 0..items.len() {
            assert_eq!(b_base[k].series, b_first[k].series, "batch plan diverges");
            assert_eq!(
                b_base[k].series, b_replay[k].series,
                "batch replay diverges"
            );
        }
    }

    #[test]
    fn chunked_generation_concatenates_to_one_shot() {
        let (mut model, ctx) = tiny_model_and_ctx();
        assert!(ctx.steps.len() >= 40, "fixture trajectory too short");
        let short = RunContext {
            steps: ctx.steps[..20].to_vec(),
        };
        let cases: [(&RunContext, u64, usize); 3] = [(&ctx, 71, 1), (&short, 72, 2), (&ctx, 73, 3)];
        for plan in [false, true] {
            model.set_plan_mode(plan);
            for &(c, seed, step) in &cases {
                let one_shot = {
                    let items = [GenBatchItem { ctx: c, seed }];
                    generate_series_batch(&model, &Kpi::DATASET_A, &items).remove(0)
                };
                // Re-generate the same series in chunks of `step` windows,
                // carrying the cursor across calls; streams sitting at
                // different absolute positions share each batch.
                let mut items = vec![GenChunkItem {
                    ctx: c,
                    cursor: GenCursor::fresh(model.cfg(), seed),
                    max_windows: step,
                }];
                let total = generation_windows(c, 4, &model.cfg().generation_window()).len();
                let mut cat: Vec<Vec<f64>> = vec![Vec::new(); 4];
                while items[0].cursor.next_window < total {
                    let chunk = generate_series_chunk(&model, &Kpi::DATASET_A, &mut items);
                    for (acc, s) in cat.iter_mut().zip(chunk[0].series.iter()) {
                        acc.extend_from_slice(s);
                    }
                }
                // Exact f64 equality: chunk N+1 must continue bitwise
                // where chunk N stopped (plan mode included).
                assert_eq!(
                    one_shot.series, cat,
                    "chunked concat diverges (plan={plan})"
                );
                // A further chunk past the end produces nothing and
                // leaves the cursor parked.
                let tail = generate_series_chunk(&model, &Kpi::DATASET_A, &mut items);
                assert!(tail[0].is_empty());
                assert_eq!(items[0].cursor.next_window, total);
            }
        }
    }

    #[test]
    fn mixed_position_streams_batch_bitwise_equal() {
        let (model, ctx) = tiny_model_and_ctx();
        let short = RunContext {
            steps: ctx.steps[..20].to_vec(),
        };
        // Solo references: each stream chunked alone.
        let solo = |c: &RunContext, seed: u64, step: usize| -> Vec<Vec<f64>> {
            let mut items = vec![GenChunkItem {
                ctx: c,
                cursor: GenCursor::fresh(model.cfg(), seed),
                max_windows: step,
            }];
            let total = generation_windows(c, 4, &model.cfg().generation_window()).len();
            let mut cat: Vec<Vec<f64>> = vec![Vec::new(); 4];
            while items[0].cursor.next_window < total {
                let chunk = generate_series_chunk(&model, &Kpi::DATASET_A, &mut items);
                for (acc, s) in cat.iter_mut().zip(chunk[0].series.iter()) {
                    acc.extend_from_slice(s);
                }
            }
            cat
        };
        let a_ref = solo(&ctx, 11, 2);
        let b_ref = solo(&short, 12, 1);
        // Joint run: the two streams advance in lock-step batches while
        // sitting at different absolute window positions.
        let mut items = vec![
            GenChunkItem {
                ctx: &ctx,
                cursor: GenCursor::fresh(model.cfg(), 11),
                max_windows: 2,
            },
            GenChunkItem {
                ctx: &short,
                cursor: GenCursor::fresh(model.cfg(), 12),
                max_windows: 1,
            },
        ];
        let mut cats: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 4]; 2];
        for _ in 0..16 {
            let chunks = generate_series_chunk(&model, &Kpi::DATASET_A, &mut items);
            for (cat, chunk) in cats.iter_mut().zip(chunks.iter()) {
                for (acc, s) in cat.iter_mut().zip(chunk.series.iter()) {
                    acc.extend_from_slice(s);
                }
            }
        }
        assert_eq!(cats[0], a_ref, "joint stream A diverges from solo");
        assert_eq!(cats[1], b_ref, "joint stream B diverges from solo");
    }

    #[test]
    fn different_sample_seeds_differ() {
        let (mut model, ctx) = tiny_model_and_ctx();
        let a = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 1);
        let b = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 2);
        assert_ne!(a.series[0], b.series[0], "stochastic generation collapsed");
    }

    #[test]
    fn uncertainty_is_positive_with_resgen() {
        let (mut model, ctx) = tiny_model_and_ctx();
        let rep = model_uncertainty(&mut model, &ctx, 3, 11);
        assert!(rep.model_uncertainty > 0.0);
        assert!(rep.data_uncertainty > 0.0);
        assert_eq!(rep.samples, 3);
    }

    #[test]
    fn generation_windows_capped_by_length() {
        let (_, ctx) = tiny_model_and_ctx();
        let cfg = WindowCfg {
            len: 10,
            stride: 10,
            max_cells: 3,
            ar_context: 4,
        };
        let wins = generation_windows(&ctx, 4, &cfg);
        assert_eq!(wins.len(), ctx.steps.len() / 10);
        for w in &wins {
            assert!(w.cells.len() <= 3);
            assert_eq!(w.env.len(), 10);
        }
    }
}
