//! Generation: synthesize KPI time series for a (possibly unseen)
//! trajectory from its context, and the MC-dropout model-uncertainty
//! measure (paper §6.2.1).
//!
//! Long series are produced window-by-window with non-overlapping windows
//! (paper §4.3.3); the aggregation-LSTM state and the autoregressive tail
//! carry across windows so temporal correlation survives window borders.

use crate::cfg::GenDtCfg;
use crate::generator::{ArMode, CarryState};
use crate::trainer::GenDt;
use gendt_data::context::RunContext;
use gendt_data::kpi_types::Kpi;
use gendt_data::windows::{Window, WindowCfg};
use gendt_geo::landuse::ENV_ATTRS;
use gendt_nn::{Graph, PlanKey};
use serde::{Deserialize, Serialize};

/// Build generation windows from context alone (no KPI targets — this is
/// what "generating for a new trajectory without field measurements"
/// means). Targets and AR seeds are zero-filled placeholders.
pub fn generation_windows(ctx: &RunContext, n_ch: usize, cfg: &WindowCfg) -> Vec<Window> {
    let n = ctx.steps.len();
    let mut out = Vec::new();
    let mut start = 0usize;
    while start + cfg.len <= n {
        let end = start + cfg.len;
        // Rank cells by presence over the window, as in training.
        let mut presence: std::collections::BTreeMap<u32, usize> = Default::default();
        for step in &ctx.steps[start..end] {
            for &(id, _) in &step.cells {
                *presence.entry(id).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(u32, usize)> = presence.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(cfg.max_cells);
        let cell_ids: Vec<u32> = ranked.into_iter().map(|(id, _)| id).collect();
        let cells = cell_ids
            .iter()
            .map(|&id| {
                ctx.steps[start..end]
                    .iter()
                    .map(|s| {
                        s.cells
                            .iter()
                            .find(|&&(cid, _)| cid == id)
                            .map(|&(_, f)| f)
                            .unwrap_or([0.0, 0.0, 0.0, 0.0, 1.0])
                    })
                    .collect()
            })
            .collect();
        let env: Vec<Vec<f32>> = ctx.steps[start..end]
            .iter()
            .map(|s| s.env.clone())
            .collect();
        debug_assert!(env.iter().all(|e| e.len() == ENV_ATTRS));
        out.push(Window {
            targets: vec![vec![0.0; cfg.len]; n_ch],
            cells,
            cell_ids,
            env,
            ar_seed: vec![vec![0.0; cfg.ar_context]; n_ch],
            start,
        });
        start += cfg.stride;
    }
    out
}

/// One generated multi-KPI series in physical units.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneratedSeries {
    /// KPI channels, aligned with the `kpis` list used at generation.
    pub kpis: Vec<Kpi>,
    /// Physical-unit series per KPI, `[n_ch][T']` where
    /// `T' = ⌊T/L⌋·L` (the paper's batch generation length).
    pub series: Vec<Vec<f64>>,
}

impl GeneratedSeries {
    /// Series for one KPI channel.
    pub fn channel(&self, kpi: Kpi) -> Option<&[f64]> {
        self.kpis
            .iter()
            .position(|&k| k == kpi)
            .map(|i| self.series[i].as_slice())
    }

    /// Length of the generated series.
    pub fn len(&self) -> usize {
        self.series.first().map(|s| s.len()).unwrap_or(0)
    }

    /// True when nothing was generated (trajectory shorter than one window).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generate a multi-KPI series for a trajectory context.
///
/// * `mc_dropout` keeps ResGen's dropout active (used by the uncertainty
///   measure); normal generation passes `false`.
/// * `sample_seed` decorrelates repeated draws for the same trajectory.
pub fn generate_series(
    model: &mut GenDt,
    ctx: &RunContext,
    kpis: &[Kpi],
    mc_dropout: bool,
    sample_seed: u64,
) -> GeneratedSeries {
    gendt_trace::span!("generate_series");
    let cfg: GenDtCfg = model.cfg().clone();
    assert_eq!(
        kpis.len(),
        cfg.n_ch,
        "KPI list does not match model channels"
    );
    let wins = generation_windows(ctx, cfg.n_ch, &cfg.generation_window());
    let mut rng = gendt_nn::Rng::seed_from(sample_seed);
    let mut carry = CarryState::zeros(&cfg, 1);
    let mut norm: Vec<Vec<f32>> = vec![Vec::new(); cfg.n_ch];
    let plan_on = model.plan_mode();
    for w in &wins {
        let plan_key = plan_on.then(|| {
            PlanKey::new(
                "gen",
                [
                    1,
                    w.env.len() as u64,
                    crate::generator::batch_max_cells(&[w]) as u64,
                    u64::from(mc_dropout),
                    0,
                    0,
                ],
            )
        });
        let mut g = match plan_key.as_ref().and_then(|k| model.plans.take(k)) {
            Some(plan) => Graph::replay(plan),
            None => Graph::new(),
        };
        let fwd = model.generator.forward(
            &mut g,
            &[w],
            &carry,
            ArMode::FreeRunning,
            mc_dropout,
            &mut rng,
        );
        for &out in &fwd.outputs {
            let v = g.value(out);
            for (n, &val) in norm.iter_mut().zip(v.data.iter().take(cfg.n_ch)) {
                n.push(val);
            }
        }
        carry = fwd.carry;
        if let Some(key) = plan_key {
            model.plans.put(key, g.into_plan(None));
        }
    }
    let series: Vec<Vec<f64>> = norm
        .into_iter()
        .enumerate()
        .map(|(ch, s)| s.into_iter().map(|v| kpis[ch].denormalize(v)).collect())
        .collect();
    // Under GENDT_SANITIZE the tape already vetted every intermediate op;
    // this guards the last unvetted hop, denormalization to physical units.
    if gendt_nn::sanitize_enabled() {
        for (ch, s) in series.iter().enumerate() {
            if let Some(t) = s.iter().position(|v| !v.is_finite()) {
                panic!(
                    "GENDT_SANITIZE: generated series for KPI {:?} is non-finite at step {t}",
                    kpis[ch]
                );
            }
        }
    }
    GeneratedSeries {
        kpis: kpis.to_vec(),
        series,
    }
}

/// One request in a batched generation call: a trajectory context plus
/// the explicit sample seed that makes its output reproducible.
pub struct GenBatchItem<'a> {
    /// Trajectory context to generate for.
    pub ctx: &'a RunContext,
    /// Sample seed, same meaning as `generate_series`'s `sample_seed`.
    pub seed: u64,
}

/// Generate series for several independent requests in one batched
/// forward pass per window index.
///
/// Each result is **bitwise-identical** to what
/// [`generate_series`]`(model, item.ctx, kpis, false, item.seed)` returns
/// for that item alone: every request keeps its own RNG stream (seeded
/// from its own seed, advanced in single-request order), and all batched
/// compute ops are row-local — see `Generator::forward_gen_batch`. This
/// is the micro-batching entry point the serving layer coalesces
/// concurrent `/generate` requests onto.
///
/// Requests whose trajectories yield different window counts simply drop
/// out of the batch once exhausted; the batch shrinks over window index.
pub fn generate_series_batch(
    model: &GenDt,
    kpis: &[Kpi],
    items: &[GenBatchItem],
) -> Vec<GeneratedSeries> {
    gendt_trace::span!("generate_series_batch", "items" => items.len());
    let cfg: GenDtCfg = model.cfg().clone();
    assert_eq!(
        kpis.len(),
        cfg.n_ch,
        "KPI list does not match model channels"
    );
    let n = items.len();
    let wins: Vec<Vec<Window>> = items
        .iter()
        .map(|it| generation_windows(it.ctx, cfg.n_ch, &cfg.generation_window()))
        .collect();
    let mut rngs: Vec<gendt_nn::Rng> = items
        .iter()
        .map(|it| gendt_nn::Rng::seed_from(it.seed))
        .collect();
    let mut carries: Vec<CarryState> = (0..n).map(|_| CarryState::zeros(&cfg, 1)).collect();
    let mut norm: Vec<Vec<Vec<f32>>> = vec![vec![Vec::new(); cfg.n_ch]; n];

    let hid = cfg.hidden;
    let tail_w = cfg.n_ch * cfg.window.ar_context;
    let max_wins = wins.iter().map(|w| w.len()).max().unwrap_or(0);
    for wi in 0..max_wins {
        let active: Vec<usize> = (0..n).filter(|&i| wi < wins[i].len()).collect();
        let wrefs: Vec<&Window> = active.iter().map(|&i| &wins[i][wi]).collect();
        let bn = active.len();

        // Stack per-request carry rows and RNG streams for the active set.
        let mut carry_b = CarryState::zeros(&cfg, bn);
        let mut rng_b: Vec<gendt_nn::Rng> = Vec::with_capacity(bn);
        for (r, &i) in active.iter().enumerate() {
            carry_b.agg_h.data[r * hid..(r + 1) * hid].copy_from_slice(&carries[i].agg_h.data);
            carry_b.agg_c.data[r * hid..(r + 1) * hid].copy_from_slice(&carries[i].agg_c.data);
            carry_b.ar_tail.data[r * tail_w..(r + 1) * tail_w]
                .copy_from_slice(&carries[i].ar_tail.data);
            rng_b.push(rngs[i].clone());
        }

        let plan_key = model.plan_mode().then(|| {
            PlanKey::new(
                "gen_batch",
                [
                    bn as u64,
                    cfg.generation_window().len as u64,
                    crate::generator::batch_max_cells(&wrefs) as u64,
                    0,
                    0,
                    0,
                ],
            )
        });
        let mut g = match plan_key.as_ref().and_then(|k| model.plans.take(k)) {
            Some(plan) => Graph::replay(plan),
            None => Graph::new(),
        };
        let fwd = model
            .generator
            .forward_gen_batch(&mut g, &wrefs, &carry_b, &mut rng_b);

        for &out in &fwd.outputs {
            let v = g.value(out);
            for (r, &i) in active.iter().enumerate() {
                for (ch, acc) in norm[i].iter_mut().enumerate() {
                    acc.push(v.data[r * cfg.n_ch + ch]);
                }
            }
        }
        // Split the carry rows and advanced RNG streams back out.
        for (r, &i) in active.iter().enumerate() {
            carries[i]
                .agg_h
                .data
                .copy_from_slice(&fwd.carry.agg_h.data[r * hid..(r + 1) * hid]);
            carries[i]
                .agg_c
                .data
                .copy_from_slice(&fwd.carry.agg_c.data[r * hid..(r + 1) * hid]);
            carries[i]
                .ar_tail
                .data
                .copy_from_slice(&fwd.carry.ar_tail.data[r * tail_w..(r + 1) * tail_w]);
            rngs[i] = rng_b[r].clone();
        }
        if let Some(key) = plan_key {
            model.plans.put(key, g.into_plan(None));
        }
    }

    norm.into_iter()
        .map(|per_ch| {
            let series: Vec<Vec<f64>> = per_ch
                .into_iter()
                .enumerate()
                .map(|(ch, s)| s.into_iter().map(|v| kpis[ch].denormalize(v)).collect())
                .collect();
            if gendt_nn::sanitize_enabled() {
                for (ch, s) in series.iter().enumerate() {
                    if let Some(t) = s.iter().position(|v| !v.is_finite()) {
                        panic!(
                            "GENDT_SANITIZE: batched series for KPI {:?} is non-finite at step {t}",
                            kpis[ch]
                        );
                    }
                }
            }
            GeneratedSeries {
                kpis: kpis.to_vec(),
                series,
            }
        })
        .collect()
}

/// ResGen distribution-parameter statistics from repeated MC-dropout
/// passes — the inputs of the model-uncertainty measure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UncertaintyReport {
    /// `U(G_θ) = mean_t [ std(σ_θ)_t + std(μ_θ)_t ]` over MC samples.
    pub model_uncertainty: f64,
    /// Mean σ over time and samples (data-uncertainty proxy).
    pub data_uncertainty: f64,
    /// Number of MC samples used.
    pub samples: usize,
}

/// Estimate model uncertainty on a trajectory context via MC dropout
/// (paper §6.2.1): run `n_samples` generations with dropout on, collect
/// the per-step `(μ, σ)` of ResGen, and average the across-sample standard
/// deviations over time.
///
/// Samples are independent (each seeds its own RNG stream), so they run
/// on worker threads when more than one is configured; results are
/// joined in sample order, keeping the report thread-count independent.
pub fn model_uncertainty(
    model: &mut GenDt,
    ctx: &RunContext,
    n_samples: usize,
    seed: u64,
) -> UncertaintyReport {
    gendt_trace::span!("model_uncertainty", "samples" => n_samples);
    assert!(n_samples >= 2, "need at least two MC samples");
    let cfg = model.cfg().clone();
    let wins = generation_windows(ctx, cfg.n_ch, &cfg.generation_window());
    let generator = &model.generator;
    // One MC pass: (mu_flat, sigma_flat) over all windows and steps.
    let run_sample = |s: usize| -> (Vec<f32>, Vec<f32>) {
        let mut rng = gendt_nn::Rng::seed_from(seed ^ ((s as u64 + 1) << 32));
        let mut carry = CarryState::zeros(&cfg, 1);
        let mut mu_flat = Vec::new();
        let mut sg_flat = Vec::new();
        for w in &wins {
            let mut g = Graph::new();
            let fwd = generator.forward(&mut g, &[w], &carry, ArMode::FreeRunning, true, &mut rng);
            for (&mu, &sg) in fwd.res_mu.iter().zip(fwd.res_sigma.iter()) {
                mu_flat.extend_from_slice(&g.value(mu).data);
                sg_flat.extend_from_slice(&g.value(sg).data);
            }
            carry = fwd.carry;
        }
        (mu_flat, sg_flat)
    };
    let mut samples: Vec<Option<(Vec<f32>, Vec<f32>)>> = (0..n_samples).map(|_| None).collect();
    if gendt_nn::num_threads() <= 1 {
        for (s, slot) in samples.iter_mut().enumerate() {
            *slot = Some(run_sample(s));
        }
    } else {
        let run_sample = &run_sample;
        rayon::scope(|sc| {
            for (s, slot) in samples.iter_mut().enumerate() {
                sc.spawn(move |_| *slot = Some(run_sample(s)));
            }
        });
    }
    // mus[sample][t][ch], sigmas likewise (flattened over windows).
    let mut mus: Vec<Vec<f32>> = Vec::with_capacity(n_samples);
    let mut sigmas: Vec<Vec<f32>> = Vec::with_capacity(n_samples);
    for pair in samples.into_iter().flatten() {
        mus.push(pair.0);
        sigmas.push(pair.1);
    }
    assert_eq!(mus.len(), n_samples, "an MC sample did not run");
    let t_len = mus[0].len();
    if t_len == 0 {
        // ResGen ablated or trajectory too short: no uncertainty signal.
        return UncertaintyReport {
            model_uncertainty: 0.0,
            data_uncertainty: 0.0,
            samples: n_samples,
        };
    }
    let mut acc = 0.0;
    let mut sigma_acc = 0.0;
    for t in 0..t_len {
        let mu_t: Vec<f64> = mus.iter().map(|s| s[t] as f64).collect();
        let sg_t: Vec<f64> = sigmas.iter().map(|s| s[t] as f64).collect();
        acc += gendt_metrics::std_dev(&mu_t) + gendt_metrics::std_dev(&sg_t);
        sigma_acc += gendt_metrics::mean(&sg_t);
    }
    UncertaintyReport {
        model_uncertainty: acc / t_len as f64,
        data_uncertainty: sigma_acc / t_len as f64,
        samples: n_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::GenDtCfg;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::context::{extract, ContextCfg};

    fn tiny_model_and_ctx() -> (GenDt, RunContext) {
        let mut cfg = GenDtCfg::fast(4, 9);
        cfg.hidden = 8;
        cfg.resgen_hidden = 8;
        cfg.disc_hidden = 6;
        cfg.window.len = 10;
        cfg.window.stride = 5;
        cfg.window.max_cells = 3;
        cfg.steps = 3;
        cfg.batch_size = 4;
        let ds = dataset_a(&BuildCfg::quick(47));
        let run = &ds.runs[0];
        let ctx = extract(
            &ds.world,
            &ds.deployment,
            &run.traj,
            &ContextCfg {
                max_cells: 3,
                ..ContextCfg::default()
            },
        );
        let mut pool = Vec::new();
        pool.extend(gendt_data::windows::windows(
            run,
            &ctx,
            &Kpi::DATASET_A,
            &cfg.window,
        ));
        let mut model = GenDt::new(cfg);
        model.train(&pool);
        (model, ctx)
    }

    #[test]
    fn generated_series_has_expected_length_and_ranges() {
        let (mut model, ctx) = tiny_model_and_ctx();
        let out = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 5);
        let expected = (ctx.steps.len() / 10) * 10;
        assert_eq!(out.len(), expected);
        let rsrp = out.channel(Kpi::Rsrp).unwrap();
        assert!(rsrp.iter().all(|&v| (-140.0..=-44.0).contains(&v)));
        let cqi = out.channel(Kpi::Cqi).unwrap();
        assert!(cqi
            .iter()
            .all(|&v| (1.0..=15.0).contains(&v) && v.fract() == 0.0));
    }

    #[test]
    fn batched_generation_is_bitwise_equal_to_direct() {
        let (mut model, ctx) = tiny_model_and_ctx();
        assert!(ctx.steps.len() >= 40, "fixture trajectory too short");
        // Different-length views of the trajectory give the requests
        // different window counts (the batch shrinks over window index)
        // and different visible-cell sets (padding inside the batch).
        let short = RunContext {
            steps: ctx.steps[..20].to_vec(),
        };
        let mid = RunContext {
            steps: ctx.steps[7..37].to_vec(),
        };
        let items = [
            GenBatchItem {
                ctx: &short,
                seed: 101,
            },
            GenBatchItem {
                ctx: &ctx,
                seed: 202,
            },
            GenBatchItem {
                ctx: &mid,
                seed: 303,
            },
        ];
        let batched = generate_series_batch(&model, &Kpi::DATASET_A, &items);
        assert_eq!(batched.len(), items.len());
        for (it, got) in items.iter().zip(batched.iter()) {
            let direct = generate_series(&mut model, it.ctx, &Kpi::DATASET_A, false, it.seed);
            assert_eq!(direct.kpis, got.kpis);
            // Exact f64 equality: the batched pass must be
            // bitwise-identical to the single-request pass.
            assert_eq!(direct.series, got.series, "batched output diverges");
        }
    }

    #[test]
    fn plan_mode_generation_is_bitwise_equal_to_interpreted() {
        let (mut model, ctx) = tiny_model_and_ctx();
        model.set_plan_mode(false);
        let base = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 9);
        model.set_plan_mode(true);
        // Run twice: the first compiles the plans, the second replays
        // them from the cache — both must match the interpreted output.
        let first = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 9);
        let replay = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 9);
        assert_eq!(base.series, first.series, "compiled pass diverges");
        assert_eq!(base.series, replay.series, "cached replay diverges");

        let items = [
            GenBatchItem { ctx: &ctx, seed: 5 },
            GenBatchItem { ctx: &ctx, seed: 6 },
        ];
        model.set_plan_mode(false);
        let b_base = generate_series_batch(&model, &Kpi::DATASET_A, &items);
        model.set_plan_mode(true);
        let b_first = generate_series_batch(&model, &Kpi::DATASET_A, &items);
        let b_replay = generate_series_batch(&model, &Kpi::DATASET_A, &items);
        for k in 0..items.len() {
            assert_eq!(b_base[k].series, b_first[k].series, "batch plan diverges");
            assert_eq!(
                b_base[k].series, b_replay[k].series,
                "batch replay diverges"
            );
        }
    }

    #[test]
    fn different_sample_seeds_differ() {
        let (mut model, ctx) = tiny_model_and_ctx();
        let a = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 1);
        let b = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 2);
        assert_ne!(a.series[0], b.series[0], "stochastic generation collapsed");
    }

    #[test]
    fn uncertainty_is_positive_with_resgen() {
        let (mut model, ctx) = tiny_model_and_ctx();
        let rep = model_uncertainty(&mut model, &ctx, 3, 11);
        assert!(rep.model_uncertainty > 0.0);
        assert!(rep.data_uncertainty > 0.0);
        assert_eq!(rep.samples, 3);
    }

    #[test]
    fn generation_windows_capped_by_length() {
        let (_, ctx) = tiny_model_and_ctx();
        let cfg = WindowCfg {
            len: 10,
            stride: 10,
            max_cells: 3,
            ar_context: 4,
        };
        let wins = generation_windows(&ctx, 4, &cfg);
        assert_eq!(wins.len(), ctx.steps.len() / 10);
        for w in &wins {
            assert!(w.cells.len() <= 3);
            assert_eq!(w.env.len(), 10);
        }
    }
}
