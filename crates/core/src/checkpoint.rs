//! Model checkpointing: save and restore a trained GenDT (generator +
//! discriminator + configuration) as JSON.
//!
//! This is the operator workflow of paper §7.1: a *pretrained* model is
//! the starting point of the generation phase and of retraining for a new
//! region; both need the model to survive the process that trained it.

use crate::cfg::GenDtCfg;
use crate::trainer::GenDt;
use gendt_nn::checkpoint::{restore, snapshot, Checkpoint, CheckpointError};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Magic string at the start of every headered checkpoint file. The
/// first line is `GENDTCKPT <version>`, then the JSON body.
pub const MAGIC: &str = "GENDTCKPT";

/// Format version written by [`save_model_to_file`].
pub const FORMAT_VERSION: u32 = 2;

/// On-disk model format.
#[derive(Debug, Serialize, Deserialize)]
pub struct ModelCheckpoint {
    /// Format version.
    pub version: u32,
    /// The configuration the model was built with (architecture must
    /// match to restore).
    pub cfg: GenDtCfg,
    /// Generator parameters.
    pub generator: Checkpoint,
    /// Discriminator parameters.
    pub discriminator: Checkpoint,
}

/// Snapshot a trained model.
pub fn save_model(model: &GenDt) -> ModelCheckpoint {
    ModelCheckpoint {
        version: 1,
        cfg: model.cfg().clone(),
        generator: snapshot(&model.generator.store),
        discriminator: snapshot(&model.discriminator.store),
    }
}

/// Write a model checkpoint to a file: a `GENDTCKPT <version>` header
/// line followed by the JSON body. The header lets the registry reject
/// foreign files before attempting a multi-megabyte JSON parse.
pub fn save_model_to_file(model: &GenDt, path: &Path) -> Result<(), CheckpointError> {
    let ckpt = save_model(model);
    let json = serde_json::to_string(&ckpt).map_err(CheckpointError::Json)?;
    let body = format!("{MAGIC} {FORMAT_VERSION}\n{json}");
    std::fs::write(path, body).map_err(CheckpointError::Io)?;
    Ok(())
}

/// Rebuild a model from a checkpoint. The architecture is reconstructed
/// from the stored configuration, then parameter values are restored by
/// name.
pub fn load_model(ckpt: &ModelCheckpoint) -> Result<GenDt, CheckpointError> {
    let mut model = GenDt::new(ckpt.cfg.clone());
    restore(&mut model.generator.store, &ckpt.generator)?;
    restore(&mut model.discriminator.store, &ckpt.discriminator)?;
    Ok(model)
}

/// Parse the file body into a [`ModelCheckpoint`], accepting both the
/// headered format and legacy headerless JSON (files that start with
/// `{`). Anything else is rejected with a descriptive [`Format`] error
/// rather than a JSON parse failure deep inside a foreign file.
///
/// [`Format`]: CheckpointError::Format
pub fn parse_model_checkpoint(text: &str) -> Result<ModelCheckpoint, CheckpointError> {
    let json = if let Some(rest) = text.strip_prefix(MAGIC) {
        let (header, body) = match rest.split_once('\n') {
            Some(split) => split,
            None => {
                return Err(CheckpointError::Format(
                    "header line has no body after it (truncated file?)".to_string(),
                ))
            }
        };
        let version: u32 = header.trim().parse().map_err(|_| {
            CheckpointError::Format(format!(
                "malformed header {:?}: expected `{MAGIC} <version>`",
                header.trim()
            ))
        })?;
        if version > FORMAT_VERSION {
            return Err(CheckpointError::Format(format!(
                "format version {version} is newer than supported {FORMAT_VERSION}"
            )));
        }
        body
    } else if text.trim_start().starts_with('{') {
        // Legacy headerless checkpoint: plain JSON from format v1.
        text
    } else {
        let head: String = text.chars().take(16).collect();
        return Err(CheckpointError::Format(format!(
            "not a GenDT checkpoint: expected `{MAGIC}` header or JSON body, found {head:?}"
        )));
    };
    serde_json::from_str(json).map_err(|e| {
        CheckpointError::Format(format!(
            "checkpoint body is not valid model JSON (truncated file?): {e}"
        ))
    })
}

/// Read a model checkpoint from a file (headered or legacy headerless).
pub fn load_model_from_file(path: &Path) -> Result<GenDt, CheckpointError> {
    let text = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
    let ckpt = parse_model_checkpoint(&text)?;
    load_model(&ckpt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_series;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::context::{extract, ContextCfg};
    use gendt_data::kpi_types::Kpi;
    use gendt_data::windows::windows as make_windows;

    fn tiny_trained() -> (GenDt, gendt_data::context::RunContext) {
        let mut cfg = GenDtCfg::fast(4, 77);
        cfg.hidden = 8;
        cfg.resgen_hidden = 8;
        cfg.disc_hidden = 4;
        cfg.window.len = 10;
        cfg.window.stride = 10;
        cfg.window.max_cells = 2;
        cfg.steps = 4;
        cfg.batch_size = 4;
        let ds = dataset_a(&BuildCfg::quick(78));
        let run = &ds.runs[0];
        let ctx = extract(
            &ds.world,
            &ds.deployment,
            &run.traj,
            &ContextCfg {
                max_cells: 2,
                ..ContextCfg::default()
            },
        );
        let pool = make_windows(run, &ctx, &Kpi::DATASET_A, &cfg.window);
        let mut model = GenDt::new(cfg);
        model.train(&pool);
        (model, ctx)
    }

    #[test]
    fn roundtrip_preserves_generation() -> Result<(), CheckpointError> {
        let (mut model, ctx) = tiny_trained();
        let before = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 5);
        let ckpt = save_model(&model);
        let mut restored = load_model(&ckpt)?;
        let after = generate_series(&mut restored, &ctx, &Kpi::DATASET_A, false, 5);
        assert_eq!(
            before.series, after.series,
            "restored model generates differently"
        );
        Ok(())
    }

    #[test]
    fn file_roundtrip() -> Result<(), CheckpointError> {
        let (model, _) = tiny_trained();
        let dir = std::env::temp_dir().join("gendt-model-ckpt-test");
        std::fs::create_dir_all(&dir).map_err(CheckpointError::Io)?;
        let path = dir.join("model.json");
        save_model_to_file(&model, &path)?;
        let restored = load_model_from_file(&path)?;
        assert_eq!(restored.cfg().hidden, model.cfg().hidden);
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn headered_file_roundtrip_and_legacy_load() -> Result<(), CheckpointError> {
        let (model, _) = tiny_trained();
        let dir = std::env::temp_dir().join("gendt-model-ckpt-header-test");
        std::fs::create_dir_all(&dir).map_err(CheckpointError::Io)?;

        // New files carry the magic header.
        let path = dir.join("headered.json");
        save_model_to_file(&model, &path)?;
        let text = std::fs::read_to_string(&path).map_err(CheckpointError::Io)?;
        assert!(text.starts_with("GENDTCKPT 2\n"), "missing header");
        load_model_from_file(&path)?;

        // A legacy headerless file (plain JSON, format v1) still loads.
        let legacy = dir.join("legacy.json");
        let json = serde_json::to_string(&save_model(&model)).map_err(CheckpointError::Json)?;
        std::fs::write(&legacy, json).map_err(CheckpointError::Io)?;
        load_model_from_file(&legacy)?;

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&legacy).ok();
        Ok(())
    }

    #[test]
    fn load_rejects_foreign_and_truncated_files() {
        // A foreign file is rejected with a Format error naming the magic.
        match parse_model_checkpoint("\u{89}PNG not a checkpoint") {
            Err(CheckpointError::Format(msg)) => {
                assert!(msg.contains("not a GenDT checkpoint"), "{msg}")
            }
            other => panic!("foreign file accepted: {other:?}"),
        }

        // A truncated headered file gives a descriptive body error.
        match parse_model_checkpoint("GENDTCKPT 2\n{\"version\":2,\"cfg\":{") {
            Err(CheckpointError::Format(msg)) => {
                assert!(msg.contains("truncated"), "{msg}")
            }
            other => panic!("truncated file accepted: {other:?}"),
        }

        // A header with no body at all.
        assert!(matches!(
            parse_model_checkpoint("GENDTCKPT 2"),
            Err(CheckpointError::Format(_))
        ));

        // A malformed version field.
        assert!(matches!(
            parse_model_checkpoint("GENDTCKPT banana\n{}"),
            Err(CheckpointError::Format(_))
        ));

        // A future format version is rejected, not misparsed.
        match parse_model_checkpoint("GENDTCKPT 99\n{}") {
            Err(CheckpointError::Format(msg)) => assert!(msg.contains("newer"), "{msg}"),
            other => panic!("future version accepted: {other:?}"),
        }
    }

    #[test]
    fn load_rejects_mismatched_architecture() {
        let (model, _) = tiny_trained();
        let mut ckpt = save_model(&model);
        // Corrupt the config: a different hidden size no longer matches
        // the stored parameter shapes.
        ckpt.cfg.hidden = 24;
        assert!(load_model(&ckpt).is_err());
    }
}
