//! Model checkpointing: save and restore a trained GenDT (generator +
//! discriminator + configuration) as JSON.
//!
//! This is the operator workflow of paper §7.1: a *pretrained* model is
//! the starting point of the generation phase and of retraining for a new
//! region; both need the model to survive the process that trained it.

use crate::cfg::GenDtCfg;
use crate::trainer::{GenDt, StepTrace};
use gendt_nn::checkpoint::{restore, snapshot, Checkpoint, CheckpointError};
use gendt_nn::{Adam, Rng};
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic string at the start of every headered checkpoint file. The
/// first line is `GENDTCKPT <version>`, then the JSON body.
pub const MAGIC: &str = "GENDTCKPT";

/// Format version written by [`save_model_to_file`].
pub const FORMAT_VERSION: u32 = 2;

/// Magic string of *training* checkpoints (full resume state: params +
/// optimizer moments + RNG + loss trace), distinct from model files so
/// the serving registry never confuses the two.
pub const TRAIN_MAGIC: &str = "GENDTTRN";

/// Format version written by [`save_train_checkpoint`].
pub const TRAIN_FORMAT_VERSION: u32 = 1;

/// Name of the rolling pointer file updated after every successful
/// training checkpoint write.
pub const LATEST_POINTER: &str = "latest";

/// On-disk model format.
#[derive(Debug, Serialize, Deserialize)]
pub struct ModelCheckpoint {
    /// Format version.
    pub version: u32,
    /// The configuration the model was built with (architecture must
    /// match to restore).
    pub cfg: GenDtCfg,
    /// Generator parameters.
    pub generator: Checkpoint,
    /// Discriminator parameters.
    pub discriminator: Checkpoint,
}

/// Snapshot a trained model.
pub fn save_model(model: &GenDt) -> ModelCheckpoint {
    ModelCheckpoint {
        version: 1,
        cfg: model.cfg().clone(),
        generator: snapshot(&model.generator.store),
        discriminator: snapshot(&model.discriminator.store),
    }
}

/// Crash-safe file write: the bytes go to a `.tmp` sibling, are fsynced,
/// and only then renamed over the destination. A kill at any point
/// leaves either the old file or the new one — never a torn mix. The
/// `checkpoint.write` fault probe fires before any byte is written, so
/// an injected failure also cannot corrupt the destination.
fn write_atomic(path: &Path, body: &str) -> std::io::Result<()> {
    gendt_faults::fail_io("checkpoint.write")?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Write a model checkpoint to a file: a `GENDTCKPT <version>` header
/// line followed by the JSON body. The header lets the registry reject
/// foreign files before attempting a multi-megabyte JSON parse. The
/// write is atomic (temp + fsync + rename).
pub fn save_model_to_file(model: &GenDt, path: &Path) -> Result<(), CheckpointError> {
    let ckpt = save_model(model);
    let json = serde_json::to_string(&ckpt).map_err(CheckpointError::Json)?;
    let body = format!("{MAGIC} {FORMAT_VERSION}\n{json}");
    write_atomic(path, &body).map_err(CheckpointError::Io)?;
    Ok(())
}

/// Rebuild a model from a checkpoint. The architecture is reconstructed
/// from the stored configuration, then parameter values are restored by
/// name.
pub fn load_model(ckpt: &ModelCheckpoint) -> Result<GenDt, CheckpointError> {
    let mut model = GenDt::new(ckpt.cfg.clone());
    restore(&mut model.generator.store, &ckpt.generator)?;
    restore(&mut model.discriminator.store, &ckpt.discriminator)?;
    Ok(model)
}

/// Parse the file body into a [`ModelCheckpoint`], accepting both the
/// headered format and legacy headerless JSON (files that start with
/// `{`). Anything else is rejected with a descriptive [`Format`] error
/// rather than a JSON parse failure deep inside a foreign file.
///
/// [`Format`]: CheckpointError::Format
pub fn parse_model_checkpoint(text: &str) -> Result<ModelCheckpoint, CheckpointError> {
    let json = if let Some(rest) = text.strip_prefix(MAGIC) {
        let (header, body) = match rest.split_once('\n') {
            Some(split) => split,
            None => {
                return Err(CheckpointError::Format(
                    "header line has no body after it (truncated file?)".to_string(),
                ))
            }
        };
        let version: u32 = header.trim().parse().map_err(|_| {
            CheckpointError::Format(format!(
                "malformed header {:?}: expected `{MAGIC} <version>`",
                header.trim()
            ))
        })?;
        if version > FORMAT_VERSION {
            return Err(CheckpointError::Format(format!(
                "format version {version} is newer than supported {FORMAT_VERSION}"
            )));
        }
        body
    } else if text.trim_start().starts_with('{') {
        // Legacy headerless checkpoint: plain JSON from format v1.
        text
    } else {
        let head: String = text.chars().take(16).collect();
        return Err(CheckpointError::Format(format!(
            "not a GenDT checkpoint: expected `{MAGIC}` header or JSON body, found {head:?}"
        )));
    };
    serde_json::from_str(json).map_err(|e| {
        CheckpointError::Format(format!(
            "checkpoint body is not valid model JSON (truncated file?): {e}"
        ))
    })
}

/// Read a model checkpoint from a file (headered or legacy headerless).
pub fn load_model_from_file(path: &Path) -> Result<GenDt, CheckpointError> {
    let text = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
    let ckpt = parse_model_checkpoint(&text)?;
    load_model(&ckpt)
}

// ---------------------------------------------------------------------
// Training checkpoints: full resume state.
// ---------------------------------------------------------------------

/// On-disk *training* state: everything `train_step` reads, so a run
/// killed at any step resumes with bitwise-identical continuation —
/// parameters, both Adam moment sets, the exact RNG state, and the loss
/// trace (whose length drives the scheduled-sampling alternation).
#[derive(Debug, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Format version.
    pub version: u32,
    /// Steps completed when this snapshot was taken.
    pub step: u64,
    /// Model configuration (architecture must match to restore).
    pub cfg: GenDtCfg,
    /// Generator parameters.
    pub generator: Checkpoint,
    /// Discriminator parameters.
    pub discriminator: Checkpoint,
    /// Generator optimizer (moments + step count).
    pub opt_g: Adam,
    /// Discriminator optimizer (moments + step count).
    pub opt_d: Adam,
    /// Exact trainer RNG state.
    pub rng_state: [u64; 4],
    /// Per-step loss trace; its length gates scheduled sampling.
    pub trace: Vec<StepTrace>,
}

/// Snapshot the full training state of `model` after `step` steps.
pub fn save_train(model: &GenDt, step: u64) -> TrainCheckpoint {
    TrainCheckpoint {
        version: TRAIN_FORMAT_VERSION,
        step,
        cfg: model.cfg().clone(),
        generator: snapshot(&model.generator.store),
        discriminator: snapshot(&model.discriminator.store),
        opt_g: model.opt_g.clone(),
        opt_d: model.opt_d.clone(),
        rng_state: model.rng.state(),
        trace: model.trace.clone(),
    }
}

/// Write a training checkpoint into `dir` as `step_<NNNNNNNN>.ckpt`
/// (atomic: temp + fsync + rename), then atomically repoint the rolling
/// [`LATEST_POINTER`] file at it. Returns the checkpoint path.
pub fn save_train_checkpoint(
    model: &GenDt,
    step: u64,
    dir: &Path,
) -> Result<PathBuf, CheckpointError> {
    let ckpt = save_train(model, step);
    let json = serde_json::to_string(&ckpt).map_err(CheckpointError::Json)?;
    let body = format!("{TRAIN_MAGIC} {TRAIN_FORMAT_VERSION}\n{json}");
    std::fs::create_dir_all(dir).map_err(CheckpointError::Io)?;
    let name = format!("step_{step:08}.ckpt");
    let path = dir.join(&name);
    write_atomic(&path, &body).map_err(CheckpointError::Io)?;
    write_atomic(&dir.join(LATEST_POINTER), &name).map_err(CheckpointError::Io)?;
    Ok(path)
}

/// Parse a training-checkpoint file body (header + JSON).
pub fn parse_train_checkpoint(text: &str) -> Result<TrainCheckpoint, CheckpointError> {
    let rest = text.strip_prefix(TRAIN_MAGIC).ok_or_else(|| {
        let head: String = text.chars().take(16).collect();
        CheckpointError::Format(format!(
            "not a GenDT training checkpoint: expected `{TRAIN_MAGIC}` header, found {head:?}"
        ))
    })?;
    let (header, body) = rest.split_once('\n').ok_or_else(|| {
        CheckpointError::Format("header line has no body after it (truncated file?)".to_string())
    })?;
    let version: u32 = header.trim().parse().map_err(|_| {
        CheckpointError::Format(format!(
            "malformed header {:?}: expected `{TRAIN_MAGIC} <version>`",
            header.trim()
        ))
    })?;
    if version > TRAIN_FORMAT_VERSION {
        return Err(CheckpointError::Format(format!(
            "training-checkpoint version {version} is newer than supported {TRAIN_FORMAT_VERSION}"
        )));
    }
    serde_json::from_str(body).map_err(|e| {
        CheckpointError::Format(format!(
            "training-checkpoint body is not valid JSON (truncated file?): {e}"
        ))
    })
}

/// Rebuild a resumable trainer from a parsed training checkpoint.
pub fn restore_train(ckpt: &TrainCheckpoint) -> Result<GenDt, CheckpointError> {
    let mut model = GenDt::new(ckpt.cfg.clone());
    restore(&mut model.generator.store, &ckpt.generator)?;
    restore(&mut model.discriminator.store, &ckpt.discriminator)?;
    model.opt_g = ckpt.opt_g.clone();
    model.opt_d = ckpt.opt_d.clone();
    model.rng = Rng::from_state(ckpt.rng_state);
    model.trace = ckpt.trace.clone();
    Ok(model)
}

/// Load a training checkpoint file. The `checkpoint.read` fault probe
/// fires before the read so chaos schedules can exercise the fallback.
pub fn load_train_checkpoint(path: &Path) -> Result<(GenDt, u64), CheckpointError> {
    gendt_faults::fail_io("checkpoint.read").map_err(CheckpointError::Io)?;
    let text = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
    let ckpt = parse_train_checkpoint(&text)?;
    let model = restore_train(&ckpt)?;
    Ok((model, ckpt.step))
}

/// Resume from the newest loadable checkpoint in `dir`.
///
/// The [`LATEST_POINTER`] target is tried first; if it is missing, torn,
/// or corrupt, older `step_*.ckpt` files are tried newest-first. The
/// error for an exhausted directory names the last failure, so a
/// corrupted-latest run reports *why* it fell back.
pub fn resume_latest(dir: &Path) -> Result<(GenDt, u64, PathBuf), CheckpointError> {
    let mut candidates: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(CheckpointError::Io)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("step_") && name.ends_with(".ckpt")
        })
        .collect();
    // Step numbers are zero-padded, so lexicographic descending order is
    // newest-first.
    candidates.sort();
    candidates.reverse();
    if let Ok(name) = std::fs::read_to_string(dir.join(LATEST_POINTER)) {
        let target = dir.join(name.trim());
        candidates.retain(|p| *p != target);
        candidates.insert(0, target);
    }
    if candidates.is_empty() {
        return Err(CheckpointError::Format(format!(
            "no training checkpoint found in {}",
            dir.display()
        )));
    }
    let mut last_err: Option<(PathBuf, CheckpointError)> = None;
    for path in candidates {
        match load_train_checkpoint(&path) {
            Ok((model, step)) => {
                if let Some((bad, e)) = last_err {
                    gendt_trace::error!(
                        "resume: skipped unloadable checkpoint {} ({e}); \
                         fell back to {}",
                        bad.display(),
                        path.display()
                    );
                }
                return Ok((model, step, path));
            }
            Err(e) => last_err = Some((path, e)),
        }
    }
    match last_err {
        Some((path, e)) => Err(CheckpointError::Format(format!(
            "no loadable training checkpoint in {}: {} failed with: {e}",
            dir.display(),
            path.display()
        ))),
        None => Err(CheckpointError::Format(format!(
            "no training checkpoint found in {}",
            dir.display()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_series;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::context::{extract, ContextCfg};
    use gendt_data::kpi_types::Kpi;
    use gendt_data::windows::windows as make_windows;

    fn tiny_trained() -> (GenDt, gendt_data::context::RunContext) {
        let mut cfg = GenDtCfg::fast(4, 77);
        cfg.hidden = 8;
        cfg.resgen_hidden = 8;
        cfg.disc_hidden = 4;
        cfg.window.len = 10;
        cfg.window.stride = 10;
        cfg.window.max_cells = 2;
        cfg.steps = 4;
        cfg.batch_size = 4;
        let ds = dataset_a(&BuildCfg::quick(78));
        let run = &ds.runs[0];
        let ctx = extract(
            &ds.world,
            &ds.deployment,
            &run.traj,
            &ContextCfg {
                max_cells: 2,
                ..ContextCfg::default()
            },
        );
        let pool = make_windows(run, &ctx, &Kpi::DATASET_A, &cfg.window);
        let mut model = GenDt::new(cfg);
        model.train(&pool);
        (model, ctx)
    }

    #[test]
    fn roundtrip_preserves_generation() -> Result<(), CheckpointError> {
        let (mut model, ctx) = tiny_trained();
        let before = generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, 5);
        let ckpt = save_model(&model);
        let mut restored = load_model(&ckpt)?;
        let after = generate_series(&mut restored, &ctx, &Kpi::DATASET_A, false, 5);
        assert_eq!(
            before.series, after.series,
            "restored model generates differently"
        );
        Ok(())
    }

    #[test]
    fn file_roundtrip() -> Result<(), CheckpointError> {
        let (model, _) = tiny_trained();
        let dir = std::env::temp_dir().join("gendt-model-ckpt-test");
        std::fs::create_dir_all(&dir).map_err(CheckpointError::Io)?;
        let path = dir.join("model.json");
        save_model_to_file(&model, &path)?;
        let restored = load_model_from_file(&path)?;
        assert_eq!(restored.cfg().hidden, model.cfg().hidden);
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn headered_file_roundtrip_and_legacy_load() -> Result<(), CheckpointError> {
        let (model, _) = tiny_trained();
        let dir = std::env::temp_dir().join("gendt-model-ckpt-header-test");
        std::fs::create_dir_all(&dir).map_err(CheckpointError::Io)?;

        // New files carry the magic header.
        let path = dir.join("headered.json");
        save_model_to_file(&model, &path)?;
        let text = std::fs::read_to_string(&path).map_err(CheckpointError::Io)?;
        assert!(text.starts_with("GENDTCKPT 2\n"), "missing header");
        load_model_from_file(&path)?;

        // A legacy headerless file (plain JSON, format v1) still loads.
        let legacy = dir.join("legacy.json");
        let json = serde_json::to_string(&save_model(&model)).map_err(CheckpointError::Json)?;
        std::fs::write(&legacy, json).map_err(CheckpointError::Io)?;
        load_model_from_file(&legacy)?;

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&legacy).ok();
        Ok(())
    }

    #[test]
    fn load_rejects_foreign_and_truncated_files() {
        // A foreign file is rejected with a Format error naming the magic.
        match parse_model_checkpoint("\u{89}PNG not a checkpoint") {
            Err(CheckpointError::Format(msg)) => {
                assert!(msg.contains("not a GenDT checkpoint"), "{msg}")
            }
            other => panic!("foreign file accepted: {other:?}"),
        }

        // A truncated headered file gives a descriptive body error.
        match parse_model_checkpoint("GENDTCKPT 2\n{\"version\":2,\"cfg\":{") {
            Err(CheckpointError::Format(msg)) => {
                assert!(msg.contains("truncated"), "{msg}")
            }
            other => panic!("truncated file accepted: {other:?}"),
        }

        // A header with no body at all.
        assert!(matches!(
            parse_model_checkpoint("GENDTCKPT 2"),
            Err(CheckpointError::Format(_))
        ));

        // A malformed version field.
        assert!(matches!(
            parse_model_checkpoint("GENDTCKPT banana\n{}"),
            Err(CheckpointError::Format(_))
        ));

        // A future format version is rejected, not misparsed.
        match parse_model_checkpoint("GENDTCKPT 99\n{}") {
            Err(CheckpointError::Format(msg)) => assert!(msg.contains("newer"), "{msg}"),
            other => panic!("future version accepted: {other:?}"),
        }
    }

    fn tiny_pool(cfg: &GenDtCfg) -> Vec<gendt_data::windows::Window> {
        let ds = dataset_a(&BuildCfg::quick(78));
        let run = &ds.runs[0];
        let ctx = extract(
            &ds.world,
            &ds.deployment,
            &run.traj,
            &ContextCfg {
                max_cells: 2,
                ..ContextCfg::default()
            },
        );
        make_windows(run, &ctx, &Kpi::DATASET_A, &cfg.window)
    }

    fn tiny_train_cfg(seed: u64) -> GenDtCfg {
        let mut cfg = GenDtCfg::fast(4, seed);
        cfg.hidden = 8;
        cfg.resgen_hidden = 8;
        cfg.disc_hidden = 4;
        cfg.window.len = 10;
        cfg.window.stride = 10;
        cfg.window.max_cells = 2;
        cfg.batch_size = 4;
        cfg
    }

    fn params_of(model: &GenDt) -> Vec<Vec<f32>> {
        model
            .generator
            .store
            .iter()
            .chain(model.discriminator.store.iter())
            .map(|p| p.value.data.clone())
            .collect()
    }

    #[test]
    fn train_checkpoint_resumes_bitwise() -> Result<(), CheckpointError> {
        let cfg = tiny_train_cfg(55);
        let pool = tiny_pool(&cfg);
        let dir = std::env::temp_dir().join("gendt-train-ckpt-resume-test");
        std::fs::remove_dir_all(&dir).ok();

        // Uninterrupted run: 5 steps straight through.
        let mut straight = GenDt::new(cfg.clone());
        for _ in 0..5 {
            straight.train_step(&pool);
        }

        // Interrupted run: snapshot after 2 steps, resume, finish.
        let mut first = GenDt::new(cfg);
        first.train_step(&pool);
        first.train_step(&pool);
        save_train_checkpoint(&first, 2, &dir)?;
        drop(first);
        let (mut resumed, step, _path) = resume_latest(&dir)?;
        assert_eq!(step, 2);
        for _ in step..5 {
            resumed.train_step(&pool);
        }

        assert_eq!(resumed.trace.len(), straight.trace.len());
        assert_eq!(
            params_of(&resumed),
            params_of(&straight),
            "resumed run diverged from the uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn torn_latest_checkpoint_falls_back_to_previous() -> Result<(), CheckpointError> {
        let cfg = tiny_train_cfg(56);
        let pool = tiny_pool(&cfg);
        let dir = std::env::temp_dir().join("gendt-train-ckpt-torn-test");
        std::fs::remove_dir_all(&dir).ok();

        let mut model = GenDt::new(cfg);
        model.train_step(&pool);
        save_train_checkpoint(&model, 1, &dir)?;
        model.train_step(&pool);
        let newest = save_train_checkpoint(&model, 2, &dir)?;

        // Tear the newest checkpoint mid-body, as a crash between write
        // and rename never could but a buggy copy or disk fault can.
        let text = std::fs::read_to_string(&newest).map_err(CheckpointError::Io)?;
        std::fs::write(&newest, &text[..text.len() / 2]).map_err(CheckpointError::Io)?;

        // Loading the torn file directly fails with a descriptive error.
        match load_train_checkpoint(&newest) {
            Err(CheckpointError::Format(msg)) => {
                assert!(msg.contains("truncated"), "undescriptive error: {msg}")
            }
            Err(other) => panic!("wrong error for torn checkpoint: {other:?}"),
            Ok(_) => panic!("torn checkpoint accepted"),
        }

        // resume_latest falls back to the previous good checkpoint.
        let (_model, step, path) = resume_latest(&dir)?;
        assert_eq!(step, 1, "should fall back to the step-1 checkpoint");
        assert!(path.to_string_lossy().contains("step_00000001"));

        // An empty/unusable directory reports what failed.
        let empty = std::env::temp_dir().join("gendt-train-ckpt-empty-test");
        std::fs::create_dir_all(&empty).map_err(CheckpointError::Io)?;
        match resume_latest(&empty) {
            Err(CheckpointError::Format(msg)) => {
                assert!(msg.contains("no training checkpoint"), "{msg}")
            }
            Err(other) => panic!("wrong error for empty dir: {other:?}"),
            Ok(_) => panic!("empty dir resumed"),
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&empty).ok();
        Ok(())
    }

    #[test]
    fn train_checkpoint_rejects_foreign_and_model_files() {
        match parse_train_checkpoint("GENDTCKPT 2\n{}") {
            Err(CheckpointError::Format(msg)) => {
                assert!(msg.contains("GENDTTRN"), "{msg}")
            }
            other => panic!("model file accepted as training checkpoint: {other:?}"),
        }
        assert!(matches!(
            parse_train_checkpoint("GENDTTRN 99\n{}"),
            Err(CheckpointError::Format(_))
        ));
        assert!(matches!(
            parse_train_checkpoint("GENDTTRN 1"),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn load_rejects_mismatched_architecture() {
        let (model, _) = tiny_trained();
        let mut ckpt = save_model(&model);
        // Corrupt the config: a different hidden size no longer matches
        // the stored parameter shapes.
        ckpt.cfg.hidden = 24;
        assert!(load_model(&ckpt).is_err());
    }
}
