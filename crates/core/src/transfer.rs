//! Region transfer: the paper's §7.1 operational workflow (Fig. 14).
//!
//! A pretrained GenDT is bootstrapped into a *new, previously unseen*
//! region with a small amount of coarse-grained measurement, then refined
//! through the cyclical uncertainty-guided collect→retrain loop until the
//! model uncertainty stops improving ("No further measurement").

use crate::cfg::GenDtCfg;
use crate::generate::model_uncertainty;
use crate::trainer::GenDt;
use gendt_data::context::RunContext;
use gendt_data::windows::Window;
use serde::{Deserialize, Serialize};

/// One iteration of the retraining cycle.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransferStep {
    /// Cycle index (0 = after the coarse bootstrap).
    pub cycle: usize,
    /// Windows in the training pool at this cycle.
    pub pool_size: usize,
    /// Model uncertainty on the target region after retraining.
    pub uncertainty: f64,
    /// Which candidate measurement (index) was collected this cycle;
    /// `None` on the bootstrap cycle and when the loop stopped.
    pub collected: Option<usize>,
}

/// Configuration of the transfer loop.
#[derive(Clone, Debug)]
pub struct TransferCfg {
    /// Training steps per retraining cycle (fine-tuning, not from
    /// scratch — the pretrained weights are kept).
    pub steps_per_cycle: usize,
    /// Maximum collect→retrain cycles.
    pub max_cycles: usize,
    /// Stop when the relative uncertainty improvement over a cycle falls
    /// below this threshold.
    pub rel_improvement_floor: f64,
    /// MC samples for the uncertainty measure.
    pub mc_samples: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for TransferCfg {
    fn default() -> Self {
        TransferCfg {
            steps_per_cycle: 60,
            max_cycles: 5,
            rel_improvement_floor: 0.05,
            mc_samples: 3,
            seed: 0x7247_5FE2,
        }
    }
}

/// Outcome of a transfer: the adapted model plus the cycle trace.
pub struct TransferOutcome {
    /// The adapted model.
    pub model: GenDt,
    /// Per-cycle trace.
    pub steps: Vec<TransferStep>,
}

/// Run the Fig.-14 workflow.
///
/// * `pretrained` — a model trained on the source region (consumed; its
///   weights are the starting point).
/// * `bootstrap` — coarse-grained measurement windows from the target
///   region (e.g. one street per district).
/// * `candidates` — candidate measurement campaigns in the target region:
///   `(windows, representative context)` pairs. Each cycle the most
///   uncertain *uncollected* candidate is measured and added.
/// * `target_ctx` — a context representative of the region, used to track
///   overall model uncertainty and decide when to stop.
pub fn transfer_to_region(
    mut pretrained: GenDt,
    bootstrap: &[Window],
    candidates: &[(Vec<Window>, RunContext)],
    target_ctx: &RunContext,
    cfg: &TransferCfg,
) -> TransferOutcome {
    let mut steps = Vec::new();
    let mut pool: Vec<Window> = bootstrap.to_vec();
    let mut collected = vec![false; candidates.len()];

    // Bootstrap retraining on the coarse measurement.
    let run_cycle = |model: &mut GenDt, pool: &[Window]| {
        if !pool.is_empty() {
            let orig_steps = model.cfg().steps;
            // Fine-tune: run a fixed number of steps on the new pool.
            for _ in 0..cfg.steps_per_cycle.min(orig_steps.max(1) * 4) {
                model.train_step(pool);
            }
        }
    };
    run_cycle(&mut pretrained, &pool);
    let mut last_u =
        model_uncertainty(&mut pretrained, target_ctx, cfg.mc_samples, cfg.seed).model_uncertainty;
    steps.push(TransferStep {
        cycle: 0,
        pool_size: pool.len(),
        uncertainty: last_u,
        collected: None,
    });

    for cycle in 1..=cfg.max_cycles {
        // Score uncollected candidates by model uncertainty; collect the
        // most informative one.
        let mut best: Option<(usize, f64)> = None;
        for (i, (_, ctx)) in candidates.iter().enumerate() {
            if collected[i] {
                continue;
            }
            let u = model_uncertainty(
                &mut pretrained,
                ctx,
                cfg.mc_samples,
                cfg.seed ^ ((cycle as u64) << 16) ^ (i as u64),
            )
            .model_uncertainty;
            if best.map(|(_, bu)| u > bu).unwrap_or(true) {
                best = Some((i, u));
            }
        }
        let Some((pick, _)) = best else { break };
        collected[pick] = true;
        pool.extend(candidates[pick].0.iter().cloned());
        run_cycle(&mut pretrained, &pool);
        let u = model_uncertainty(
            &mut pretrained,
            target_ctx,
            cfg.mc_samples,
            cfg.seed ^ ((cycle as u64) << 24),
        )
        .model_uncertainty;
        steps.push(TransferStep {
            cycle,
            pool_size: pool.len(),
            uncertainty: u,
            collected: Some(pick),
        });
        // Stop when uncertainty stops improving.
        if last_u > 0.0 && (last_u - u) / last_u < cfg.rel_improvement_floor {
            break;
        }
        last_u = u;
    }
    TransferOutcome {
        model: pretrained,
        steps,
    }
}

/// Convenience: pretrain a fresh model on a source pool (the "historical
/// drive test measurement data" of Fig. 14).
pub fn pretrain(cfg: GenDtCfg, source_pool: &[Window]) -> GenDt {
    let mut model = GenDt::new(cfg);
    if !source_pool.is_empty() {
        model.train(source_pool);
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_data::builders::{dataset_a, dataset_b, BuildCfg};
    use gendt_data::context::{extract, ContextCfg};
    use gendt_data::kpi_types::Kpi;
    use gendt_data::windows::windows as make_windows;

    #[test]
    fn transfer_loop_collects_and_tracks_uncertainty() {
        let mut cfg = GenDtCfg::fast(2, 91);
        cfg.hidden = 8;
        cfg.resgen_hidden = 8;
        cfg.disc_hidden = 4;
        cfg.window.len = 10;
        cfg.window.stride = 10;
        cfg.window.max_cells = 2;
        cfg.steps = 4;
        cfg.batch_size = 4;

        // Source region: Dataset A world (RSRP/RSRQ only for channel
        // compatibility with Dataset B).
        let kpis = [Kpi::Rsrp, Kpi::Rsrq];
        let src = dataset_a(&BuildCfg::quick(92));
        let ctx_cfg = ContextCfg {
            max_cells: 2,
            coord_scale_m: src.world.cfg.extent_m,
            ..ContextCfg::default()
        };
        let mut source_pool = Vec::new();
        for run in src.runs.iter().take(2) {
            let ctx = extract(&src.world, &src.deployment, &run.traj, &ctx_cfg);
            source_pool.extend(make_windows(run, &ctx, &kpis, &cfg.window));
        }
        let pretrained = pretrain(cfg, &source_pool);

        // Target region: Dataset B world.
        let tgt = dataset_b(&BuildCfg::quick(93));
        let tgt_ctx_cfg = ContextCfg {
            max_cells: 2,
            coord_scale_m: tgt.world.cfg.extent_m,
            ..ContextCfg::default()
        };
        let mut candidates = Vec::new();
        for run in tgt.runs.iter().take(3) {
            let ctx = extract(&tgt.world, &tgt.deployment, &run.traj, &tgt_ctx_cfg);
            let wins = make_windows(run, &ctx, &kpis, &pretrained.cfg().window);
            candidates.push((wins, ctx));
        }
        let boot_run = &tgt.runs[4];
        let boot_ctx = extract(&tgt.world, &tgt.deployment, &boot_run.traj, &tgt_ctx_cfg);
        let bootstrap = make_windows(boot_run, &boot_ctx, &kpis, &pretrained.cfg().window);

        let tcfg = TransferCfg {
            steps_per_cycle: 3,
            max_cycles: 2,
            rel_improvement_floor: 0.0,
            mc_samples: 2,
            seed: 9,
        };
        let out = transfer_to_region(pretrained, &bootstrap, &candidates, &boot_ctx, &tcfg);
        assert!(!out.steps.is_empty());
        assert_eq!(out.steps[0].cycle, 0);
        assert!(out.steps[0].uncertainty >= 0.0);
        // Cycles after the bootstrap each collected one candidate.
        for (k, s) in out.steps.iter().enumerate().skip(1) {
            assert_eq!(s.cycle, k);
            assert!(s.collected.is_some());
            assert!(s.pool_size >= out.steps[k - 1].pool_size);
        }
    }
}
