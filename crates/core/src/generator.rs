//! The GenDT conditional generator (paper §4.3.1–§4.3.2, Fig. 6–7).
//!
//! Three components, all operating at the window ("batch") level:
//!
//! 1. **GNN-node network** `G^n_θ` — an LSTM shared across the window's
//!    cells, mapping each cell's per-step context features (plus de-noising
//!    input noise `z0`) to a hidden series. With SRNN stochastic layers.
//! 2. **Aggregation network** `G^a_θ` — mean-pools the per-cell hidden
//!    states into the graph-level representation `h_avg` and runs a second
//!    LSTM with a per-channel linear head producing the base KPI output.
//! 3. **ResGen** `G^r_θ` — an autoregressive MLP conditioned on the
//!    environment context, noise `z1`, and the most recent KPI values;
//!    emits a per-step Gaussian `(μ, σ)` whose (reparameterized) sample is
//!    added to the base output.
//!
//! The forward pass processes a mini-batch of `B` windows simultaneously:
//! row = window, column = feature.

use crate::cfg::GenDtCfg;
use gendt_data::context::CELL_FEATS;
use gendt_data::windows::Window;
use gendt_geo::landuse::ENV_ATTRS;
use gendt_nn::{dropout, Graph, Linear, Lstm, LstmNodeState, Matrix, Mlp, NodeId, ParamStore, Rng};

/// Carry-over state for long-series generation: the aggregation LSTM's
/// final state and the last generated (normalized) KPI values, both fed
/// into the next window so temporal correlation crosses window borders.
#[derive(Clone, Debug)]
pub struct CarryState {
    /// Aggregation-LSTM hidden state (`B x H`).
    pub agg_h: Matrix,
    /// Aggregation-LSTM memory (`B x H`).
    pub agg_c: Matrix,
    /// Last `ar_context` normalized KPI values per channel
    /// (`[n_ch][ar_context]`, per batch row `[B]` flattened as B x (n_ch*m)).
    pub ar_tail: Matrix,
}

impl CarryState {
    /// Zero state for a batch of `b` windows.
    pub fn zeros(cfg: &GenDtCfg, b: usize) -> Self {
        CarryState {
            agg_h: Matrix::zeros(b, cfg.hidden),
            agg_c: Matrix::zeros(b, cfg.hidden),
            ar_tail: Matrix::zeros(b, cfg.n_ch * cfg.window.ar_context),
        }
    }
}

/// The generator's trainable components.
pub struct Generator {
    /// Model configuration.
    pub cfg: GenDtCfg,
    /// Parameter store holding every generator weight.
    pub store: ParamStore,
    node_lstm: Lstm,
    agg_lstm: Lstm,
    head: Linear,
    resgen: Mlp,
    res_mu: Linear,
    res_sigma: Linear,
}

/// Everything the forward pass exposes for loss computation and analysis.
pub struct ForwardOut {
    /// Generated normalized KPI values per step (`[L]` of `B x n_ch`).
    pub outputs: Vec<NodeId>,
    /// Graph-level representation per step (`[L]` of `B x H`), the
    /// discriminator's conditioning input.
    pub h_avg: Vec<NodeId>,
    /// ResGen Gaussian means per step (empty when ResGen is ablated).
    pub res_mu: Vec<NodeId>,
    /// ResGen Gaussian standard deviations per step.
    pub res_sigma: Vec<NodeId>,
    /// Final carry-over state values (constants extracted post-forward).
    pub carry: CarryState,
}

/// How ResGen's autoregressive input is fed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArMode {
    /// Teacher forcing: use the real previous KPI values (training).
    TeacherForced,
    /// Free running: use the model's own previous outputs (generation).
    FreeRunning,
}

/// Cell-slot count of a packed batch: the widest window, at least one
/// slot so an empty-cell window still drives the node LSTM.
pub(crate) fn batch_max_cells(windows: &[&Window]) -> usize {
    windows
        .iter()
        .map(|w| w.cells.len())
        .max()
        .unwrap_or(1)
        .max(1)
}

impl Generator {
    /// Initialize a generator with Xavier weights.
    pub fn new(cfg: GenDtCfg, rng: &mut Rng) -> Self {
        let mut store = ParamStore::new();
        let node_in = CELL_FEATS + cfg.n_z0;
        let node_lstm = Lstm::new(&mut store, "gnn_node", node_in, cfg.hidden, rng);
        let agg_lstm = Lstm::new(&mut store, "agg", cfg.hidden, cfg.hidden, rng);
        let head = Linear::new(&mut store, "head", cfg.hidden, cfg.n_ch, rng);
        let res_in = ENV_ATTRS + cfg.n_z1 + cfg.n_ch * cfg.window.ar_context;
        let resgen = Mlp::new(
            &mut store,
            "resgen",
            &[
                res_in,
                cfg.resgen_hidden,
                cfg.resgen_hidden,
                cfg.resgen_hidden,
            ],
            rng,
        );
        let res_mu = Linear::new(&mut store, "res_mu", cfg.resgen_hidden, cfg.n_ch, rng);
        let res_sigma = Linear::new(&mut store, "res_sigma", cfg.resgen_hidden, cfg.n_ch, rng);
        // Start the Gaussian head small: softplus(-3) ≈ 0.05 in normalized
        // units (~2 dB of RSRP). The default softplus(0) ≈ 0.69 would boot
        // the generator with ±33 dB residual noise, which the MSE term
        // takes thousands of steps to anneal away and which wrecks the
        // generated distribution in the meantime.
        for v in store.value_mut(res_sigma.b).data.iter_mut() {
            *v = -3.0;
        }
        Generator {
            cfg,
            store,
            node_lstm,
            agg_lstm,
            head,
            resgen,
            res_mu,
            res_sigma,
        }
    }

    /// Forward a batch of windows.
    ///
    /// * `windows` — the batch (all with the same length `L`).
    /// * `carry` — aggregation-LSTM state and AR tail from the previous
    ///   window (zeros at the start of a series).
    /// * `ar_mode` — teacher forcing (training) or free running
    ///   (generation).
    /// * `mc_dropout` — keep dropout active (training, or MC-uncertainty
    ///   sampling at generation time).
    ///
    /// The GNN-node network runs *cell-packed*: all `B x max_cells` cell
    /// slots share the batch dimension of a single LSTM pass per
    /// timestep, so the autograd graph holds `L` node-LSTM steps instead
    /// of `max_cells * L`. Noise is pre-drawn in the per-cell order, so
    /// outputs match [`Generator::forward_percell`] under the same seed.
    pub fn forward(
        &self,
        g: &mut Graph,
        windows: &[&Window],
        carry: &CarryState,
        ar_mode: ArMode,
        mc_dropout: bool,
        rng: &mut Rng,
    ) -> ForwardOut {
        let l = self.batch_len(windows);
        let h_avg_steps = self.node_h_avg_packed(g, windows, l, rng);
        self.finish_forward(g, windows, carry, ar_mode, mc_dropout, rng, l, h_avg_steps)
    }

    /// [`Generator::forward`] with the original one-LSTM-pass-per-cell
    /// GNN-node loop. Retained as the reference implementation for the
    /// packed path's equivalence tests and benchmarks.
    pub fn forward_percell(
        &self,
        g: &mut Graph,
        windows: &[&Window],
        carry: &CarryState,
        ar_mode: ArMode,
        mc_dropout: bool,
        rng: &mut Rng,
    ) -> ForwardOut {
        let l = self.batch_len(windows);
        let h_avg_steps = self.node_h_avg_percell(g, windows, l, rng);
        self.finish_forward(g, windows, carry, ar_mode, mc_dropout, rng, l, h_avg_steps)
    }

    fn batch_len(&self, windows: &[&Window]) -> usize {
        assert!(!windows.is_empty(), "empty window batch");
        let l = windows[0]
            .targets
            .first()
            .map(|t| t.len())
            .unwrap_or(self.cfg.window.len);
        assert!(
            windows.iter().all(|w| w.env.len() == l),
            "window length mismatch"
        );
        l
    }

    /// GNN-node network, cell-packed: one LSTM pass over `B * max_cells`
    /// rows per timestep, with slot `(bi, j)` at row `bi * max_cells + j`.
    ///
    /// All noise (z0 and SRNN uniforms) is pre-drawn in the legacy
    /// per-cell order — j outer, t inner; z0 then SRNN h then SRNN c —
    /// so the RNG stream, and therefore every value produced here and
    /// downstream, is identical to [`Generator::node_h_avg_percell`].
    /// The per-step group sum is j-ascending, matching the per-cell add
    /// chain bit for bit.
    fn node_h_avg_packed(
        &self,
        g: &mut Graph,
        windows: &[&Window],
        l: usize,
        rng: &mut Rng,
    ) -> Vec<NodeId> {
        let b = windows.len();
        let h = self.cfg.hidden;
        let n_z0 = self.cfg.n_z0;
        let in_dim = CELL_FEATS + n_z0;
        let max_cells = batch_max_cells(windows);
        let p = b * max_cells;

        let draw_h = self.cfg.ablation.srnn && self.cfg.stochastic.a_h != 0.0;
        let draw_c = self.cfg.ablation.srnn && self.cfg.stochastic.a_c != 0.0;
        let noise_rows = |draw: bool| if draw { p } else { 0 };
        let mut xs: Vec<Matrix> = (0..l).map(|_| Matrix::zeros(p, in_dim)).collect();
        let mut u_h: Vec<Matrix> = (0..l)
            .map(|_| Matrix::zeros(noise_rows(draw_h), h))
            .collect();
        let mut u_c: Vec<Matrix> = (0..l)
            .map(|_| Matrix::zeros(noise_rows(draw_c), h))
            .collect();
        for j in 0..max_cells {
            for t in 0..l {
                for (bi, w) in windows.iter().enumerate() {
                    let feats = if j < w.cells.len() {
                        w.cells[j][t]
                    } else {
                        [0.0, 0.0, 0.0, 0.0, 1.0]
                    };
                    let row = (bi * max_cells + j) * in_dim;
                    xs[t].data[row..row + CELL_FEATS].copy_from_slice(&feats);
                    for k in 0..n_z0 {
                        xs[t].data[row + CELL_FEATS + k] = (rng.normal() * 0.1) as f32;
                    }
                }
                if draw_h {
                    for bi in 0..b {
                        let row = (bi * max_cells + j) * h;
                        for v in u_h[t].data[row..row + h].iter_mut() {
                            *v = rng.uniform01() as f32;
                        }
                    }
                }
                if draw_c {
                    for bi in 0..b {
                        let row = (bi * max_cells + j) * h;
                        for v in u_c[t].data[row..row + h].iter_mut() {
                            *v = rng.uniform01() as f32;
                        }
                    }
                }
            }
        }

        self.node_packed_graph(g, windows, max_cells, xs, &u_h, &u_c)
    }

    /// Packed node-LSTM graph from pre-drawn inputs and noise: shared by
    /// [`Generator::node_h_avg_packed`] (training draw order) and
    /// [`Generator::forward_gen_batch`] (per-request draw order).
    fn node_packed_graph(
        &self,
        g: &mut Graph,
        windows: &[&Window],
        max_cells: usize,
        xs: Vec<Matrix>,
        u_h: &[Matrix],
        u_c: &[Matrix],
    ) -> Vec<NodeId> {
        let b = windows.len();
        let h = self.cfg.hidden;
        let p = b * max_cells;

        // Average only over real cells via a per-row 1/count...
        let mut inv_count = Matrix::zeros(b, 1);
        for (bi, w) in windows.iter().enumerate() {
            inv_count.data[bi] = 1.0 / w.cells.len().max(1) as f32;
        }
        // ...and mask padded slots (sentinel features) out of the sum.
        let mut mask = Matrix::zeros(p, 1);
        for (bi, w) in windows.iter().enumerate() {
            for j in 0..w.cells.len().min(max_cells) {
                mask.data[bi * max_cells + j] = 1.0;
            }
        }

        let mut st = LstmNodeState {
            h: g.input(Matrix::zeros(p, h)),
            c: g.input(Matrix::zeros(p, h)),
        };
        let mut h_avg_steps: Vec<NodeId> = Vec::with_capacity(xs.len());
        for (t, x) in xs.into_iter().enumerate() {
            let xn = g.input(x);
            st = self.node_lstm.step(g, &self.store, xn, st);
            if self.cfg.ablation.srnn {
                st = self.node_lstm.stochastic_with_noise(
                    g,
                    self.cfg.stochastic,
                    st,
                    &u_h[t],
                    &u_c[t],
                );
            }
            h_avg_steps.push(g.masked_group_mean(st.h, &mask, &inv_count, max_cells));
        }
        h_avg_steps
    }

    /// Free-running generation forward for a batch of *independent
    /// requests*, each with its own RNG stream.
    ///
    /// Row `r` of every per-step output is bitwise-identical to what a
    /// single-request [`Generator::forward`] (`ArMode::FreeRunning`,
    /// `mc_dropout = false`, batch of one) produces for `windows[r]`
    /// with `rngs[r]` in the same starting state. Two properties make
    /// this hold: every compute op in the pass is row-local with a fixed
    /// accumulation order independent of the total row count (blocked
    /// GEMM, elementwise ops, per-row `noisy_renorm`, j-ascending
    /// `masked_group_mean` whose padded slots contribute exact zeros),
    /// and all noise is pre-drawn here per request in exactly the order
    /// a single-request forward consumes it (node z0/SRNN uniforms with
    /// j outer and t inner, then per-step aggregation uniforms, then
    /// per-step ResGen z1 and eps). Padded cell slots — a request with
    /// fewer cells than the batch maximum — get sentinel features and
    /// neutral noise that consume **nothing** from the request's RNG,
    /// since those slots do not exist in its single-request run.
    ///
    /// `carry` holds one row per request; the returned carry splits the
    /// same way. This is the serving path's batched entry point.
    pub fn forward_gen_batch(
        &self,
        g: &mut Graph,
        windows: &[&Window],
        carry: &CarryState,
        rngs: &mut [Rng],
    ) -> ForwardOut {
        let b = windows.len();
        assert_eq!(b, rngs.len(), "one RNG stream per request");
        let l = self.batch_len(windows);
        let h = self.cfg.hidden;
        let n_z0 = self.cfg.n_z0;
        let n_z1 = self.cfg.n_z1;
        let n_ch = self.cfg.n_ch;
        let m = self.cfg.window.ar_context;
        let in_dim = CELL_FEATS + n_z0;
        let max_cells = batch_max_cells(windows);
        let p = b * max_cells;
        let draw_h = self.cfg.ablation.srnn && self.cfg.stochastic.a_h != 0.0;
        let draw_c = self.cfg.ablation.srnn && self.cfg.stochastic.a_c != 0.0;
        let resgen_on = self.cfg.ablation.resgen;

        // ---- Pre-draw all noise, per request, in single-request order.
        let noise_rows = |draw: bool| if draw { p } else { 0 };
        let mut xs: Vec<Matrix> = (0..l).map(|_| Matrix::zeros(p, in_dim)).collect();
        let mut u_h: Vec<Matrix> = (0..l)
            .map(|_| Matrix::zeros(noise_rows(draw_h), h))
            .collect();
        let mut u_c: Vec<Matrix> = (0..l)
            .map(|_| Matrix::zeros(noise_rows(draw_c), h))
            .collect();
        let agg_rows = |draw: bool| if draw { b } else { 0 };
        let mut agg_u_h: Vec<Matrix> = (0..l).map(|_| Matrix::zeros(agg_rows(draw_h), h)).collect();
        let mut agg_u_c: Vec<Matrix> = (0..l).map(|_| Matrix::zeros(agg_rows(draw_c), h)).collect();
        let res_rows = |on: bool| if on { b } else { 0 };
        let mut z1s: Vec<Matrix> = (0..l)
            .map(|_| Matrix::zeros(res_rows(resgen_on), n_z1))
            .collect();
        let mut epss: Vec<Matrix> = (0..l)
            .map(|_| Matrix::zeros(res_rows(resgen_on), n_ch))
            .collect();

        for (bi, w) in windows.iter().enumerate() {
            let own_cells = w.cells.len().max(1);
            let rng = &mut rngs[bi];
            // Node phase: z0 and SRNN uniforms for the request's own
            // cell slots only, j outer and t inner — the order a
            // single-request forward draws them.
            for j in 0..own_cells {
                for t in 0..l {
                    let feats = if j < w.cells.len() {
                        w.cells[j][t]
                    } else {
                        [0.0, 0.0, 0.0, 0.0, 1.0]
                    };
                    let row = (bi * max_cells + j) * in_dim;
                    xs[t].data[row..row + CELL_FEATS].copy_from_slice(&feats);
                    for k in 0..n_z0 {
                        xs[t].data[row + CELL_FEATS + k] = (rng.normal() * 0.1) as f32;
                    }
                    if draw_h {
                        let rh = (bi * max_cells + j) * h;
                        for v in u_h[t].data[rh..rh + h].iter_mut() {
                            *v = rng.uniform01() as f32;
                        }
                    }
                    if draw_c {
                        let rc = (bi * max_cells + j) * h;
                        for v in u_c[t].data[rc..rc + h].iter_mut() {
                            *v = rng.uniform01() as f32;
                        }
                    }
                }
            }
            // Padded slots: sentinel features, zero z0, neutral uniforms.
            // Their hidden rows are masked out of the group mean and they
            // draw nothing from the request's RNG.
            for j in own_cells..max_cells {
                for t in 0..l {
                    let row = (bi * max_cells + j) * in_dim;
                    xs[t].data[row + CELL_FEATS - 1] = 1.0;
                    if draw_h {
                        let rh = (bi * max_cells + j) * h;
                        for v in u_h[t].data[rh..rh + h].iter_mut() {
                            *v = 0.5;
                        }
                    }
                    if draw_c {
                        let rc = (bi * max_cells + j) * h;
                        for v in u_c[t].data[rc..rc + h].iter_mut() {
                            *v = 0.5;
                        }
                    }
                }
            }
            // Aggregation phase: per-step SRNN uniforms, h then c.
            for t in 0..l {
                if draw_h {
                    let r = bi * h;
                    for v in agg_u_h[t].data[r..r + h].iter_mut() {
                        *v = rng.uniform01() as f32;
                    }
                }
                if draw_c {
                    let r = bi * h;
                    for v in agg_u_c[t].data[r..r + h].iter_mut() {
                        *v = rng.uniform01() as f32;
                    }
                }
            }
            // ResGen phase: per-step z1 then eps.
            if resgen_on {
                for t in 0..l {
                    let rz = bi * n_z1;
                    for v in z1s[t].data[rz..rz + n_z1].iter_mut() {
                        *v = rng.normal() as f32;
                    }
                    let re = bi * n_ch;
                    for v in epss[t].data[re..re + n_ch].iter_mut() {
                        *v = rng.normal() as f32;
                    }
                }
            }
        }

        // ---- Node + aggregation networks -----------------------------
        let h_avg_steps = self.node_packed_graph(g, windows, max_cells, xs, &u_h, &u_c);
        let mut agg_state = LstmNodeState {
            h: g.input(carry.agg_h.clone()),
            c: g.input(carry.agg_c.clone()),
        };
        let mut base_steps: Vec<NodeId> = Vec::with_capacity(l);
        for (t, &havg) in h_avg_steps.iter().enumerate() {
            agg_state = self.agg_lstm.step(g, &self.store, havg, agg_state);
            if self.cfg.ablation.srnn {
                agg_state = self.agg_lstm.stochastic_with_noise(
                    g,
                    self.cfg.stochastic,
                    agg_state,
                    &agg_u_h[t],
                    &agg_u_c[t],
                );
            }
            base_steps.push(self.head.forward(g, &self.store, agg_state.h));
        }

        // ---- ResGen, free running ------------------------------------
        let mut outputs: Vec<NodeId> = Vec::with_capacity(l);
        let mut res_mu_steps: Vec<NodeId> = Vec::new();
        let mut res_sigma_steps: Vec<NodeId> = Vec::new();
        let mut ar_prev: NodeId = g.input(carry.ar_tail.clone());
        for (t, &base) in base_steps.iter().enumerate() {
            let out_t = if resgen_on {
                let mut env = Matrix::zeros(b, ENV_ATTRS);
                for (bi, w) in windows.iter().enumerate() {
                    env.data[bi * ENV_ATTRS..(bi + 1) * ENV_ATTRS].copy_from_slice(&w.env[t]);
                }
                let env_node = g.input(env);
                let z1_node = g.input(z1s[t].clone());
                let cat1 = g.concat_cols(env_node, z1_node);
                let res_in = g.concat_cols(cat1, ar_prev);
                let hidden = self.resgen.forward(g, &self.store, res_in);
                let mu = self.res_mu.forward(g, &self.store, hidden);
                let sigma_raw = self.res_sigma.forward(g, &self.store, hidden);
                let sigma_sp = g.softplus(sigma_raw);
                let sigma = g.offset(sigma_sp, 1e-3);
                let eps_node = g.input(epss[t].clone());
                let noise = g.mul(sigma, eps_node);
                let residual = g.add(mu, noise);
                res_mu_steps.push(mu);
                res_sigma_steps.push(sigma);
                g.add(base, residual)
            } else {
                base
            };
            outputs.push(out_t);
            if resgen_on {
                let out_vals = g.value(out_t).clone();
                let prev_vals = g.value(ar_prev).clone();
                let mut next = Matrix::zeros(b, n_ch * m);
                for bi in 0..b {
                    for ch in 0..n_ch {
                        for k in 0..m - 1 {
                            next.data[bi * n_ch * m + ch * m + k] =
                                prev_vals.data[bi * n_ch * m + ch * m + k + 1];
                        }
                        next.data[bi * n_ch * m + ch * m + m - 1] = out_vals.data[bi * n_ch + ch];
                    }
                }
                ar_prev = g.input(next);
            }
        }

        let carry_out = CarryState {
            agg_h: g.value(agg_state.h).clone(),
            agg_c: g.value(agg_state.c).clone(),
            ar_tail: g.value(ar_prev).clone(),
        };
        ForwardOut {
            outputs,
            h_avg: h_avg_steps,
            res_mu: res_mu_steps,
            res_sigma: res_sigma_steps,
            carry: carry_out,
        }
    }

    /// GNN-node network, reference per-cell loop: one LSTM pass per cell
    /// slot, padded windows carry sentinel features and are masked out.
    fn node_h_avg_percell(
        &self,
        g: &mut Graph,
        windows: &[&Window],
        l: usize,
        rng: &mut Rng,
    ) -> Vec<NodeId> {
        let b = windows.len();
        let h = self.cfg.hidden;
        let max_cells = windows
            .iter()
            .map(|w| w.cells.len())
            .max()
            .unwrap_or(1)
            .max(1);
        let mut inv_count = Matrix::zeros(b, 1);
        for (bi, w) in windows.iter().enumerate() {
            inv_count.data[bi] = 1.0 / w.cells.len().max(1) as f32;
        }
        let inv_count_node = g.input(inv_count);

        // Per-step mean hidden representation h_avg (sum masked, scaled).
        let mut h_avg_steps: Vec<NodeId> = Vec::with_capacity(l);
        // Build per-cell LSTM passes; accumulate sums per step.
        let mut step_sums: Vec<Option<NodeId>> = vec![None; l];
        for j in 0..max_cells {
            // Mask: 1 where window has a j-th cell.
            let mut mask = Matrix::zeros(b, 1);
            for (bi, w) in windows.iter().enumerate() {
                mask.data[bi] = if j < w.cells.len() { 1.0 } else { 0.0 };
            }
            let mask_node = g.input(mask);
            let mut st = LstmNodeState {
                h: g.input(Matrix::zeros(b, h)),
                c: g.input(Matrix::zeros(b, h)),
            };
            for (t, step_sum) in step_sums.iter_mut().enumerate() {
                // Features of window bi's j-th cell at step t (+ noise z0).
                let mut x = Matrix::zeros(b, CELL_FEATS + self.cfg.n_z0);
                for (bi, w) in windows.iter().enumerate() {
                    let feats = if j < w.cells.len() {
                        w.cells[j][t]
                    } else {
                        [0.0, 0.0, 0.0, 0.0, 1.0]
                    };
                    for (k, &f) in feats.iter().enumerate() {
                        x.data[bi * (CELL_FEATS + self.cfg.n_z0) + k] = f;
                    }
                    for k in 0..self.cfg.n_z0 {
                        x.data[bi * (CELL_FEATS + self.cfg.n_z0) + CELL_FEATS + k] =
                            (rng.normal() * 0.1) as f32;
                    }
                }
                let xn = g.input(x);
                st = self.node_lstm.step(g, &self.store, xn, st);
                if self.cfg.ablation.srnn {
                    st = self.node_lstm.stochastic(g, self.cfg.stochastic, st, rng);
                }
                let masked = g.mul_col(st.h, mask_node);
                *step_sum = Some(match *step_sum {
                    Some(acc) => g.add(acc, masked),
                    None => masked,
                });
            }
        }
        for sum in step_sums {
            let s = sum.expect("at least one cell slot");
            h_avg_steps.push(g.mul_col(s, inv_count_node));
        }
        h_avg_steps
    }

    /// Aggregation network + ResGen + carry extraction, shared by both
    /// node-network paths.
    #[allow(clippy::too_many_arguments)]
    fn finish_forward(
        &self,
        g: &mut Graph,
        windows: &[&Window],
        carry: &CarryState,
        ar_mode: ArMode,
        mc_dropout: bool,
        rng: &mut Rng,
        l: usize,
        h_avg_steps: Vec<NodeId>,
    ) -> ForwardOut {
        let b = windows.len();
        let n_ch = self.cfg.n_ch;
        let m = self.cfg.window.ar_context;

        // ---- Aggregation network ------------------------------------
        let mut agg_state = LstmNodeState {
            h: g.input(carry.agg_h.clone()),
            c: g.input(carry.agg_c.clone()),
        };
        let mut base_steps: Vec<NodeId> = Vec::with_capacity(l);
        for &havg in h_avg_steps.iter() {
            agg_state = self.agg_lstm.step(g, &self.store, havg, agg_state);
            if self.cfg.ablation.srnn {
                agg_state = self
                    .agg_lstm
                    .stochastic(g, self.cfg.stochastic, agg_state, rng);
            }
            base_steps.push(self.head.forward(g, &self.store, agg_state.h));
        }

        // ---- ResGen -------------------------------------------------
        let mut outputs: Vec<NodeId> = Vec::with_capacity(l);
        let mut res_mu_steps: Vec<NodeId> = Vec::new();
        let mut res_sigma_steps: Vec<NodeId> = Vec::new();
        let ar_tail_final: Matrix;

        if self.cfg.ablation.resgen && matches!(ar_mode, ArMode::TeacherForced) {
            // Teacher forcing fixes every ResGen input up front (targets
            // and AR seed are known), so all `l` steps run as one MLP pass
            // over an `l*b`-row batch — row `t*b + bi` is step `t` of
            // window `bi`. Row-wise ops make this bitwise-equal to the
            // per-step loop up to the RNG draw order.
            let n_z1 = self.cfg.n_z1;
            let in_dim = ENV_ATTRS + n_z1 + n_ch * m;
            let mut res_in = Matrix::zeros(l * b, in_dim);
            for t in 0..l {
                for (bi, w) in windows.iter().enumerate() {
                    let row = (t * b + bi) * in_dim;
                    res_in.data[row..row + ENV_ATTRS].copy_from_slice(&w.env[t]);
                    for k in 0..n_z1 {
                        res_in.data[row + ENV_ATTRS + k] = rng.normal() as f32;
                    }
                    for ch in 0..n_ch {
                        for k in 0..m {
                            let idx = t as i64 - m as i64 + k as i64;
                            let v = if idx >= 0 {
                                w.targets[ch][idx as usize]
                            } else {
                                let seed_idx = (m as i64 + idx) as usize;
                                w.ar_seed[ch].get(seed_idx).copied().unwrap_or(0.0)
                            };
                            res_in.data[row + ENV_ATTRS + n_z1 + ch * m + k] = v;
                        }
                    }
                }
            }
            let res_in_node = g.input(res_in);
            let mut hidden = self.resgen.forward(g, &self.store, res_in_node);
            if mc_dropout && self.cfg.dropout > 0.0 {
                hidden = dropout(g, hidden, self.cfg.dropout, rng);
            }
            let mu_all = self.res_mu.forward(g, &self.store, hidden);
            let sigma_raw = self.res_sigma.forward(g, &self.store, hidden);
            let sigma_sp = g.softplus(sigma_raw);
            let sigma_all = g.offset(sigma_sp, 1e-3);
            let mut eps = Matrix::zeros(l * b, n_ch);
            for v in eps.data.iter_mut() {
                *v = rng.normal() as f32;
            }
            let eps_node = g.input(eps);
            let noise = g.mul(sigma_all, eps_node);
            let residual_all = g.add(mu_all, noise);
            for (t, &base) in base_steps.iter().enumerate() {
                let mu = g.slice_rows(mu_all, t * b, (t + 1) * b);
                let sigma = g.slice_rows(sigma_all, t * b, (t + 1) * b);
                let residual = g.slice_rows(residual_all, t * b, (t + 1) * b);
                res_mu_steps.push(mu);
                res_sigma_steps.push(sigma);
                outputs.push(g.add(base, residual));
            }
            // Final AR ring buffer: the last `m` generated outputs per
            // channel, reaching into the incoming tail when `l < m` —
            // exactly what the per-step shift-and-append leaves behind.
            let mut tail = Matrix::zeros(b, n_ch * m);
            for bi in 0..b {
                for ch in 0..n_ch {
                    for k in 0..m {
                        tail.data[bi * n_ch * m + ch * m + k] = if l + k >= m {
                            g.value(outputs[l + k - m]).data[bi * n_ch + ch]
                        } else {
                            carry.ar_tail.data[bi * n_ch * m + ch * m + k + l]
                        };
                    }
                }
            }
            ar_tail_final = tail;

            let carry_out = CarryState {
                agg_h: g.value(agg_state.h).clone(),
                agg_c: g.value(agg_state.c).clone(),
                ar_tail: ar_tail_final,
            };
            return ForwardOut {
                outputs,
                h_avg: h_avg_steps,
                res_mu: res_mu_steps,
                res_sigma: res_sigma_steps,
                carry: carry_out,
            };
        }

        // AR ring buffer as graph nodes: previous normalized KPI values,
        // `B x (n_ch * m)`, newest last.
        let mut ar_prev: NodeId = g.input(carry.ar_tail.clone());
        // Teacher-forced values come from the windows' own AR seed plus
        // targets; at t the previous values are targets[t-m..t].
        for (t, &base) in base_steps.iter().enumerate() {
            let out_t = if self.cfg.ablation.resgen {
                // Environment context for this step.
                let mut env = Matrix::zeros(b, ENV_ATTRS);
                for (bi, w) in windows.iter().enumerate() {
                    env.data[bi * ENV_ATTRS..(bi + 1) * ENV_ATTRS].copy_from_slice(&w.env[t]);
                }
                let env_node = g.input(env);
                let mut z1 = Matrix::zeros(b, self.cfg.n_z1);
                for v in z1.data.iter_mut() {
                    *v = rng.normal() as f32;
                }
                let z1_node = g.input(z1);
                let ar_input = match ar_mode {
                    ArMode::TeacherForced => {
                        let mut prev = Matrix::zeros(b, n_ch * m);
                        for (bi, w) in windows.iter().enumerate() {
                            for ch in 0..n_ch {
                                for k in 0..m {
                                    let idx = t as i64 - m as i64 + k as i64;
                                    let v = if idx >= 0 {
                                        w.targets[ch][idx as usize]
                                    } else {
                                        // Reach into the window's AR seed.
                                        let seed_idx = (m as i64 + idx) as usize;
                                        w.ar_seed[ch].get(seed_idx).copied().unwrap_or(0.0)
                                    };
                                    prev.data[bi * n_ch * m + ch * m + k] = v;
                                }
                            }
                        }
                        g.input(prev)
                    }
                    ArMode::FreeRunning => ar_prev,
                };
                let cat1 = g.concat_cols(env_node, z1_node);
                let res_in = g.concat_cols(cat1, ar_input);
                let mut hidden = self.resgen.forward(g, &self.store, res_in);
                if mc_dropout && self.cfg.dropout > 0.0 {
                    hidden = dropout(g, hidden, self.cfg.dropout, rng);
                }
                let mu = self.res_mu.forward(g, &self.store, hidden);
                let sigma_raw = self.res_sigma.forward(g, &self.store, hidden);
                let sigma_sp = g.softplus(sigma_raw);
                let sigma = g.offset(sigma_sp, 1e-3);
                // Reparameterized sample: residual = mu + sigma * eps.
                let mut eps = Matrix::zeros(b, n_ch);
                for v in eps.data.iter_mut() {
                    *v = rng.normal() as f32;
                }
                let eps_node = g.input(eps);
                let noise = g.mul(sigma, eps_node);
                let residual = g.add(mu, noise);
                res_mu_steps.push(mu);
                res_sigma_steps.push(sigma);
                g.add(base, residual)
            } else {
                base
            };
            outputs.push(out_t);

            // Update the free-running AR buffer: shift left by n_ch... the
            // buffer layout is [ch-major m values]; rebuild from constants
            // for simplicity (values only — gradient need not flow through
            // the AR path across steps).
            if self.cfg.ablation.resgen {
                let out_vals = g.value(out_t).clone();
                let prev_vals = g.value(ar_prev).clone();
                let mut next = Matrix::zeros(b, n_ch * m);
                for bi in 0..b {
                    for ch in 0..n_ch {
                        for k in 0..m - 1 {
                            next.data[bi * n_ch * m + ch * m + k] =
                                prev_vals.data[bi * n_ch * m + ch * m + k + 1];
                        }
                        next.data[bi * n_ch * m + ch * m + m - 1] = out_vals.data[bi * n_ch + ch];
                    }
                }
                ar_prev = g.input(next);
            }
        }

        // ---- Carry-over ----------------------------------------------
        ar_tail_final = g.value(ar_prev).clone();
        let carry_out = CarryState {
            agg_h: g.value(agg_state.h).clone(),
            agg_c: g.value(agg_state.c).clone(),
            ar_tail: ar_tail_final,
        };

        ForwardOut {
            outputs,
            h_avg: h_avg_steps,
            res_mu: res_mu_steps,
            res_sigma: res_sigma_steps,
            carry: carry_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::context::{extract, ContextCfg};
    use gendt_data::kpi_types::Kpi;
    use gendt_data::windows::windows as make_windows;

    fn tiny_cfg() -> GenDtCfg {
        let mut c = GenDtCfg::fast(4, 3);
        c.hidden = 8;
        c.resgen_hidden = 8;
        c.window.len = 10;
        c.window.stride = 10;
        c.window.max_cells = 3;
        c
    }

    fn sample_windows(cfg: &GenDtCfg) -> Vec<Window> {
        let ds = dataset_a(&BuildCfg::quick(41));
        let run = &ds.runs[0];
        let ctx = extract(
            &ds.world,
            &ds.deployment,
            &run.traj,
            &ContextCfg {
                max_cells: cfg.window.max_cells,
                ..ContextCfg::default()
            },
        );
        make_windows(run, &ctx, &Kpi::DATASET_A, &cfg.window)
    }

    #[test]
    fn forward_shapes_and_finiteness() {
        let cfg = tiny_cfg();
        let mut rng = Rng::seed_from(1);
        let gen = Generator::new(cfg.clone(), &mut rng);
        let wins = sample_windows(&cfg);
        let batch: Vec<&Window> = wins.iter().take(3).collect();
        let carry = CarryState::zeros(&cfg, batch.len());
        let mut g = Graph::new();
        let out = gen.forward(
            &mut g,
            &batch,
            &carry,
            ArMode::TeacherForced,
            true,
            &mut rng,
        );
        assert_eq!(out.outputs.len(), 10);
        assert_eq!(out.h_avg.len(), 10);
        assert_eq!(out.res_mu.len(), 10);
        for &o in &out.outputs {
            let v = g.value(o);
            assert_eq!(v.shape(), (3, 4));
            assert!(!v.has_non_finite(), "non-finite generator output");
        }
        assert_eq!(out.carry.agg_h.shape(), (3, 8));
    }

    #[test]
    fn resgen_sigma_is_positive() {
        let cfg = tiny_cfg();
        let mut rng = Rng::seed_from(2);
        let gen = Generator::new(cfg.clone(), &mut rng);
        let wins = sample_windows(&cfg);
        let batch: Vec<&Window> = wins.iter().take(2).collect();
        let carry = CarryState::zeros(&cfg, 2);
        let mut g = Graph::new();
        let out = gen.forward(&mut g, &batch, &carry, ArMode::FreeRunning, false, &mut rng);
        for &s in &out.res_sigma {
            assert!(
                g.value(s).data.iter().all(|&v| v > 0.0),
                "sigma not positive"
            );
        }
    }

    #[test]
    fn ablated_resgen_produces_no_residual_stats() {
        let mut cfg = tiny_cfg();
        cfg.ablation.resgen = false;
        let mut rng = Rng::seed_from(3);
        let gen = Generator::new(cfg.clone(), &mut rng);
        let wins = sample_windows(&cfg);
        let batch: Vec<&Window> = wins.iter().take(1).collect();
        let carry = CarryState::zeros(&cfg, 1);
        let mut g = Graph::new();
        let out = gen.forward(
            &mut g,
            &batch,
            &carry,
            ArMode::TeacherForced,
            true,
            &mut rng,
        );
        assert!(out.res_mu.is_empty());
        assert!(out.res_sigma.is_empty());
    }

    #[test]
    fn stochastic_forward_varies_between_calls() {
        let cfg = tiny_cfg();
        let mut rng = Rng::seed_from(4);
        let gen = Generator::new(cfg.clone(), &mut rng);
        let wins = sample_windows(&cfg);
        let batch: Vec<&Window> = wins.iter().take(1).collect();
        let carry = CarryState::zeros(&cfg, 1);
        let mut g1 = Graph::new();
        let o1 = gen.forward(&mut g1, &batch, &carry, ArMode::FreeRunning, true, &mut rng);
        let mut g2 = Graph::new();
        let o2 = gen.forward(&mut g2, &batch, &carry, ArMode::FreeRunning, true, &mut rng);
        let a = g1.value(o1.outputs[5]);
        let b = g2.value(o2.outputs[5]);
        assert_ne!(
            a.data, b.data,
            "stochastic generator produced identical outputs"
        );
    }

    #[test]
    fn packed_forward_matches_percell_reference() {
        let cfg = tiny_cfg();
        let mut rng = Rng::seed_from(11);
        let gen = Generator::new(cfg.clone(), &mut rng);
        let wins = sample_windows(&cfg);
        let batch: Vec<&Window> = wins.iter().take(3).collect();
        let carry = CarryState::zeros(&cfg, batch.len());
        for (mode, mc) in [(ArMode::TeacherForced, true), (ArMode::FreeRunning, false)] {
            let mut rng_a = Rng::seed_from(99);
            let mut g_a = Graph::new();
            let packed = gen.forward(&mut g_a, &batch, &carry, mode, mc, &mut rng_a);
            let mut rng_b = Rng::seed_from(99);
            let mut g_b = Graph::new();
            let reference = gen.forward_percell(&mut g_b, &batch, &carry, mode, mc, &mut rng_b);
            assert_eq!(packed.outputs.len(), reference.outputs.len());
            for t in 0..packed.outputs.len() {
                for (name, pa, pb) in [
                    ("output", packed.outputs[t], reference.outputs[t]),
                    ("h_avg", packed.h_avg[t], reference.h_avg[t]),
                ] {
                    let va = g_a.value(pa);
                    let vb = g_b.value(pb);
                    assert_eq!(va.shape(), vb.shape());
                    for (x, y) in va.data.iter().zip(vb.data.iter()) {
                        assert!(
                            (x - y).abs() <= 1e-4,
                            "{name} diverges at step {t} ({mode:?}): {x} vs {y}"
                        );
                    }
                }
            }
            assert_eq!(packed.carry.agg_h.data, reference.carry.agg_h.data);
            assert_eq!(packed.carry.ar_tail.data, reference.carry.ar_tail.data);
        }
    }

    #[test]
    fn carry_state_propagates() {
        let cfg = tiny_cfg();
        let mut rng = Rng::seed_from(5);
        let gen = Generator::new(cfg.clone(), &mut rng);
        let wins = sample_windows(&cfg);
        let batch: Vec<&Window> = wins.iter().take(1).collect();
        let carry0 = CarryState::zeros(&cfg, 1);
        let mut g = Graph::new();
        let out = gen.forward(
            &mut g,
            &batch,
            &carry0,
            ArMode::FreeRunning,
            false,
            &mut rng,
        );
        // Carry should be non-zero after a window.
        assert!(out.carry.agg_h.norm_sq() > 0.0);
        assert!(out.carry.ar_tail.norm_sq() > 0.0);
    }
}
