//! # gendt — the GenDT conditional generative model
//!
//! Reproduction of the GenDT model from "GenDT: Mobile Network Drive
//! Testing Made Efficient with Generative Modeling" (CoNEXT 2022): a
//! conditional deep generative model that synthesizes multivariate radio
//! KPI time series (RSRP, RSRQ, SINR, CQI, serving cell) for a drive-test
//! trajectory, conditioned on network context (potential serving cells)
//! and environment context (land use / points of interest).
//!
//! Components:
//!
//! * [`cfg`] — model configuration and the Table-12 ablation switches.
//! * [`generator`] — GNN-node LSTM, aggregation network, and ResGen
//!   (paper §4.3.1–4.3.2), with SRNN stochastic layers (§4.3.4).
//! * [`discriminator`] — the LSTM density-ratio estimator (§4.3.5).
//! * [`trainer`] — combined `MSE + λ·GAN` training.
//! * [`generate`] — batch generation with cross-window state carry, and
//!   MC-dropout model uncertainty (§6.2.1).
//! * [`active`] — uncertainty-driven measurement selection (§6.2.2).
//! * [`checkpoint`] — save/load trained models (the §7.1 pretrained model).
//! * [`transfer`] — the §7.1 / Fig. 14 region-transfer retraining loop.
//!
//! ## Quickstart
//!
//! ```no_run
//! use gendt::{GenDt, GenDtCfg, generate_series};
//! use gendt_data::{dataset_a, extract, windows, BuildCfg, ContextCfg, Kpi};
//!
//! let ds = dataset_a(&BuildCfg::quick(42));
//! let cfg = GenDtCfg::fast(4, 42);
//! let ctx_cfg = ContextCfg { max_cells: cfg.window.max_cells, ..Default::default() };
//! let mut pool = Vec::new();
//! for run in &ds.runs {
//!     let ctx = extract(&ds.world, &ds.deployment, &run.traj, &ctx_cfg);
//!     pool.extend(windows(run, &ctx, &Kpi::DATASET_A, &cfg.window));
//! }
//! let mut model = GenDt::new(cfg);
//! model.train(&pool);
//! // Generate KPIs for a new, unseen trajectory:
//! let new_ctx = extract(&ds.world, &ds.deployment, &ds.runs[0].traj, &ctx_cfg);
//! let series = generate_series(&mut model, &new_ctx, &Kpi::DATASET_A, false, 7);
//! println!("generated {} RSRP samples", series.channel(Kpi::Rsrp).unwrap().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod cfg;
pub mod checkpoint;
pub mod discriminator;
pub mod generate;
pub mod generator;
pub mod trainer;
pub mod transfer;

pub use active::{run_selection, ActiveConfig, SelectionPoint, SelectionPolicy};
pub use cfg::{Ablation, GenDtCfg, GenDtCfgBuilder};
pub use checkpoint::{
    load_model, load_model_from_file, load_train_checkpoint, parse_train_checkpoint, restore_train,
    resume_latest, save_model, save_model_to_file, save_train, save_train_checkpoint,
    ModelCheckpoint, TrainCheckpoint, LATEST_POINTER,
};
pub use discriminator::Discriminator;
pub use generate::{
    generate_series, generate_series_batch, generate_series_chunk, generation_windows,
    model_uncertainty, GenBatchItem, GenChunkItem, GenCursor, GeneratedSeries, UncertaintyReport,
};
pub use generator::{ArMode, CarryState, ForwardOut, Generator};
pub use trainer::{GenDt, StepTrace};
pub use transfer::{pretrain, transfer_to_region, TransferCfg, TransferOutcome, TransferStep};
