//! `gendt-train` — train a GenDT model with crash-safe checkpointing
//! and bitwise-identical resume.
//!
//! ```text
//! gendt-train --out DIR [--steps N] [--seed S] [--ckpt-every K] [--resume]
//! ```
//!
//! The training workload is the synthetic dataset-A pool derived from
//! `--seed`, so two invocations with the same flags run the same
//! trajectory. Every `--ckpt-every` steps the full training state
//! (parameters, Adam moments, RNG, loss trace) is written atomically
//! into `DIR` and the rolling `latest` pointer is advanced; `--resume`
//! picks up from the newest loadable checkpoint — after a SIGKILL at
//! any point the continuation is bitwise-identical to an uninterrupted
//! run. The final model lands in `DIR/final.json`.
//!
//! Fault probes: `checkpoint.write`, `checkpoint.read`, and a `slow` /
//! `io_err` point at `train.step` (see `GENDT_FAULTS` in DESIGN.md §10).

#![forbid(unsafe_code)]

use gendt::checkpoint::{resume_latest, save_model_to_file, save_train_checkpoint};
use gendt::{GenDt, GenDtCfg};
use gendt_data::builders::{dataset_a, BuildCfg};
use gendt_data::context::{extract, ContextCfg};
use gendt_data::kpi_types::Kpi;
use gendt_data::windows::{windows as make_windows, Window};
use gendt_faults::{ErrorKind, GendtError};
use gendt_nn::checkpoint::CheckpointError;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    out: PathBuf,
    steps: u64,
    seed: u64,
    ckpt_every: u64,
    resume: bool,
}

fn parse_opts() -> Result<Opts, GendtError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<PathBuf> = None;
    let mut steps = 12u64;
    let mut seed = 7u64;
    let mut ckpt_every = 2u64;
    let mut resume = false;
    let mut it = argv.iter();
    let need = |flag: &str, v: Option<&String>| -> Result<String, GendtError> {
        v.cloned()
            .ok_or_else(|| GendtError::config(format!("{flag} needs a value")))
    };
    let int = |flag: &str, v: String| -> Result<u64, GendtError> {
        v.parse()
            .map_err(|_| GendtError::config(format!("{flag}: '{v}' is not an integer")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(need("--out", it.next())?)),
            "--steps" => steps = int("--steps", need("--steps", it.next())?)?,
            "--seed" => seed = int("--seed", need("--seed", it.next())?)?,
            "--ckpt-every" => {
                ckpt_every = int("--ckpt-every", need("--ckpt-every", it.next())?)?;
                if ckpt_every == 0 {
                    return Err(GendtError::config("--ckpt-every must be > 0"));
                }
            }
            "--resume" => resume = true,
            other => return Err(GendtError::config(format!("unknown flag {other}"))),
        }
    }
    Ok(Opts {
        out: out.ok_or_else(|| GendtError::config("--out DIR is required"))?,
        steps,
        seed,
        ckpt_every,
        resume,
    })
}

/// Map checkpoint-layer failures onto the workspace taxonomy.
fn from_ckpt(e: CheckpointError) -> GendtError {
    match e {
        CheckpointError::Io(e) => GendtError::from(e),
        CheckpointError::Format(msg) => GendtError::corrupt(msg),
        other => GendtError::corrupt(other.to_string()),
    }
}

/// Deterministic training pool: dataset A built from the run seed.
fn training_pool(cfg: &GenDtCfg, seed: u64) -> Vec<Window> {
    let ds = dataset_a(&BuildCfg::quick(seed ^ 0x0DD5_EEDF_00D5));
    let run = &ds.runs[0];
    let ctx = extract(
        &ds.world,
        &ds.deployment,
        &run.traj,
        &ContextCfg {
            max_cells: cfg.window.max_cells,
            ..ContextCfg::default()
        },
    );
    make_windows(run, &ctx, &Kpi::DATASET_A, &cfg.window)
}

fn train_cfg(seed: u64, steps: u64) -> Result<GenDtCfg, GendtError> {
    let mut cfg = GenDtCfg::builder(4, seed)
        .hidden(8)
        .resgen_hidden(8)
        .disc_hidden(4)
        .window(10, 10)
        .max_cells(2)
        .batch_size(4)
        .build()?;
    cfg.steps = steps as usize;
    Ok(cfg)
}

fn run() -> Result<(), GendtError> {
    let opts = parse_opts()?;
    let cfg = train_cfg(opts.seed, opts.steps)?;
    let pool = training_pool(&cfg, opts.seed);
    if pool.is_empty() {
        return Err(GendtError::internal("training pool came out empty"));
    }

    let (mut model, mut step) = if opts.resume {
        let (model, step, path) = resume_latest(&opts.out).map_err(from_ckpt)?;
        if model.cfg().seed != cfg.seed {
            return Err(GendtError::corrupt(format!(
                "checkpoint {} was trained with seed {}, not --seed {}",
                path.display(),
                model.cfg().seed,
                cfg.seed
            )));
        }
        gendt_trace::info!("resumed from {} at step {step}", path.display());
        (model, step)
    } else {
        (GenDt::new(cfg), 0)
    };

    while step < opts.steps {
        // Chaos schedules slow the loop here so a kill-and-resume test
        // can reliably land its SIGKILL mid-run.
        gendt_faults::sleep_if_slow("train.step");
        gendt_faults::fail_io("train.step").map_err(GendtError::from)?;
        model.train_step(&pool);
        step += 1;
        if step % opts.ckpt_every == 0 && step < opts.steps {
            let path = save_train_checkpoint(&model, step, &opts.out).map_err(from_ckpt)?;
            gendt_trace::info!("checkpoint at step {step}: {}", path.display());
        }
    }

    std::fs::create_dir_all(&opts.out).map_err(GendtError::from)?;
    let final_path = opts.out.join("final.json");
    save_model_to_file(&model, &final_path).map_err(from_ckpt)?;
    gendt_trace::out!(
        "trained {} steps (seed {}), final model at {}",
        opts.steps,
        opts.seed,
        final_path.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            gendt_trace::error!("gendt-train: {e}");
            if e.kind() == ErrorKind::Config {
                gendt_trace::error!(
                    "usage: gendt-train --out DIR [--steps N] [--seed S] \
                     [--ckpt-every K] [--resume]"
                );
            }
            ExitCode::from(e.exit_code())
        }
    }
}
