//! The armed fault plan and the probe functions.
//!
//! A plan is resolved once from `GENDT_FAULTS` / `GENDT_FAULTS_SEED`
//! (or installed in-process with [`set_spec`]). Each probe call walks
//! the rules for its probe name; whether the *k*-th occurrence fires is
//! a pure function of `(seed, kind, probe, k)` — no shared RNG stream,
//! no lock on the decision path — so a chaos schedule replays
//! bit-for-bit regardless of thread interleaving. Unarmed probes cost
//! one relaxed atomic load.

use crate::spec::{parse_spec, FaultKind, FaultRule, Trigger};
use crate::GendtError;
use gendt_sync::atomic::{AtomicU64, AtomicU8, Ordering};
use gendt_sync::{thread, RwLock};
use std::sync::{Arc, OnceLock};

const UNRESOLVED: u8 = 0;
const EMPTY: u8 = 1;
const ARMED: u8 = 2;

/// Tri-state mirror of the plan slot so the common (no faults) path is
/// a single relaxed load with no lock.
static STATE: AtomicU8 = AtomicU8::new(UNRESOLVED);
static SLOT: OnceLock<RwLock<Option<Arc<Plan>>>> = OnceLock::new();
/// Total faults injected since process start (all probes, all rules).
static INJECTED: AtomicU64 = AtomicU64::new(0);

struct Armed {
    rule: FaultRule,
    /// `kind@probe`, leaked once at arm time so trace marks (which need
    /// `&'static str`) can carry the rule identity.
    label: &'static str,
    /// Per-rule decision seed: mixes the plan seed with the rule identity
    /// so two rules on the same probe draw independent coins.
    seed: u64,
    occurrences: AtomicU64,
}

struct Plan {
    rules: Vec<Armed>,
}

fn slot() -> &'static RwLock<Option<Arc<Plan>>> {
    SLOT.get_or_init(|| RwLock::new(None))
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn build_plan(rules: Vec<FaultRule>, seed: u64) -> Arc<Plan> {
    let armed = rules
        .into_iter()
        .map(|rule| {
            let label: &'static str =
                Box::leak(format!("{}@{}", rule.kind.token(), rule.probe).into_boxed_str());
            let rule_seed = mix(seed ^ fnv1a(label));
            Armed {
                rule,
                label,
                seed: rule_seed,
                occurrences: AtomicU64::new(0),
            }
        })
        .collect();
    Arc::new(Plan { rules: armed })
}

fn arm(rules: Vec<FaultRule>, seed: u64) {
    let mut guard = slot().write();
    *guard = Some(build_plan(rules, seed));
    // sync: every STATE transition happens under the slot write lock,
    // so the tri-state mirror can never disagree with the plan slot;
    // Release pairs with the Acquire fast-path load in current().
    STATE.store(ARMED, Ordering::Release);
}

/// Install a fault plan in-process (wins over `GENDT_FAULTS`). The seed
/// plays the role of `GENDT_FAULTS_SEED`: same spec + same seed replays
/// the same fault schedule.
pub fn set_spec(spec: &str, seed: u64) -> Result<(), GendtError> {
    let rules = parse_spec(spec)?;
    arm(rules, seed);
    Ok(())
}

/// Disarm all faults in-process. Probes return to their no-op fast path;
/// the injected-count total is preserved.
pub fn clear_faults() {
    let mut guard = slot().write();
    *guard = None;
    // sync: see arm() — transitions are serialized by the slot lock.
    STATE.store(EMPTY, Ordering::Release);
}

/// Total number of faults injected since process start.
pub fn injected_count() -> u64 {
    // sync: monotonic counter scraped by /metrics; no ordering needed.
    INJECTED.load(Ordering::Relaxed)
}

fn current() -> Option<Arc<Plan>> {
    // sync: Acquire pairs with the Release stores under the slot lock,
    // so an ARMED observation also sees the armed plan's rules.
    match STATE.load(Ordering::Acquire) {
        EMPTY => return None,
        ARMED => {}
        _ => resolve_env(),
    }
    slot().read().clone()
}

/// First probe in the process: resolve `GENDT_FAULTS` exactly once.
/// Double-checked under the slot write lock — two probes racing through
/// the UNRESOLVED fast path must not both arm (and must not clobber a
/// concurrent `set_spec`/`clear_faults` that beat them to the lock).
fn resolve_env() {
    let mut guard = slot().write();
    // sync: re-checked under the lock; a racing resolver or an explicit
    // set_spec may have settled STATE while we waited.
    if STATE.load(Ordering::Acquire) != UNRESOLVED {
        return;
    }
    match std::env::var("GENDT_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            let seed = std::env::var("GENDT_FAULTS_SEED")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(0u64);
            match parse_spec(&spec) {
                Ok(rules) => {
                    *guard = Some(build_plan(rules, seed));
                    // sync: see arm() — serialized by the slot lock.
                    STATE.store(ARMED, Ordering::Release);
                }
                Err(e) => {
                    // A broken spec must be loud but must not take
                    // down the request path that tripped the probe.
                    gendt_trace::error!("GENDT_FAULTS ignored: {e}");
                    STATE.store(EMPTY, Ordering::Release);
                }
            }
        }
        _ => STATE.store(EMPTY, Ordering::Release),
    }
}

/// Walk the plan for `probe`; returns the first matching rule of `kind`
/// that fires at this occurrence.
fn fire(kind: FaultKind, probe: &str) -> Option<(u64, &'static str)> {
    let plan = current()?;
    for armed in plan
        .rules
        .iter()
        .filter(|a| a.rule.kind == kind && a.rule.probe == probe)
    {
        // sync: per-rule occurrence ticket; the decision is a pure
        // function of (seed, k), so no ordering is required.
        let occ = armed.occurrences.fetch_add(1, Ordering::Relaxed);
        let hit = match armed.rule.trigger {
            Trigger::FirstN(n) => occ < n,
            Trigger::Probability(p) => {
                // The k-th coin is a pure function of (rule seed, k).
                let x = mix(armed.seed ^ occ.wrapping_mul(0xA24B_AED4_963E_E407));
                ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
            }
        };
        if hit {
            // sync: monotonic counter for /metrics only.
            INJECTED.fetch_add(1, Ordering::Relaxed);
            gendt_trace::mark(armed.label, "fault");
            return Some((armed.rule.ms, armed.label));
        }
    }
    None
}

/// `io_err` probe: returns an injected [`std::io::Error`] when an armed
/// rule fires. Call as `fail_io("checkpoint.write")?` at the top of the
/// guarded operation.
pub fn fail_io(probe: &str) -> std::io::Result<()> {
    match fire(FaultKind::IoErr, probe) {
        Some((_, label)) => Err(std::io::Error::other(format!("injected fault {label}"))),
        None => Ok(()),
    }
}

/// `slow` probe: returns the injected delay in milliseconds when an
/// armed rule fires. The caller decides how to wait, which keeps
/// clock-free files (e.g. the batch kernel) free of sleeps.
pub fn slow_ms(probe: &str) -> Option<u64> {
    fire(FaultKind::Slow, probe).map(|(ms, _)| ms)
}

/// Convenience wrapper over [`slow_ms`] that sleeps in place.
pub fn sleep_if_slow(probe: &str) {
    if let Some(ms) = slow_ms(probe) {
        thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// `drop` probe: true when the probed unit of work should be discarded
/// (e.g. close a just-accepted connection without reading it).
pub fn should_drop(probe: &str) -> bool {
    fire(FaultKind::Drop, probe).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global plan.
    static PLAN_LOCK: gendt_sync::Mutex<()> = gendt_sync::Mutex::new(());

    #[test]
    fn unarmed_probes_are_silent() {
        let _g = PLAN_LOCK.lock();
        clear_faults();
        assert!(fail_io("nope").is_ok());
        assert!(slow_ms("nope").is_none());
        assert!(!should_drop("nope"));
    }

    #[test]
    fn first_n_fires_exactly_n_times() {
        let _g = PLAN_LOCK.lock();
        set_spec("drop@t.accept:n=3", 9).expect("spec parses");
        let fired: usize = (0..10).filter(|_| should_drop("t.accept")).count();
        assert_eq!(fired, 3);
        clear_faults();
        assert!(!should_drop("t.accept"));
    }

    #[test]
    fn probability_schedule_replays_bitwise() {
        let _g = PLAN_LOCK.lock();
        let run = |seed: u64| -> Vec<bool> {
            set_spec("io_err@t.write:p=0.5", seed).expect("spec parses");
            let pattern = (0..64).map(|_| fail_io("t.write").is_err()).collect();
            clear_faults();
            pattern
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_ne!(a, c, "different seeds should differ");
        assert!(a.iter().any(|&f| f) && !a.iter().all(|&f| f), "p=0.5 mixes");
    }

    #[test]
    fn slow_rule_reports_its_delay_and_counts() {
        let _g = PLAN_LOCK.lock();
        set_spec("slow@t.batch:ms=7,n=2", 1).expect("spec parses");
        let before = injected_count();
        assert_eq!(slow_ms("t.batch"), Some(7));
        assert_eq!(slow_ms("t.batch"), Some(7));
        assert_eq!(slow_ms("t.batch"), None);
        assert_eq!(injected_count() - before, 2);
        clear_faults();
    }

    #[test]
    fn rules_only_match_their_probe_and_kind() {
        let _g = PLAN_LOCK.lock();
        set_spec("io_err@t.a:n=100", 5).expect("spec parses");
        assert!(fail_io("t.b").is_ok(), "different probe");
        assert!(slow_ms("t.a").is_none(), "different kind");
        assert!(fail_io("t.a").is_err(), "armed probe fires");
        clear_faults();
    }
}
