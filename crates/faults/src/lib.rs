//! # gendt-faults — resilience substrate for the GenDT workspace
//!
//! Three things live here:
//!
//! * [`GendtError`] / [`ErrorKind`] — the workspace error taxonomy. One
//!   carrier type maps every failure to an HTTP status + typed JSON
//!   envelope code (`{code, message, retryable}`) on the serve side and
//!   to a CLI exit code on the binary side, replacing ad-hoc
//!   `Result<_, String>` plumbing.
//! * [`parse_spec`] + the probe functions in [`inject`] — a
//!   deterministic fault-injection harness. `GENDT_FAULTS=<spec>` (e.g.
//!   `io_err@checkpoint.write:p=0.3;slow@serve.batch:ms=500;drop@http.accept:n=5`)
//!   arms named probe points sprinkled through serve and the trainer.
//!   Whether the *k*-th occurrence of a probe fires is a pure function
//!   of `(seed, probe, k)`, so a chaos schedule replays bit-for-bit.
//! * [`Backoff`] — bounded retries with deterministic jittered
//!   exponential backoff, used by `/reload` and checkpoint loads.
//!
//! The harness is std-only and costs one relaxed atomic load per probe
//! when no fault plan is armed — cheap enough to leave compiled into
//! production binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod inject;
mod retry;
mod spec;

pub use error::{ErrorKind, GendtError};
pub use inject::{
    clear_faults, fail_io, injected_count, set_spec, should_drop, sleep_if_slow, slow_ms,
};
pub use retry::{retry_with_backoff, Backoff};
pub use spec::{parse_spec, FaultKind, FaultRule, Trigger};
