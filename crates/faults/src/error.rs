//! The workspace error taxonomy: one carrier type, three projections
//! (HTTP status, typed JSON envelope code, CLI exit code).

use std::fmt;

/// Failure classification shared by every GenDT surface.
///
/// The kind decides all three projections of an error — HTTP status,
/// envelope `code` string, and CLI exit code — plus the default
/// `retryable` flag, so callers never invent their own mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request itself is malformed (bad JSON, unknown scenario,
    /// out-of-range duration). Not retryable: resending won't help.
    InvalidRequest,
    /// A named resource (model, checkpoint, route) does not exist.
    NotFound,
    /// The server is saturated and shed the request. Retry after a
    /// short delay (HTTP 429 + `Retry-After`).
    Overloaded,
    /// The service is temporarily unable to answer (draining, mid
    /// reload, injected outage). Retry after a short delay (HTTP 503).
    Unavailable,
    /// A deadline expired before the work completed (HTTP 504).
    Timeout,
    /// An I/O operation failed (disk, socket). Often transient.
    Io,
    /// Stored state failed validation (torn checkpoint, foreign file,
    /// shape mismatch). Never retryable: the bytes are wrong.
    Corrupt,
    /// Invalid configuration (zero batch window, bad port, flag misuse).
    Config,
    /// A bug: invariant violation, panic caught at a boundary.
    Internal,
}

impl ErrorKind {
    /// Stable snake_case code used in the v1 JSON error envelope.
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::InvalidRequest => "invalid_request",
            ErrorKind::NotFound => "not_found",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Io => "io_error",
            ErrorKind::Corrupt => "corrupt",
            ErrorKind::Config => "config",
            ErrorKind::Internal => "internal",
        }
    }

    /// HTTP status this kind maps to on the serve surface.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorKind::InvalidRequest => 400,
            ErrorKind::NotFound => 404,
            ErrorKind::Overloaded => 429,
            ErrorKind::Unavailable => 503,
            ErrorKind::Timeout => 504,
            ErrorKind::Io | ErrorKind::Corrupt | ErrorKind::Config | ErrorKind::Internal => 500,
        }
    }

    /// Process exit code this kind maps to on the CLI surface.
    /// 0 is success; 1 is reserved for internal faults.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Internal => 1,
            ErrorKind::InvalidRequest | ErrorKind::Config => 2,
            ErrorKind::Io => 3,
            ErrorKind::Corrupt => 4,
            ErrorKind::NotFound => 5,
            ErrorKind::Timeout => 6,
            ErrorKind::Overloaded | ErrorKind::Unavailable => 7,
        }
    }

    /// Whether a client should retry by default for this kind.
    pub fn default_retryable(self) -> bool {
        matches!(
            self,
            ErrorKind::Overloaded | ErrorKind::Unavailable | ErrorKind::Timeout | ErrorKind::Io
        )
    }
}

/// The workspace error type: a kind plus human context plus an explicit
/// retryable flag (defaulted from the kind, overridable per error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GendtError {
    kind: ErrorKind,
    context: String,
    retryable: bool,
}

impl GendtError {
    /// Build an error of `kind` with human-readable context.
    pub fn new(kind: ErrorKind, context: impl Into<String>) -> Self {
        GendtError {
            kind,
            context: context.into(),
            retryable: kind.default_retryable(),
        }
    }

    /// Shorthand: [`ErrorKind::InvalidRequest`].
    pub fn invalid(context: impl Into<String>) -> Self {
        GendtError::new(ErrorKind::InvalidRequest, context)
    }

    /// Shorthand: [`ErrorKind::NotFound`].
    pub fn not_found(context: impl Into<String>) -> Self {
        GendtError::new(ErrorKind::NotFound, context)
    }

    /// Shorthand: [`ErrorKind::Overloaded`].
    pub fn overloaded(context: impl Into<String>) -> Self {
        GendtError::new(ErrorKind::Overloaded, context)
    }

    /// Shorthand: [`ErrorKind::Unavailable`].
    pub fn unavailable(context: impl Into<String>) -> Self {
        GendtError::new(ErrorKind::Unavailable, context)
    }

    /// Shorthand: [`ErrorKind::Timeout`].
    pub fn timeout(context: impl Into<String>) -> Self {
        GendtError::new(ErrorKind::Timeout, context)
    }

    /// Shorthand: [`ErrorKind::Io`].
    pub fn io(context: impl Into<String>) -> Self {
        GendtError::new(ErrorKind::Io, context)
    }

    /// Shorthand: [`ErrorKind::Corrupt`].
    pub fn corrupt(context: impl Into<String>) -> Self {
        GendtError::new(ErrorKind::Corrupt, context)
    }

    /// Shorthand: [`ErrorKind::Config`].
    pub fn config(context: impl Into<String>) -> Self {
        GendtError::new(ErrorKind::Config, context)
    }

    /// Shorthand: [`ErrorKind::Internal`].
    pub fn internal(context: impl Into<String>) -> Self {
        GendtError::new(ErrorKind::Internal, context)
    }

    /// Override the retryable flag (e.g. an `Io` error known permanent).
    pub fn with_retryable(mut self, retryable: bool) -> Self {
        self.retryable = retryable;
        self
    }

    /// Prefix the context with an outer layer's description.
    pub fn wrap(mut self, outer: impl fmt::Display) -> Self {
        self.context = format!("{outer}: {}", self.context);
        self
    }

    /// This error's kind.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The human-readable context string.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// Stable envelope code (delegates to the kind).
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }

    /// HTTP status (delegates to the kind).
    pub fn http_status(&self) -> u16 {
        self.kind.http_status()
    }

    /// CLI exit code (delegates to the kind).
    pub fn exit_code(&self) -> u8 {
        self.kind.exit_code()
    }

    /// Whether a client should retry this particular error.
    pub fn retryable(&self) -> bool {
        self.retryable
    }
}

impl fmt::Display for GendtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.code(), self.context)
    }
}

impl std::error::Error for GendtError {}

impl From<std::io::Error> for GendtError {
    fn from(e: std::io::Error) -> Self {
        let kind = match e.kind() {
            std::io::ErrorKind::NotFound => ErrorKind::NotFound,
            _ => ErrorKind::Io,
        };
        GendtError::new(kind, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_projections_are_consistent() {
        let kinds = [
            ErrorKind::InvalidRequest,
            ErrorKind::NotFound,
            ErrorKind::Overloaded,
            ErrorKind::Unavailable,
            ErrorKind::Timeout,
            ErrorKind::Io,
            ErrorKind::Corrupt,
            ErrorKind::Config,
            ErrorKind::Internal,
        ];
        let mut codes = std::collections::BTreeSet::new();
        for k in kinds {
            assert!(codes.insert(k.code()), "duplicate code {}", k.code());
            assert!((400..=599).contains(&k.http_status()) || k.http_status() == 500);
            assert!(k.exit_code() >= 1, "exit code 0 is success");
        }
        // Shed-load statuses must be retryable so clients back off and retry.
        assert!(ErrorKind::Overloaded.default_retryable());
        assert!(ErrorKind::Unavailable.default_retryable());
        assert!(ErrorKind::Timeout.default_retryable());
        assert!(!ErrorKind::Corrupt.default_retryable());
    }

    #[test]
    fn retryable_override_and_wrap() {
        let e = GendtError::io("disk on fire").with_retryable(false);
        assert!(!e.retryable());
        let wrapped = e.wrap("loading checkpoint");
        assert_eq!(wrapped.context(), "loading checkpoint: disk on fire");
        assert_eq!(
            wrapped.to_string(),
            "io_error: loading checkpoint: disk on fire"
        );
    }

    #[test]
    fn io_error_conversion_maps_not_found() {
        let nf = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert_eq!(GendtError::from(nf).kind(), ErrorKind::NotFound);
        let other = std::io::Error::other("torn");
        assert_eq!(GendtError::from(other).kind(), ErrorKind::Io);
    }
}
