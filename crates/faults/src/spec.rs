//! The `GENDT_FAULTS` spec grammar.
//!
//! ```text
//! spec  := rule (';' rule)*
//! rule  := kind '@' probe [':' param (',' param)*]
//! kind  := 'io_err' | 'slow' | 'drop'
//! param := 'p=' FLOAT   probability per occurrence, in [0, 1]
//!        | 'n=' INT     fire only for the first n occurrences
//!        | 'ms=' INT    injected delay (required for 'slow')
//! ```
//!
//! Example: `io_err@checkpoint.write:p=0.3;slow@serve.batch:ms=500;drop@http.accept:n=5`

use crate::{ErrorKind, GendtError};

/// What an armed rule does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Make the probed I/O operation return an injected `io::Error`.
    IoErr,
    /// Delay the probed operation by `ms` milliseconds.
    Slow,
    /// Drop the probed unit of work (e.g. close an accepted connection).
    Drop,
}

impl FaultKind {
    fn parse(s: &str) -> Result<Self, GendtError> {
        match s {
            "io_err" => Ok(FaultKind::IoErr),
            "slow" => Ok(FaultKind::Slow),
            "drop" => Ok(FaultKind::Drop),
            other => Err(GendtError::new(
                ErrorKind::Config,
                format!("unknown fault kind '{other}' (expected io_err|slow|drop)"),
            )),
        }
    }

    /// The spec token for this kind.
    pub fn token(self) -> &'static str {
        match self {
            FaultKind::IoErr => "io_err",
            FaultKind::Slow => "slow",
            FaultKind::Drop => "drop",
        }
    }
}

/// When a rule fires, relative to the per-probe occurrence counter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Fire on every occurrence whose seeded coin lands under `p`.
    Probability(f64),
    /// Fire on the first `n` occurrences, then go quiet.
    FirstN(u64),
}

/// One parsed fault rule.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// What to do when the rule fires.
    pub kind: FaultKind,
    /// The probe point the rule is attached to (e.g. `serve.batch`).
    pub probe: String,
    /// When the rule fires.
    pub trigger: Trigger,
    /// Delay for `slow` rules, milliseconds.
    pub ms: u64,
}

/// Parse a full `GENDT_FAULTS` spec into rules.
pub fn parse_spec(spec: &str) -> Result<Vec<FaultRule>, GendtError> {
    let mut rules = Vec::new();
    for raw in spec.split(';') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        rules.push(parse_rule(raw)?);
    }
    if rules.is_empty() {
        return Err(GendtError::new(
            ErrorKind::Config,
            format!("fault spec '{spec}' contains no rules"),
        ));
    }
    Ok(rules)
}

fn parse_rule(raw: &str) -> Result<FaultRule, GendtError> {
    let bad =
        |msg: String| GendtError::new(ErrorKind::Config, format!("fault rule '{raw}': {msg}"));
    let (head, params) = match raw.split_once(':') {
        Some((h, p)) => (h, Some(p)),
        None => (raw, None),
    };
    let (kind_s, probe) = head
        .split_once('@')
        .ok_or_else(|| bad("missing '@probe'".to_string()))?;
    let kind = FaultKind::parse(kind_s.trim()).map_err(|e| bad(e.context().to_string()))?;
    let probe = probe.trim();
    if probe.is_empty() {
        return Err(bad("empty probe name".to_string()));
    }

    let mut p: Option<f64> = None;
    let mut n: Option<u64> = None;
    let mut ms: Option<u64> = None;
    if let Some(params) = params {
        for kv in params.split(',') {
            let kv = kv.trim();
            if kv.is_empty() {
                continue;
            }
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| bad(format!("param '{kv}' is not k=v")))?;
            match k.trim() {
                "p" => {
                    let val: f64 = v
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("p='{v}' is not a float")))?;
                    if !(0.0..=1.0).contains(&val) {
                        return Err(bad(format!("p={val} outside [0, 1]")));
                    }
                    p = Some(val);
                }
                "n" => {
                    n = Some(
                        v.trim()
                            .parse()
                            .map_err(|_| bad(format!("n='{v}' is not an integer")))?,
                    )
                }
                "ms" => {
                    ms = Some(
                        v.trim()
                            .parse()
                            .map_err(|_| bad(format!("ms='{v}' is not an integer")))?,
                    )
                }
                other => return Err(bad(format!("unknown param '{other}'"))),
            }
        }
    }
    if p.is_some() && n.is_some() {
        return Err(bad("give p= or n=, not both".to_string()));
    }
    if kind == FaultKind::Slow && ms.is_none() {
        return Err(bad("slow rules need ms=".to_string()));
    }
    let trigger = match (p, n) {
        (Some(p), None) => Trigger::Probability(p),
        (None, Some(n)) => Trigger::FirstN(n),
        // No trigger param: fire on every occurrence.
        (None, None) => Trigger::Probability(1.0),
        (Some(_), Some(_)) => unreachable!("rejected above"),
    };
    Ok(FaultRule {
        kind,
        probe: probe.to_string(),
        trigger,
        ms: ms.unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let rules = parse_spec(
            "io_err@checkpoint.write:p=0.3;slow@serve.batch:ms=500;drop@http.accept:n=5",
        )
        .expect("spec parses");
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].kind, FaultKind::IoErr);
        assert_eq!(rules[0].probe, "checkpoint.write");
        assert_eq!(rules[0].trigger, Trigger::Probability(0.3));
        assert_eq!(rules[1].kind, FaultKind::Slow);
        assert_eq!(rules[1].ms, 500);
        assert_eq!(rules[2].kind, FaultKind::Drop);
        assert_eq!(rules[2].trigger, Trigger::FirstN(5));
    }

    #[test]
    fn bare_rule_fires_always() {
        let rules = parse_spec("io_err@registry.scan").expect("spec parses");
        assert_eq!(rules[0].trigger, Trigger::Probability(1.0));
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "boom@x",
            "io_err",
            "io_err@",
            "io_err@x:p=2.0",
            "io_err@x:p=0.1,n=3",
            "io_err@x:q=1",
            "slow@x:p=0.5",
            "io_err@x:p=abc",
        ] {
            let err = parse_spec(bad).expect_err(&format!("'{bad}' should be rejected"));
            assert_eq!(err.kind(), ErrorKind::Config, "'{bad}' → {err}");
        }
    }
}
