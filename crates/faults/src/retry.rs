//! Bounded retries with deterministic jittered exponential backoff.

use gendt_rng::Rng;
use std::time::Duration;

/// Bounded exponential backoff with deterministic jitter.
///
/// Delay for attempt *k* (0-based) is `base_ms · 2^k · j` with jitter
/// `j ∈ [0.75, 1.25)` drawn from a seeded stream, capped at `cap_ms`.
/// Same seed ⇒ same delay schedule, so retry timing is replayable in
/// chaos runs.
#[derive(Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    max_attempts: u32,
    attempt: u32,
    rng: Rng,
}

impl Backoff {
    /// A backoff allowing `max_attempts` total tries (so up to
    /// `max_attempts - 1` sleeps between them).
    pub fn new(base_ms: u64, cap_ms: u64, max_attempts: u32, seed: u64) -> Self {
        Backoff {
            base_ms,
            cap_ms,
            max_attempts,
            attempt: 0,
            rng: Rng::seed_from(seed ^ 0x6261_636b_6f66_6621),
        }
    }

    /// Delay to wait before the *next* attempt, or `None` when the
    /// attempt budget is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt + 1 >= self.max_attempts {
            return None;
        }
        let exp = self.base_ms.saturating_mul(1u64 << self.attempt.min(20));
        let jitter = 0.75 + 0.5 * self.rng.uniform01();
        let ms = ((exp as f64 * jitter) as u64).min(self.cap_ms);
        self.attempt += 1;
        Some(Duration::from_millis(ms))
    }

    /// Attempts consumed so far (via [`next_delay`](Self::next_delay)).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

/// Run `op` up to `max_attempts` times, sleeping a jittered exponential
/// delay between tries while `is_transient` says the error is worth
/// retrying. Returns the first success or the last error.
pub fn retry_with_backoff<T, E>(
    base_ms: u64,
    cap_ms: u64,
    max_attempts: u32,
    seed: u64,
    mut op: impl FnMut() -> Result<T, E>,
    mut is_transient: impl FnMut(&E) -> bool,
) -> Result<T, E> {
    let mut backoff = Backoff::new(base_ms, cap_ms, max_attempts, seed);
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                if !is_transient(&e) {
                    return Err(e);
                }
                match backoff.next_delay() {
                    Some(d) => std::thread::sleep(d),
                    None => return Err(e),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let collect = |seed| {
            let mut b = Backoff::new(10, 1_000, 5, seed);
            let mut ds = Vec::new();
            while let Some(d) = b.next_delay() {
                ds.push(d.as_millis() as u64);
            }
            ds
        };
        let a = collect(7);
        assert_eq!(a, collect(7), "same seed ⇒ same schedule");
        assert_eq!(a.len(), 4, "5 attempts ⇒ 4 sleeps");
        for (k, &ms) in a.iter().enumerate() {
            let exp = 10u64 << k;
            let lo = (exp as f64 * 0.75) as u64;
            let hi = (exp as f64 * 1.25) as u64 + 1;
            assert!(
                (lo..=hi).contains(&ms),
                "attempt {k}: {ms}ms vs [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn delays_are_capped() {
        let mut b = Backoff::new(100, 150, 10, 3);
        let mut last = 0;
        while let Some(d) = b.next_delay() {
            last = d.as_millis() as u64;
            assert!(last <= 150);
        }
        assert_eq!(last, 150, "tail of the schedule hits the cap");
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let mut calls = 0;
        let out: Result<u32, &str> = retry_with_backoff(
            0,
            0,
            5,
            1,
            || {
                calls += 1;
                if calls < 3 {
                    Err("transient")
                } else {
                    Ok(99)
                }
            },
            |_| true,
        );
        assert_eq!(out, Ok(99));
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_stops_on_permanent_errors_and_budget() {
        let mut calls = 0;
        let out: Result<(), &str> = retry_with_backoff(
            0,
            0,
            5,
            1,
            || {
                calls += 1;
                Err("permanent")
            },
            |_| false,
        );
        assert_eq!(out, Err("permanent"));
        assert_eq!(calls, 1, "permanent errors are not retried");

        let mut calls = 0;
        let out: Result<(), &str> = retry_with_backoff(
            0,
            0,
            3,
            1,
            || {
                calls += 1;
                Err("transient")
            },
            |_| true,
        );
        assert_eq!(out, Err("transient"));
        assert_eq!(calls, 3, "attempt budget is honored");
    }
}
