//! Trace-id minting and the propagation-header vocabulary.
//!
//! The router mints one id per routed request and stamps it on the
//! forwarded hop; workers parse it back and enter a
//! [`gendt_trace::trace_scope`] so their spans and flight-recorder
//! records correlate with the router's. Ids are process-unique (pid in
//! the top 32 bits, a counter below) and never 0 — 0 is the "no
//! context" sentinel throughout the workspace.

use gendt_sync::atomic::{AtomicU64, Ordering};

/// Request/response header carrying the 16-hex-digit trace id.
pub const TRACE_HEADER: &str = "Gendt-Trace-Id";

/// Request header carrying the parent span id minted by the router.
pub const PARENT_HEADER: &str = "Gendt-Parent-Span";

/// Response header on which a worker echoes its own
/// `gendt_trace::now_ns` reading, feeding clock-offset estimation.
pub const WORKER_TIME_HEADER: &str = "Gendt-Worker-Time-Ns";

static NEXT: AtomicU64 = AtomicU64::new(0);

/// Mint a process-unique trace (or span) id. Never returns 0.
pub fn mint() -> u64 {
    // sync: a pure id allocator; uniqueness needs only atomicity of the
    // increment, no ordering with any other state.
    let n = NEXT.fetch_add(1, Ordering::Relaxed).wrapping_add(1) & 0xFFFF_FFFF;
    ((std::process::id() as u64) << 32) | n.max(1)
}

/// Render an id as the 16-hex-digit header value.
pub fn format_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a header value minted by [`format_id`]. Returns `None` for
/// malformed input or the reserved 0 id.
pub fn parse_id(s: &str) -> Option<u64> {
    let t = s.trim();
    if t.is_empty() || t.len() > 16 {
        return None;
    }
    u64::from_str_radix(t, 16).ok().filter(|&v| v != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = mint();
        let b = mint();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn header_round_trip() {
        let id = mint();
        let s = format_id(id);
        assert_eq!(s.len(), 16);
        assert_eq!(parse_id(&s), Some(id));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_id(""), None);
        assert_eq!(parse_id("zzüge"), None);
        assert_eq!(parse_id("0"), None);
        assert_eq!(parse_id("00000000000000000"), None, "17 digits too long");
        assert_eq!(parse_id(" 1f "), Some(0x1f));
    }
}
