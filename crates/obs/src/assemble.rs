//! Merge per-process Chrome-trace drains into one clock-aligned
//! Perfetto timeline.
//!
//! Every process exports `/debug/trace` with timestamps in its own
//! trace epoch. The router additionally knows each worker's estimated
//! clock offset ([`crate::clock`]) and address, so a single
//! `gendt-obs assemble --router <addr>` can fetch all drains, shift
//! worker timestamps into the router's epoch, give each process its
//! own `pid` lane (router = 1, worker `wN` = N + 2), and emit one
//! Chrome Trace Event Format document in which a routed request's
//! router span visually contains its worker-side scheduler/batch spans
//! under the same `trace` arg.

use gendt_faults::GendtError;
use serde::{map_field, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Default per-request timeout for drain fetches.
pub const FETCH_TIMEOUT: Duration = Duration::from_millis(2500);

/// Minimal `GET` over a fresh connection (`Connection: close`), used
/// only by the offline assembler/report tooling — the serving path has
/// its own richer client in `gendt-fleet`.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<String, GendtError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| GendtError::from(e).wrap(format!("connecting to {addr}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(GendtError::from)?;
    let mut stream = stream;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| GendtError::from(e).wrap(format!("sending GET {path} to {addr}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| GendtError::from(e).wrap(format!("reading GET {path} from {addr}")))?;
    let text = String::from_utf8_lossy(&raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(GendtError::internal(format!(
            "malformed HTTP response from {addr}{path}"
        )));
    };
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if status != 200 {
        return Err(GendtError::unavailable(format!(
            "GET {addr}{path} returned {status}"
        )));
    }
    Ok(body.to_string())
}

/// One process's drain, ready to merge.
pub struct ProcessDrain {
    /// Worker id (`w0`, ...) — determines the output `pid` lane.
    pub id: String,
    /// Clock offset to add to this process's timestamps, nanoseconds.
    pub offset_ns: i64,
    /// The raw `/debug/trace` JSON body.
    pub json: String,
}

/// Extract the `spans.traceEvents` array from a `/debug/trace` body.
fn trace_events(body: &str, who: &str) -> Result<Vec<Value>, GendtError> {
    let doc: Value = serde_json::from_str(body)
        .map_err(|e| GendtError::internal(format!("{who} /debug/trace: bad JSON: {e}")))?;
    let map = doc
        .as_map_for("debug-trace body")
        .map_err(|e| GendtError::internal(format!("{who}: {e}")))?;
    let spans = map_field(map, "spans", "debug-trace body")
        .map_err(|e| GendtError::internal(format!("{who}: {e}")))?;
    let smap = spans
        .as_map_for("spans")
        .map_err(|e| GendtError::internal(format!("{who}: {e}")))?;
    let events = map_field(smap, "traceEvents", "spans")
        .map_err(|e| GendtError::internal(format!("{who}: {e}")))?;
    Ok(events
        .as_seq_for("traceEvents")
        .map_err(|e| GendtError::internal(format!("{who}: {e}")))?
        .to_vec())
}

/// Rewrite one event into the merged timeline: assign `pid`, shift
/// `ts` by the process offset (microseconds).
fn shifted(ev: &Value, pid: i64, offset_us: f64) -> Value {
    let Value::Map(fields) = ev else {
        return ev.clone();
    };
    let rewritten = fields
        .iter()
        .map(|(k, v)| match (k.as_str(), v) {
            ("pid", _) => (k.clone(), Value::Int(pid as i128)),
            ("ts", Value::Float(t)) => (k.clone(), Value::Float(t + offset_us)),
            ("ts", Value::Int(t)) => (k.clone(), Value::Float(*t as f64 + offset_us)),
            _ => (k.clone(), v.clone()),
        })
        .collect();
    Value::Map(rewritten)
}

/// Chrome metadata event naming a `pid` lane.
fn process_name(pid: i64, name: &str) -> Value {
    Value::Map(vec![
        ("name".to_string(), Value::Str("process_name".to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::Int(pid as i128)),
        (
            "args".to_string(),
            Value::Map(vec![("name".to_string(), Value::Str(name.to_string()))]),
        ),
    ])
}

/// The `pid` lane of a worker id: `wN` → N + 2 (router is 1). Unknown
/// ids get lanes after the fallback base.
fn worker_pid(id: &str, index: usize) -> i64 {
    id.strip_prefix('w')
        .and_then(|n| n.parse::<i64>().ok())
        .map_or(1000 + index as i64, |n| n + 2)
}

/// Merge the router drain and worker drains into one clock-aligned
/// Chrome-trace JSON document. Pure function of its inputs — the HTTP
/// fetching lives in [`assemble`].
pub fn assemble_from_parts(
    router_json: &str,
    workers: &[ProcessDrain],
) -> Result<String, GendtError> {
    let mut merged: Vec<Value> = Vec::new();
    merged.push(process_name(1, "gendt-fleet router"));
    for ev in trace_events(router_json, "router")? {
        merged.push(shifted(&ev, 1, 0.0));
    }
    for (i, w) in workers.iter().enumerate() {
        let pid = worker_pid(&w.id, i);
        merged.push(process_name(pid, &format!("gendt-serve {}", w.id)));
        let offset_us = w.offset_ns as f64 / 1000.0;
        for ev in trace_events(&w.json, &w.id)? {
            merged.push(shifted(&ev, pid, offset_us));
        }
    }
    let doc = Value::Map(vec![("traceEvents".to_string(), Value::Seq(merged))]);
    serde_json::to_string(&doc)
        .map_err(|e| GendtError::internal(format!("rendering merged trace: {e}")))
}

/// Fetch the router's `/v1/debug/trace` (which carries worker
/// addresses and clock offsets), fetch every reachable worker's drain,
/// and merge. Unreachable workers are skipped — assembling a timeline
/// after a worker crash is exactly when this tool is needed.
pub fn assemble(router_addr: &str) -> Result<String, GendtError> {
    let router_json = http_get(router_addr, "/v1/debug/trace", FETCH_TIMEOUT)
        .map_err(|e| e.wrap("fetching router drain"))?;
    let doc: Value = serde_json::from_str(&router_json)
        .map_err(|e| GendtError::internal(format!("router /debug/trace: bad JSON: {e}")))?;
    let map = doc
        .as_map_for("router debug-trace body")
        .map_err(|e| GendtError::internal(e.to_string()))?;
    let mut workers = Vec::new();
    if let Ok(list) = map_field(map, "workers", "router debug-trace body") {
        for (id, addr) in list.as_map_for("workers").unwrap_or(&[]) {
            let Ok(addr) = addr.as_str_for("worker addr") else {
                continue;
            };
            let offset_ns = offset_for(map, id);
            match http_get(addr, "/v1/debug/trace", FETCH_TIMEOUT) {
                Ok(json) => workers.push(ProcessDrain {
                    id: id.clone(),
                    offset_ns,
                    json,
                }),
                Err(e) => {
                    gendt_trace::error!("gendt-obs: skipping {id} ({addr}): {e}");
                }
            }
        }
    }
    assemble_from_parts(&router_json, &workers)
}

/// The router-estimated clock offset for `id`, 0 when absent.
fn offset_for(router_map: &[(String, Value)], id: &str) -> i64 {
    let Ok(offsets) = map_field(router_map, "offsets", "router debug-trace body") else {
        return 0;
    };
    let Ok(omap) = offsets.as_map_for("offsets") else {
        return 0;
    };
    let Ok(entry) = map_field(omap, id, "offsets") else {
        return 0;
    };
    let Ok(emap) = entry.as_map_for("offset entry") else {
        return 0;
    };
    map_field(emap, "offset_ns", "offset entry")
        .and_then(|v| v.as_int_for("offset_ns"))
        .map_or(0, |v| v as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(events: &str) -> String {
        format!("{{\"enabled\":true,\"dropped\":0,\"spans\":{{\"traceEvents\":[{events}]}}}}")
    }

    fn ev(name: &str, ts: f64, dur: f64, trace: u64) -> String {
        format!(
            "{{\"name\":\"{name}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{ts:.3},\
             \"dur\":{dur:.3},\"pid\":1,\"tid\":0,\"args\":{{\"trace\":{trace}}}}}"
        )
    }

    #[test]
    fn merges_lanes_and_aligns_clocks() {
        let router = body(&ev("fleet_forward", 1000.0, 500.0, 42));
        // Worker span at local ts 100 µs; offset +1 ms puts it at 1100,
        // inside the router's forward span.
        let workers = [ProcessDrain {
            id: "w0".to_string(),
            offset_ns: 1_000_000,
            json: body(&ev("serve_batch", 100.0, 200.0, 42)),
        }];
        let json = assemble_from_parts(&router, &workers).expect("assemble");
        let doc: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = doc
            .as_map_for("doc")
            .and_then(|m| map_field(m, "traceEvents", "doc"))
            .and_then(|v| v.as_seq_for("traceEvents"))
            .expect("traceEvents")
            .to_vec();
        // 2 metadata + 2 spans.
        assert_eq!(events.len(), 4);
        let find = |name: &str| {
            events
                .iter()
                .find_map(|e| {
                    let m = e.as_map_for("ev").ok()?;
                    let n = map_field(m, "name", "ev").ok()?.as_str_for("name").ok()?;
                    (n == name).then(|| m.to_vec())
                })
                .unwrap_or_else(|| panic!("missing event {name}"))
        };
        let fwd = find("fleet_forward");
        let batch = find("serve_batch");
        let f64_of = |m: &[(String, Value)], k: &str| {
            map_field(m, k, "ev")
                .and_then(|v| v.as_f64_for(k))
                .expect("number")
        };
        assert_eq!(f64_of(&fwd, "pid"), 1.0);
        assert_eq!(f64_of(&batch, "pid"), 2.0, "w0 lane is pid 2");
        let b_ts = f64_of(&batch, "ts");
        assert!((b_ts - 1100.0).abs() < 1e-9, "shifted ts, got {b_ts}");
        // Clock-aligned nesting: worker span inside the router span.
        let f_ts = f64_of(&fwd, "ts");
        let f_end = f_ts + f64_of(&fwd, "dur");
        assert!(b_ts >= f_ts && b_ts + f64_of(&batch, "dur") <= f_end);
    }

    #[test]
    fn negative_offset_shifts_backwards() {
        let router = body(&ev("fleet_forward", 1000.0, 10.0, 1));
        let workers = [ProcessDrain {
            id: "w3".to_string(),
            offset_ns: -500_000,
            json: body(&ev("serve_batch", 700.0, 1.0, 1)),
        }];
        let json = assemble_from_parts(&router, &workers).expect("assemble");
        assert!(json.contains("\"ts\":200"), "{json}");
        assert!(json.contains("gendt-serve w3"), "{json}");
    }

    #[test]
    fn rejects_malformed_drains() {
        assert!(assemble_from_parts("not json", &[]).is_err());
        assert!(assemble_from_parts("{\"spans\":[]}", &[]).is_err());
    }
}
