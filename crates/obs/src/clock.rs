//! Per-worker clock-offset estimation from forward request/response
//! timestamps.
//!
//! Each process's `gendt_trace::now_ns` is anchored at its own first
//! use, so raw span timestamps from different processes share no
//! epoch. The router already brackets every forward hop with two
//! clock reads; with the worker echoing its own clock in the
//! `Gendt-Worker-Time-Ns` response header, the classic NTP midpoint
//! estimate falls out for free:
//!
//! ```text
//! offset ≈ (t0 + t1) / 2 − worker_ns        (router − worker)
//! ```
//!
//! The error is bounded by half the round trip, so the table keeps the
//! sample with the smallest RTT per worker — on loopback that is a few
//! tens of microseconds, far below the span durations being aligned.

use gendt_sync::Mutex;
use std::collections::BTreeMap;

/// One worker's best offset estimate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OffsetEst {
    /// Router clock minus worker clock, nanoseconds: add this to a
    /// worker timestamp to land in the router's epoch.
    pub offset_ns: i64,
    /// Round trip of the winning sample (the error bound is rtt/2).
    pub rtt_ns: u64,
}

/// Best-known clock offsets, keyed by worker id (`w0`, `w1`, ...).
pub struct ClockTable {
    inner: Mutex<BTreeMap<String, OffsetEst>>,
}

impl ClockTable {
    /// An empty table (usable in statics).
    pub const fn new() -> ClockTable {
        ClockTable {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Feed one forward-hop sample: router clock before (`t0_ns`) and
    /// after (`t1_ns`) the hop, and the worker's echoed clock reading.
    /// Keeps the estimate whose round trip is smallest.
    pub fn update(&self, worker: &str, t0_ns: u64, t1_ns: u64, worker_ns: u64) {
        let rtt = t1_ns.saturating_sub(t0_ns);
        let midpoint = t0_ns + rtt / 2;
        let est = OffsetEst {
            offset_ns: midpoint as i64 - worker_ns as i64,
            rtt_ns: rtt,
        };
        let mut map = self.inner.lock();
        match map.get_mut(worker) {
            Some(cur) if cur.rtt_ns <= rtt => {}
            Some(cur) => *cur = est,
            None => {
                map.insert(worker.to_string(), est);
            }
        }
    }

    /// Current best estimate for one worker.
    pub fn get(&self, worker: &str) -> Option<OffsetEst> {
        self.inner.lock().get(worker).copied()
    }

    /// All current estimates, sorted by worker id.
    pub fn snapshot(&self) -> Vec<(String, OffsetEst)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Render the table as the JSON object embedded in the router's
    /// `/debug/trace` body.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (id, est)) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{id}\":{{\"offset_ns\":{},\"rtt_ns\":{}}}",
                est.offset_ns, est.rtt_ns
            ));
        }
        out.push('}');
        out
    }
}

impl Default for ClockTable {
    fn default() -> Self {
        ClockTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midpoint_estimate() {
        let t = ClockTable::new();
        // Router clock 1000..2000 around the hop; worker reported 300.
        // Midpoint 1500 → offset 1200, rtt 1000.
        t.update("w0", 1000, 2000, 300);
        assert_eq!(
            t.get("w0"),
            Some(OffsetEst {
                offset_ns: 1200,
                rtt_ns: 1000
            })
        );
    }

    #[test]
    fn smaller_rtt_wins() {
        let t = ClockTable::new();
        t.update("w0", 1000, 2000, 300);
        // Tighter bracket: rtt 100, midpoint 5050, offset 4750.
        t.update("w0", 5000, 5100, 300);
        assert_eq!(t.get("w0").map(|e| e.rtt_ns), Some(100));
        // A worse sample cannot displace it.
        t.update("w0", 9000, 9900, 300);
        assert_eq!(t.get("w0").map(|e| e.rtt_ns), Some(100));
    }

    #[test]
    fn negative_offsets_survive() {
        let t = ClockTable::new();
        // Worker clock ahead of the router's.
        t.update("w1", 100, 200, 10_000);
        assert_eq!(t.get("w1").map(|e| e.offset_ns), Some(150 - 10_000));
        let json = t.to_json();
        assert!(json.contains("\"w1\":{\"offset_ns\":-9850"), "{json}");
    }
}
