//! Rolling-window SLO accounting and burn-rate gauges for the router.
//!
//! Two SLOs over routed `/v1/generate` traffic:
//!
//! * **availability** — a request is good unless it failed with a
//!   server-side error (5xx);
//! * **latency** — a request is good when it succeeded within the
//!   configured threshold.
//!
//! Good/total counts accumulate into one-second buckets in a fixed
//! ring sized for the longest window, and ratios are read over the
//! standard fast/slow burn-rate window pair. The burn rate is the
//! classic SRE quantity `(1 − ratio) / (1 − target)`: 1.0 burns the
//! error budget exactly at the sustainable rate, 14+ on the fast
//! window is page-now territory. Time is passed in by the caller
//! (seconds of `gendt_trace::now_ns`), keeping this module clock-free
//! and deterministic to test.

use gendt_sync::Mutex;

/// Ring capacity in seconds; also the longest supported window.
const RING_SECONDS: usize = 300;

/// The fast/slow window pair exported as gauges.
pub const WINDOWS_S: [u64; 2] = [60, 300];

/// SLO configuration.
#[derive(Clone, Copy, Debug)]
pub struct SloCfg {
    /// Latency threshold for the latency SLO, milliseconds.
    pub latency_ms: f64,
    /// Availability target (fraction of good requests), e.g. 0.999.
    pub availability_target: f64,
    /// Latency target (fraction within threshold), e.g. 0.99.
    pub latency_target: f64,
}

impl Default for SloCfg {
    fn default() -> Self {
        SloCfg {
            latency_ms: 250.0,
            availability_target: 0.999,
            latency_target: 0.99,
        }
    }
}

#[derive(Clone, Copy, Default)]
struct Bucket {
    /// Absolute second this bucket currently holds (ring slots are
    /// reused; a stale `sec` means the slot counts as empty).
    sec: u64,
    total: u64,
    good_avail: u64,
    good_latency: u64,
}

/// Windowed good/total accounting for one process's routed traffic.
pub struct SloTracker {
    cfg: SloCfg,
    ring: Mutex<Vec<Bucket>>,
}

/// Ratios over one window, plus the request count backing them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowRatios {
    /// Fraction of requests that were available (1.0 when idle).
    pub availability: f64,
    /// Fraction of requests within the latency threshold (1.0 when
    /// idle).
    pub latency: f64,
    /// Requests observed in the window.
    pub total: u64,
}

impl SloTracker {
    /// Fresh tracker.
    pub fn new(cfg: SloCfg) -> SloTracker {
        SloTracker {
            cfg,
            ring: Mutex::new(vec![Bucket::default(); RING_SECONDS]),
        }
    }

    /// The configuration this tracker scores against.
    pub fn cfg(&self) -> SloCfg {
        self.cfg
    }

    /// Record one routed request finishing at absolute second `now_s`.
    /// `available` = no server-side failure; `latency_ms` = end-to-end
    /// latency (scored only when available).
    pub fn record(&self, now_s: u64, available: bool, latency_ms: f64) {
        let mut ring = self.ring.lock();
        let slot = (now_s as usize) % RING_SECONDS;
        let b = &mut ring[slot];
        if b.sec != now_s {
            *b = Bucket {
                sec: now_s,
                ..Bucket::default()
            };
        }
        b.total += 1;
        if available {
            b.good_avail += 1;
            if latency_ms <= self.cfg.latency_ms {
                b.good_latency += 1;
            }
        }
    }

    /// Ratios over the trailing `window_s` seconds ending at `now_s`.
    /// An idle window reports 1.0 — no traffic burns no budget.
    pub fn ratios(&self, now_s: u64, window_s: u64) -> WindowRatios {
        let window_s = window_s.min(RING_SECONDS as u64);
        let lo = now_s.saturating_sub(window_s.saturating_sub(1));
        let ring = self.ring.lock();
        let (mut total, mut avail, mut lat) = (0u64, 0u64, 0u64);
        for b in ring.iter() {
            if b.sec >= lo && b.sec <= now_s && b.total > 0 {
                total += b.total;
                avail += b.good_avail;
                lat += b.good_latency;
            }
        }
        if total == 0 {
            return WindowRatios {
                availability: 1.0,
                latency: 1.0,
                total: 0,
            };
        }
        WindowRatios {
            availability: avail as f64 / total as f64,
            latency: lat as f64 / total as f64,
            total,
        }
    }

    /// Render the SLO gauges for the router's `/v1/metrics`: per
    /// window, the two ratios, the two burn rates, and the request
    /// count.
    pub fn render(&self, now_s: u64) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(
            "# HELP gendt_fleet_slo_availability_ratio Fraction of routed requests without server-side failure.\n# TYPE gendt_fleet_slo_availability_ratio gauge\n",
        );
        out.push_str(
            "# HELP gendt_fleet_slo_latency_ratio Fraction of routed requests within the latency threshold.\n# TYPE gendt_fleet_slo_latency_ratio gauge\n",
        );
        for &w in &WINDOWS_S {
            let r = self.ratios(now_s, w);
            out.push_str(&format!(
                "gendt_fleet_slo_availability_ratio{{window=\"{w}s\"}} {}\n",
                r.availability
            ));
            out.push_str(&format!(
                "gendt_fleet_slo_latency_ratio{{window=\"{w}s\"}} {}\n",
                r.latency
            ));
            out.push_str(&format!(
                "gendt_fleet_slo_availability_burn_rate{{window=\"{w}s\"}} {}\n",
                burn_rate(r.availability, self.cfg.availability_target)
            ));
            out.push_str(&format!(
                "gendt_fleet_slo_latency_burn_rate{{window=\"{w}s\"}} {}\n",
                burn_rate(r.latency, self.cfg.latency_target)
            ));
            out.push_str(&format!(
                "gendt_fleet_slo_requests{{window=\"{w}s\"}} {}\n",
                r.total
            ));
        }
        out.push_str(&format!(
            "gendt_fleet_slo_latency_threshold_ms {}\n",
            self.cfg.latency_ms
        ));
        out
    }
}

/// `(1 − ratio) / (1 − target)`: the error-budget burn multiplier.
pub fn burn_rate(ratio: f64, target: f64) -> f64 {
    let budget = (1.0 - target).max(1e-9);
    ((1.0 - ratio) / budget).max(0.0)
}

/// Build the human `gendt-obs slo` report from a scraped router
/// `/v1/metrics` exposition.
pub fn report_from_text(text: &str) -> String {
    let samples = crate::promtext::parse_samples(text);
    let find = |name: &str, window: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels == format!("window=\"{window}\""))
            .map(|s| s.value)
    };
    let threshold = samples
        .iter()
        .find(|s| s.name == "gendt_fleet_slo_latency_threshold_ms")
        .map_or(f64::NAN, |s| s.value);
    let mut out = String::new();
    out.push_str(&format!(
        "SLO report (latency threshold {threshold} ms)\n\
         {:<8} {:>10} {:>12} {:>10} {:>12} {:>10}\n",
        "window", "requests", "avail", "burn", "latency", "burn"
    ));
    for &w in &WINDOWS_S {
        let win = format!("{w}s");
        let row = |name: &str| find(name, &win);
        let (Some(req), Some(ar), Some(ab), Some(lr), Some(lb)) = (
            row("gendt_fleet_slo_requests"),
            row("gendt_fleet_slo_availability_ratio"),
            row("gendt_fleet_slo_availability_burn_rate"),
            row("gendt_fleet_slo_latency_ratio"),
            row("gendt_fleet_slo_latency_burn_rate"),
        ) else {
            out.push_str(&format!("{win:<8} (no slo series in scrape)\n"));
            continue;
        };
        out.push_str(&format!(
            "{win:<8} {req:>10} {ar:>12.5} {ab:>10.2} {lr:>12.5} {lb:>10.2}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_window_is_perfect() {
        let t = SloTracker::new(SloCfg::default());
        let r = t.ratios(1000, 60);
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.latency, 1.0);
        assert_eq!(r.total, 0);
    }

    #[test]
    fn ratios_track_good_and_bad() {
        let t = SloTracker::new(SloCfg {
            latency_ms: 100.0,
            ..SloCfg::default()
        });
        // 8 good-fast, 1 good-slow, 1 unavailable at t=500.
        for _ in 0..8 {
            t.record(500, true, 50.0);
        }
        t.record(500, true, 500.0);
        t.record(500, false, 0.0);
        let r = t.ratios(500, 60);
        assert_eq!(r.total, 10);
        assert!((r.availability - 0.9).abs() < 1e-12);
        assert!((r.latency - 0.8).abs() < 1e-12);
    }

    #[test]
    fn old_buckets_age_out_of_the_window() {
        let t = SloTracker::new(SloCfg::default());
        t.record(100, false, 0.0);
        assert!((t.ratios(100, 60).availability - 0.0).abs() < 1e-12);
        // 60 s later the failure has left the fast window but not the
        // slow one.
        t.record(160, true, 1.0);
        assert_eq!(t.ratios(160, 60).availability, 1.0);
        assert!((t.ratios(160, 300).availability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ring_reuses_slots_across_wraps() {
        let t = SloTracker::new(SloCfg::default());
        t.record(10, false, 0.0);
        // Same slot index 300 s later must not resurrect the old count.
        t.record(10 + RING_SECONDS as u64, true, 1.0);
        let r = t.ratios(10 + RING_SECONDS as u64, 300);
        assert_eq!(r.total, 1);
        assert_eq!(r.availability, 1.0);
    }

    #[test]
    fn burn_rate_scales_with_budget() {
        assert!((burn_rate(1.0, 0.999) - 0.0).abs() < 1e-12);
        assert!((burn_rate(0.999, 0.999) - 1.0).abs() < 1e-9);
        assert!((burn_rate(0.99, 0.999) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn render_and_report_round_trip() {
        let t = SloTracker::new(SloCfg::default());
        t.record(42, true, 10.0);
        t.record(42, false, 0.0);
        let text = t.render(42);
        assert!(text.contains("gendt_fleet_slo_availability_ratio{window=\"60s\"} 0.5"));
        assert!(text.contains("gendt_fleet_slo_requests{window=\"300s\"} 2"));
        let report = report_from_text(&text);
        assert!(report.contains("60s"), "{report}");
        assert!(report.contains("0.5"), "{report}");
    }
}
