//! Prometheus text-exposition parsing, relabeling, and federation
//! merging.
//!
//! The fleet router scrapes every live worker's `/v1/metrics` and
//! re-exports a merged view: counters summed, histogram buckets
//! merged, per-worker series preserved under a `worker=` label.
//! Workers expose sparse cumulative buckets (`name_bucket{le="u"} c`
//! emitted only where the cumulative count steps), so the merge treats
//! each worker's cumulative curve as a step function — exact for any
//! union of `le` edges, associative, and order-independent, mirroring
//! `gendt_metrics::Histogram::merge` at the text layer.

use std::collections::BTreeMap;

/// One parsed sample line: `name{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Raw label body without braces (`""` when unlabeled), e.g.
    /// `le="25"` or `quantile="0.5"`.
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

/// Parse every sample line of a text exposition; `# HELP`/`# TYPE`
/// comments and malformed lines are skipped (a scrape must degrade,
/// not fail).
pub fn parse_samples(text: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = parse_value(value) else {
            continue;
        };
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => match rest.strip_suffix('}') {
                Some(l) => (n, l),
                None => continue,
            },
            None => (series, ""),
        };
        if name.is_empty() {
            continue;
        }
        out.push(Sample {
            name: name.to_string(),
            labels: labels.to_string(),
            value,
        });
    }
    out
}

fn parse_value(s: &str) -> Result<f64, std::num::ParseFloatError> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        _ => s.parse::<f64>(),
    }
}

fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Look up the value of an unlabeled sample by exact name.
pub fn sample_value(text: &str, name: &str) -> Option<f64> {
    parse_samples(text)
        .into_iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .map(|s| s.value)
}

/// Re-emit every sample line with an extra `key="val"` label injected,
/// dropping comment lines (the federated view declares types once, on
/// the merged series). This is how per-worker series survive
/// federation under a `worker=` label.
pub fn relabel(text: &str, key: &str, val: &str) -> String {
    let mut out = String::with_capacity(text.len() + 256);
    for s in parse_samples(text) {
        let labels = if s.labels.is_empty() {
            format!("{key}=\"{val}\"")
        } else {
            format!("{key}=\"{val}\",{}", s.labels)
        };
        out.push_str(&format!("{}{{{labels}}} {}\n", s.name, fmt_value(s.value)));
    }
    out
}

/// The `le` edge of a bucket sample's label, if present.
fn le_of(labels: &str) -> Option<f64> {
    for part in labels.split(',') {
        if let Some(v) = part.trim().strip_prefix("le=") {
            let v = v.trim_matches('"');
            return parse_value(v).ok();
        }
    }
    None
}

/// Cumulative count at `le` of a step function given by sorted
/// `(edge, cumulative)` points: the value at the greatest edge ≤ `le`
/// (0 below the first). Exact for sparse cumulative buckets, whose
/// curve only moves at emitted edges.
fn step_at(points: &[(f64, f64)], le: f64) -> f64 {
    let mut acc = 0.0;
    for &(edge, cum) in points {
        if edge <= le {
            acc = cum;
        } else {
            break;
        }
    }
    acc
}

/// Quantile from merged cumulative buckets: the smallest edge whose
/// cumulative count reaches `q * total`. NaN when empty.
pub fn bucket_quantile(points: &[(f64, f64)], q: f64) -> f64 {
    let total = points.last().map_or(0.0, |&(_, c)| c);
    if total <= 0.0 {
        return f64::NAN;
    }
    let rank = q.clamp(0.0, 1.0) * total;
    for &(edge, cum) in points {
        if cum >= rank {
            return edge;
        }
    }
    points.last().map_or(f64::NAN, |&(e, _)| e)
}

/// Merge N worker expositions into one federated text block:
///
/// * `*_total` / `*_count` counters and plain gauges — summed per
///   `(name, labels)`;
/// * `*_bucket` families — cumulative step-merged over the union of
///   `le` edges, with `quantile=` summary lines recomputed from the
///   merged buckets;
/// * scraped `quantile=` lines — dropped (quantiles of quantiles are
///   meaningless; the per-worker view preserves the originals).
///
/// Output lines are sorted, so the merge is order-independent.
pub fn merge(texts: &[&str]) -> String {
    // (name, labels) -> summed value for sum-mergeable series.
    let mut sums: BTreeMap<(String, String), f64> = BTreeMap::new();
    // bucket family name -> per-input sorted (le, cumulative) curves.
    let mut buckets: BTreeMap<String, Vec<Vec<(f64, f64)>>> = BTreeMap::new();
    for text in texts {
        let mut local: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for s in parse_samples(text) {
            if s.labels.contains("quantile=") {
                continue;
            }
            if s.name.ends_with("_bucket") {
                if let Some(le) = le_of(&s.labels) {
                    local.entry(s.name.clone()).or_default().push((le, s.value));
                    continue;
                }
            }
            *sums.entry((s.name, s.labels)).or_insert(0.0) += s.value;
        }
        for (name, mut curve) in local {
            curve.sort_by(|a, b| a.0.total_cmp(&b.0));
            buckets.entry(name).or_default().push(curve);
        }
    }
    let mut out = String::new();
    for ((name, labels), v) in &sums {
        if labels.is_empty() {
            out.push_str(&format!("{name} {}\n", fmt_value(*v)));
        } else {
            out.push_str(&format!("{name}{{{labels}}} {}\n", fmt_value(*v)));
        }
    }
    for (name, curves) in &buckets {
        // Union of edges across workers, then the summed step values.
        let mut edges: Vec<f64> = curves.iter().flatten().map(|&(e, _)| e).collect();
        edges.sort_by(|a, b| a.total_cmp(b));
        edges.dedup();
        let merged: Vec<(f64, f64)> = edges
            .iter()
            .map(|&le| (le, curves.iter().map(|c| step_at(c, le)).sum()))
            .collect();
        for &(le, cum) in &merged {
            out.push_str(&format!(
                "{name}{{le=\"{}\"}} {}\n",
                fmt_value(le),
                fmt_value(cum)
            ));
        }
        let base = name.trim_end_matches("_bucket");
        for (label, q) in [
            ("0.5", 0.5),
            ("0.95", 0.95),
            ("0.99", 0.99),
            ("0.999", 0.999),
        ] {
            let v = bucket_quantile(&merged, q);
            if v.is_nan() {
                continue;
            }
            out.push_str(&format!(
                "{base}{{quantile=\"{label}\"}} {}\n",
                fmt_value(v)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const W0: &str = "# HELP x_total help\n# TYPE x_total counter\n\
                      x_total 3\n\
                      lat_ms{quantile=\"0.5\"} 4\n\
                      lat_ms_bucket{le=\"10\"} 2\n\
                      lat_ms_bucket{le=\"+Inf\"} 3\n\
                      lat_ms_count 3\n";
    const W1: &str = "x_total 4\n\
                      lat_ms{quantile=\"0.5\"} 9\n\
                      lat_ms_bucket{le=\"20\"} 5\n\
                      lat_ms_bucket{le=\"+Inf\"} 5\n\
                      lat_ms_count 5\n";

    #[test]
    fn parses_names_labels_values() {
        let s = parse_samples(W0);
        assert_eq!(
            s[0],
            Sample {
                name: "x_total".into(),
                labels: "".into(),
                value: 3.0
            }
        );
        assert_eq!(s[2].name, "lat_ms_bucket");
        assert_eq!(s[2].labels, "le=\"10\"");
        assert!(s.iter().all(|x| x.value.is_finite()));
        assert_eq!(sample_value(W0, "x_total"), Some(3.0));
        assert_eq!(sample_value(W0, "lat_ms_count"), Some(3.0));
        assert_eq!(sample_value(W0, "missing"), None);
    }

    #[test]
    fn relabel_injects_worker_label() {
        let r = relabel(W1, "worker", "w1");
        assert!(r.contains("x_total{worker=\"w1\"} 4"), "{r}");
        assert!(
            r.contains("lat_ms_bucket{worker=\"w1\",le=\"20\"} 5"),
            "{r}"
        );
        assert!(!r.contains('#'), "comments dropped: {r}");
    }

    #[test]
    fn merge_sums_counters_and_buckets() {
        let m = merge(&[W0, W1]);
        assert!(m.contains("x_total 7\n"), "{m}");
        assert!(m.contains("lat_ms_count 8\n"), "{m}");
        // le=10: w0 has 2, w1's curve is still 0 below its first edge.
        assert!(m.contains("lat_ms_bucket{le=\"10\"} 2\n"), "{m}");
        // le=20: w0's curve holds at 2 (next step only at +Inf), w1 has 5.
        assert!(m.contains("lat_ms_bucket{le=\"20\"} 7\n"), "{m}");
        assert!(m.contains("lat_ms_bucket{le=\"+Inf\"} 8\n"), "{m}");
        // Scraped per-worker quantiles are dropped; merged ones are
        // recomputed from the merged buckets (p50 of 8 obs = rank 4,
        // first edge reaching 4 is le=20).
        assert!(m.contains("lat_ms{quantile=\"0.5\"} 20\n"), "{m}");
    }

    #[test]
    fn merge_is_order_independent() {
        assert_eq!(merge(&[W0, W1]), merge(&[W1, W0]));
    }

    #[test]
    fn merge_is_associative() {
        let w2 = "x_total 10\nlat_ms_bucket{le=\"10\"} 1\nlat_ms_bucket{le=\"+Inf\"} 1\n";
        let ab = merge(&[W0, W1]);
        let left = merge(&[&ab, w2]);
        let bc = merge(&[W1, w2]);
        let right = merge(&[W0, &bc]);
        assert_eq!(left, right);
    }

    #[test]
    fn merge_matches_single_process_totals() {
        // One "process" that saw all the traffic of W0 and W1.
        let single = "x_total 7\n\
                      lat_ms_bucket{le=\"10\"} 2\n\
                      lat_ms_bucket{le=\"20\"} 7\n\
                      lat_ms_bucket{le=\"+Inf\"} 8\n\
                      lat_ms_count 8\n";
        let merged = merge(&[W0, W1]);
        for s in parse_samples(single) {
            let needle = if s.labels.is_empty() {
                format!("{} {}\n", s.name, fmt_value(s.value))
            } else {
                format!("{}{{{}}} {}\n", s.name, s.labels, fmt_value(s.value))
            };
            assert!(merged.contains(&needle), "missing {needle:?} in:\n{merged}");
        }
    }

    #[test]
    fn bucket_quantile_steps() {
        let pts = [(10.0, 2.0), (20.0, 7.0), (f64::INFINITY, 8.0)];
        assert_eq!(bucket_quantile(&pts, 0.0), 10.0);
        assert_eq!(bucket_quantile(&pts, 0.25), 10.0);
        assert_eq!(bucket_quantile(&pts, 0.5), 20.0);
        assert!(bucket_quantile(&pts, 0.999).is_infinite());
        assert!(bucket_quantile(&[], 0.5).is_nan());
    }
}
