//! `gendt-obs` — fleet observability CLI.
//!
//! * `gendt-obs assemble --router <addr> [--out <file>]` — fetch the
//!   router's and every worker's Chrome-trace drains and merge them
//!   into one clock-aligned timeline (open in Perfetto).
//! * `gendt-obs slo --router <addr>` — scrape the router's
//!   `/v1/metrics` and print the SLO burn-rate report.

#![forbid(unsafe_code)]

use gendt_obs::{assemble, slo};
use std::process::ExitCode;

const USAGE: &str = "usage:\n  \
    gendt-obs assemble --router <addr> [--out <file>]\n  \
    gendt-obs slo --router <addr>\n";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        gendt_trace::out!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(router) = flag(&args, "--router") else {
        gendt_trace::error!("gendt-obs {cmd}: missing --router <addr>");
        gendt_trace::out!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match cmd {
        "assemble" => match assemble::assemble(&router) {
            Ok(json) => {
                if let Some(path) = flag(&args, "--out") {
                    if let Err(e) = std::fs::write(&path, &json) {
                        gendt_trace::error!("gendt-obs assemble: writing {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    gendt_trace::out!(
                        "wrote {} bytes to {path} (open in https://ui.perfetto.dev)",
                        json.len()
                    );
                } else {
                    gendt_trace::out!("{json}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                gendt_trace::error!("gendt-obs assemble: {e}");
                ExitCode::FAILURE
            }
        },
        "slo" => match assemble::http_get(&router, "/v1/metrics", assemble::FETCH_TIMEOUT) {
            Ok(text) => {
                gendt_trace::out!("{}", slo::report_from_text(&text));
                ExitCode::SUCCESS
            }
            Err(e) => {
                gendt_trace::error!("gendt-obs slo: {e}");
                ExitCode::FAILURE
            }
        },
        other => {
            gendt_trace::error!("gendt-obs: unknown command {other:?}");
            gendt_trace::out!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
