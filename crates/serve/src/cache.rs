//! Context cache: repeated trajectories skip `gendt_data::extract`.
//!
//! Extraction walks every trajectory point against the deployment's
//! cell set, which dominates request latency for long routes. The cache
//! keys on an FNV-1a hash of the full trajectory specification plus the
//! `ContextCfg` the model extracts with, so two requests for the same
//! route and the same extraction settings share one `Arc<RunContext>`.
//! Eviction is least-recently-used over a fixed capacity.

use gendt_data::context::{ContextCfg, RunContext};
use gendt_sync::atomic::{AtomicU64, Ordering};
use gendt_sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// FNV-1a, 64-bit.
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Cache key for one (trajectory spec, extraction cfg) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ContextKey(u64);

impl ContextKey {
    /// Hash a trajectory specification together with the extraction
    /// configuration. Floats hash by their exact bit patterns — two
    /// requests share a context only when every parameter is identical.
    pub fn new(
        scenario: &str,
        duration_s: f64,
        start_x: f64,
        start_y: f64,
        traj_seed: u64,
        cfg: &ContextCfg,
    ) -> ContextKey {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = fnv1a(scenario.as_bytes(), h);
        for v in [duration_s, start_x, start_y] {
            h = fnv1a(&v.to_bits().to_le_bytes(), h);
        }
        h = fnv1a(&traj_seed.to_le_bytes(), h);
        for v in [cfg.d_s, cfg.env_radius_m, cfg.coord_scale_m] {
            h = fnv1a(&v.to_bits().to_le_bytes(), h);
        }
        h = fnv1a(&(cfg.max_cells as u64).to_le_bytes(), h);
        ContextKey(h)
    }
}

struct CacheInner {
    map: BTreeMap<ContextKey, (Arc<RunContext>, u64)>,
    tick: u64,
}

/// LRU cache of extracted contexts.
pub struct ContextCache {
    cap: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ContextCache {
    /// Cache holding at most `cap` contexts (at least one).
    pub fn new(cap: usize) -> ContextCache {
        ContextCache {
            cap: cap.max(1),
            inner: Mutex::new(CacheInner {
                map: BTreeMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a context, refreshing its recency on hit.
    pub fn get(&self, key: ContextKey) -> Option<Arc<RunContext>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some((ctx, last_used)) => {
                *last_used = tick;
                let ctx = ctx.clone();
                // sync: hit/miss are independent monotonic counters for
                // /metrics; the map itself is guarded by `inner`.
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(ctx)
            }
            None => {
                // sync: see the hit counter above.
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a context, evicting the least recently used entry when
    /// over capacity. (Extraction runs outside the cache lock; a racing
    /// duplicate insert is harmless — last writer wins.)
    pub fn insert(&self, key: ContextKey, ctx: Arc<RunContext>) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, (ctx, tick));
        while inner.map.len() > self.cap {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(k, _)| *k);
            match oldest {
                Some(k) => inner.map.remove(&k),
                None => break,
            };
        }
    }

    /// (hits, misses) counters for `/metrics`.
    pub fn stats(&self) -> (u64, u64) {
        (
            // sync: scrape of independent counters; no ordering needed.
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_of_len(n: usize) -> Arc<RunContext> {
        Arc::new(RunContext {
            steps: Vec::with_capacity(n),
        })
    }

    fn key(seed: u64) -> ContextKey {
        ContextKey::new("walk", 60.0, 0.0, 0.0, seed, &ContextCfg::default())
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = ContextCache::new(4);
        assert!(cache.get(key(1)).is_none());
        cache.insert(key(1), ctx_of_len(0));
        assert!(cache.get(key(1)).is_some());
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ContextCache::new(2);
        cache.insert(key(1), ctx_of_len(0));
        cache.insert(key(2), ctx_of_len(0));
        // Touch 1 so 2 is the LRU entry, then overflow.
        assert!(cache.get(key(1)).is_some());
        cache.insert(key(3), ctx_of_len(0));
        assert!(cache.get(key(2)).is_none(), "LRU entry survived eviction");
        assert!(cache.get(key(1)).is_some());
        assert!(cache.get(key(3)).is_some());
    }

    #[test]
    fn distinct_specs_get_distinct_keys() {
        let base = key(1);
        assert_ne!(
            base,
            ContextKey::new("walk", 60.0, 0.0, 0.0, 2, &ContextCfg::default())
        );
        assert_ne!(
            base,
            ContextKey::new("bus", 60.0, 0.0, 0.0, 1, &ContextCfg::default())
        );
        assert_ne!(
            base,
            ContextKey::new("walk", 61.0, 0.0, 0.0, 1, &ContextCfg::default())
        );
        let cfg = ContextCfg {
            max_cells: 3,
            ..ContextCfg::default()
        };
        assert_ne!(base, ContextKey::new("walk", 60.0, 0.0, 0.0, 1, &cfg));
    }
}
