//! Demo checkpoint for quickstarts, smoke tests, and the load generator:
//! a small Dataset-A model trained just far enough to produce sane KPIs,
//! in seconds, with no external data.

use gendt::checkpoint::save_model_to_file;
use gendt::{GenDt, GenDtCfg};
use gendt_data::builders::{dataset_a, BuildCfg};
use gendt_data::kpi_types::Kpi;
use gendt_faults::GendtError;
use std::path::Path;

/// Train the demo model: a reduced-size 4-channel (Dataset A) GenDT on
/// the quick synthetic build. Deterministic for a given seed.
pub fn demo_model(seed: u64) -> GenDt {
    let mut cfg = GenDtCfg::fast(4, seed);
    cfg.hidden = 8;
    cfg.resgen_hidden = 8;
    cfg.disc_hidden = 6;
    cfg.window.len = 10;
    cfg.window.stride = 10;
    cfg.window.max_cells = 3;
    cfg.steps = 4;
    cfg.batch_size = 4;
    let ds = dataset_a(&BuildCfg::quick(seed.wrapping_add(1)));
    let mut pool = Vec::new();
    for run in &ds.runs {
        let ctx = gendt_data::context::extract(
            &ds.world,
            &ds.deployment,
            &run.traj,
            &gendt_data::context::ContextCfg {
                max_cells: cfg.window.max_cells,
                ..gendt_data::context::ContextCfg::default()
            },
        );
        pool.extend(gendt_data::windows::windows(
            run,
            &ctx,
            &Kpi::DATASET_A,
            &cfg.window,
        ));
        if pool.len() >= 32 {
            break;
        }
    }
    let mut model = GenDt::new(cfg);
    model.train(&pool);
    model
}

/// Train the demo model and write its checkpoint to `path`.
pub fn write_demo_model(path: &Path, seed: u64) -> Result<(), GendtError> {
    let model = demo_model(seed);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| GendtError::from(e).wrap(format!("mkdir {}", dir.display())))?;
        }
    }
    save_model_to_file(&model, path)
        .map_err(|e| GendtError::io(format!("saving {}: {e}", path.display())))
}
