//! Micro-batching scheduler.
//!
//! `/generate` handlers submit jobs into a bounded queue; a worker
//! thread pops the oldest job and coalesces every queued job for the
//! *same model instance* into one batched forward pass, waiting up to
//! `max_wait_ms` for the batch to fill. Batching keys on the
//! `Arc<ModelEntry>` identity rather than the model name, so jobs
//! resolved before and after a `/reload` never share a batch — each
//! request is served bitwise-exactly by the model version it resolved.
//!
//! When the queue is full, `submit` fails fast and the server answers
//! 429: shedding load beats collapsing under it. Jobs carry an optional
//! absolute deadline: one still queued when its deadline passes is
//! answered with a `Timeout` taxonomy error instead of wasting a
//! forward pass. The batch execution path hosts the `serve.batch`
//! `slow`/`io_err` chaos probes (DESIGN.md §10).

use crate::batch::{run_batch, GenJob};
use crate::metrics::ServeMetrics;
use gendt::GeneratedSeries;
use gendt_faults::GendtError;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SchedCfg {
    /// Most requests coalesced into one forward pass.
    pub max_batch: usize,
    /// How long the worker waits for a batch to fill, milliseconds.
    pub max_wait_ms: u64,
    /// Bounded queue capacity; submits beyond it are rejected.
    pub queue_cap: usize,
}

impl Default for SchedCfg {
    fn default() -> Self {
        SchedCfg {
            max_batch: 8,
            max_wait_ms: 5,
            queue_cap: 64,
        }
    }
}

/// Why a job was not accepted.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — answer 429.
    QueueFull,
    /// The scheduler is shutting down.
    ShuttingDown,
}

/// A generation result delivered back to the waiting handler.
pub type JobResult = Result<GeneratedSeries, GendtError>;

struct Pending {
    job: GenJob,
    reply: mpsc::Sender<JobResult>,
    /// Absolute per-request deadline; a job still queued past it is
    /// answered with a `Timeout` error instead of being executed.
    deadline: Option<Instant>,
}

/// The shared scheduler state.
pub struct Scheduler {
    cfg: SchedCfg,
    queue: Mutex<VecDeque<Pending>>,
    cv: Condvar,
    shutdown: AtomicBool,
    metrics: Arc<ServeMetrics>,
}

impl Scheduler {
    /// New scheduler publishing queue/batch stats into `metrics`.
    pub fn new(cfg: SchedCfg, metrics: Arc<ServeMetrics>) -> Scheduler {
        Scheduler {
            cfg,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics,
        }
    }

    /// Enqueue a job with an optional absolute deadline. Returns the
    /// receiver the caller blocks on, or an error when the queue is
    /// full (shed load) or shutting down.
    pub fn submit(
        &self,
        job: GenJob,
        deadline: Option<Instant>,
    ) -> Result<mpsc::Receiver<JobResult>, SubmitError> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let mut q = self
            .queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if q.len() >= self.cfg.queue_cap {
            return Err(SubmitError::QueueFull);
        }
        let (tx, rx) = mpsc::channel();
        q.push_back(Pending {
            job,
            reply: tx,
            deadline,
        });
        self.metrics
            .queue_depth
            .store(q.len() as u64, Ordering::Relaxed);
        drop(q);
        self.cv.notify_one();
        Ok(rx)
    }

    /// Worker loop: pop, coalesce, execute, reply. Runs until
    /// [`Scheduler::stop`] and an empty queue.
    pub fn run_worker(&self) {
        loop {
            let batch = match self.next_batch() {
                Some(b) => b,
                None => return,
            };
            // Expired deadlines are answered without burning a forward
            // pass — the client already gave up or is about to.
            let now = Instant::now();
            let mut live = Vec::with_capacity(batch.len());
            for pending in batch {
                match pending.deadline {
                    Some(d) if now >= d => {
                        self.metrics
                            .deadline_expired
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = pending.reply.send(Err(GendtError::timeout(
                            "deadline expired before the batch ran",
                        )));
                    }
                    _ => live.push(pending),
                }
            }
            if live.is_empty() {
                continue;
            }

            // Chaos probes: schedules can stall or fail whole batches
            // here to exercise client retries and drain behavior.
            gendt_faults::sleep_if_slow("serve.batch");
            if let Err(e) = gendt_faults::fail_io("serve.batch") {
                for pending in live {
                    let _ = pending
                        .reply
                        .send(Err(GendtError::unavailable(format!("batch aborted: {e}"))));
                }
                continue;
            }

            let n = live.len();
            let entry = live[0].job.entry.clone();
            let jobs: Vec<&GenJob> = live.iter().map(|p| &p.job).collect();
            // A panic inside generation (e.g. a sanitizer trip) must not
            // kill the worker: convert it into per-request errors.
            let result = {
                gendt_trace::span!("serve_batch", "batch" => n);
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let owned: Vec<GenJob> = jobs
                        .iter()
                        .map(|j| GenJob {
                            entry: j.entry.clone(),
                            ctx: j.ctx.clone(),
                            sample_seed: j.sample_seed,
                        })
                        .collect();
                    run_batch(&entry, &owned)
                }))
            };
            self.metrics.observe_batch(n);
            match result {
                Ok(series) => {
                    for (pending, out) in live.into_iter().zip(series) {
                        let _ = pending.reply.send(Ok(out));
                    }
                }
                Err(_) => {
                    for pending in live {
                        let _ = pending.reply.send(Err(GendtError::internal(
                            "generation failed (internal panic)",
                        )));
                    }
                }
            }
        }
    }

    /// Block until at least one job is queued (or shutdown), then
    /// collect up to `max_batch` jobs for the head job's model, waiting
    /// up to `max_wait_ms` for stragglers.
    fn next_batch(&self) -> Option<Vec<Pending>> {
        let mut q = self
            .queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if let Some(head) = q.pop_front() {
                // Covers coalescing + the fill wait, not the idle block
                // above — the assembly timeline, not queue idleness.
                let _assembling = gendt_trace::span("serve_batch_assemble");
                let mut batch = vec![head];
                let deadline = Instant::now() + Duration::from_millis(self.cfg.max_wait_ms);
                loop {
                    // Collect queued jobs for the same model instance.
                    let mut rest = VecDeque::with_capacity(q.len());
                    while let Some(p) = q.pop_front() {
                        if batch.len() < self.cfg.max_batch
                            && Arc::ptr_eq(&p.job.entry, &batch[0].job.entry)
                        {
                            batch.push(p);
                        } else {
                            rest.push_back(p);
                        }
                    }
                    *q = rest;
                    let now = Instant::now();
                    if batch.len() >= self.cfg.max_batch || now >= deadline {
                        break;
                    }
                    let (guard, _timeout) = self
                        .cv
                        .wait_timeout(q, deadline - now)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    q = guard;
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                }
                self.metrics
                    .queue_depth
                    .store(q.len() as u64, Ordering::Relaxed);
                return Some(batch);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            let guard = self
                .cv
                .wait(q)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            q = guard;
        }
    }

    /// Ask workers to exit once the queue drains, and wake them.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.cv.notify_all();
    }
}
