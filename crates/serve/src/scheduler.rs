//! Micro-batching scheduler.
//!
//! `/generate` handlers submit jobs into a bounded queue; a worker
//! thread pops the oldest job and coalesces every queued job for the
//! *same model instance* into one batched forward pass, waiting up to
//! `max_wait_ms` for the batch to fill. Batching keys on the
//! `Arc<ModelEntry>` identity rather than the model name, so jobs
//! resolved before and after a `/reload` never share a batch — each
//! request is served bitwise-exactly by the model version it resolved.
//!
//! When the queue is full, `submit` fails fast and the server answers
//! 429: shedding load beats collapsing under it. Jobs carry an optional
//! absolute deadline: one still queued when its deadline passes is
//! answered with a `Timeout` taxonomy error instead of wasting a
//! forward pass. The batch execution path hosts the `serve.batch`
//! `slow`/`io_err` chaos probes (DESIGN.md §10).
//!
//! All synchronization goes through the `gendt_sync` facade so the
//! queue/condvar state machine is explorable by `gendt-audit
//! sync-check` (DESIGN.md §12). The forward pass itself is behind the
//! [`BatchRunner`] seam: production runs [`run_batch`], harnesses swap
//! in a stub so schedule exploration spends its budget on the
//! interleavings, not on inference.

use crate::batch::{run_batch, BatchOut, GenJob};
use crate::metrics::ServeMetrics;
use gendt::{GenCursor, GeneratedSeries};
use gendt_faults::GendtError;
use gendt_sync::atomic::{AtomicBool, Ordering};
use gendt_sync::time::Instant;
use gendt_sync::{mpsc, Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Scheduler tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SchedCfg {
    /// Most requests coalesced into one forward pass.
    pub max_batch: usize,
    /// How long the worker waits for a batch to fill, milliseconds.
    pub max_wait_ms: u64,
    /// Bounded queue capacity; submits beyond it are rejected.
    pub queue_cap: usize,
}

impl Default for SchedCfg {
    fn default() -> Self {
        SchedCfg {
            max_batch: 8,
            max_wait_ms: 5,
            queue_cap: 64,
        }
    }
}

/// Why a job was not accepted.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — answer 429.
    QueueFull,
    /// The scheduler is shutting down.
    ShuttingDown,
}

/// A finished generation plus its per-request timing split, delivered
/// back to the waiting handler so the server can cut one flight-recorder
/// record per request without a second channel.
#[derive(Debug)]
pub struct JobDone {
    /// The generated series (the chunk's span for streaming jobs).
    pub series: GeneratedSeries,
    /// Advanced resume cursor for streaming jobs; `None` for one-shot.
    pub cursor: Option<GenCursor>,
    /// Time spent queued before its batch executed, microseconds.
    pub queue_us: u32,
    /// Time inside the batched forward pass, microseconds.
    pub batch_us: u32,
}

/// A generation result delivered back to the waiting handler.
pub type JobResult = Result<JobDone, GendtError>;

/// Executes one coalesced batch. Production uses the real forward pass;
/// the concurrency-check harness substitutes a stub that only asserts
/// batch invariants, keeping schedule exploration cheap.
pub trait BatchRunner: Send + Sync {
    /// Run `jobs` (all pinned to the same model entry) and return one
    /// result per job, aligned with `jobs`.
    fn run(&self, jobs: &[GenJob]) -> Vec<BatchOut>;
}

/// Saturating microseconds for the compact flight-recorder fields.
fn clamp_us(d: Duration) -> u32 {
    d.as_micros().min(u32::MAX as u128) as u32
}

struct ProdRunner;

impl BatchRunner for ProdRunner {
    fn run(&self, jobs: &[GenJob]) -> Vec<BatchOut> {
        run_batch(&jobs[0].entry, jobs)
    }
}

struct Pending {
    job: GenJob,
    reply: mpsc::Sender<JobResult>,
    /// Absolute per-request deadline; a job still queued past it is
    /// answered with a `Timeout` error instead of being executed.
    deadline: Option<Instant>,
    /// Distributed trace context active when the job was submitted;
    /// the batch executes under the head job's context so worker spans
    /// nest beneath the router's spans for that request.
    trace: u64,
    /// When the job entered the queue (feeds the flight recorder's
    /// queue-time split).
    enqueued: Instant,
}

/// The shared scheduler state.
pub struct Scheduler {
    cfg: SchedCfg,
    queue: Mutex<VecDeque<Pending>>,
    cv: Condvar,
    shutdown: AtomicBool,
    metrics: Arc<ServeMetrics>,
    runner: Box<dyn BatchRunner>,
}

impl Scheduler {
    /// New scheduler publishing queue/batch stats into `metrics`.
    pub fn new(cfg: SchedCfg, metrics: Arc<ServeMetrics>) -> Scheduler {
        Scheduler::with_runner(cfg, metrics, Box::new(ProdRunner))
    }

    /// New scheduler with a custom batch executor (harness seam).
    pub fn with_runner(
        cfg: SchedCfg,
        metrics: Arc<ServeMetrics>,
        runner: Box<dyn BatchRunner>,
    ) -> Scheduler {
        Scheduler {
            cfg,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics,
            runner,
        }
    }

    /// Enqueue a job with an optional absolute deadline. Returns the
    /// receiver the caller blocks on, or an error when the queue is
    /// full (shed load) or shutting down.
    pub fn submit(
        &self,
        job: GenJob,
        deadline: Option<Instant>,
    ) -> Result<mpsc::Receiver<JobResult>, SubmitError> {
        let mut q = self.queue.lock();
        // Checked under the queue lock: a check before taking it races
        // with stop() — the job would be enqueued after the workers
        // decided to exit and its reply channel would never resolve.
        // sync: Acquire pairs with stop()'s Release store, itself made
        // under this same lock.
        if self.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        if q.len() >= self.cfg.queue_cap {
            return Err(SubmitError::QueueFull);
        }
        let (tx, rx) = mpsc::channel();
        q.push_back(Pending {
            job,
            reply: tx,
            deadline,
            trace: gendt_trace::current_trace(),
            enqueued: Instant::now(),
        });
        // sync: gauge only — published under the queue lock, read by
        // /metrics with no ordering requirement.
        self.metrics
            .queue_depth
            .store(q.len() as u64, Ordering::Relaxed);
        drop(q);
        self.cv.notify_one();
        Ok(rx)
    }

    /// Worker loop: pop, coalesce, execute, reply. Runs until
    /// [`Scheduler::stop`] and an empty queue.
    pub fn run_worker(&self) {
        loop {
            let batch = match self.next_batch() {
                Some(b) => b,
                None => return,
            };
            // Expired deadlines are answered without burning a forward
            // pass — the client already gave up or is about to.
            let now = Instant::now();
            let mut live = Vec::with_capacity(batch.len());
            for pending in batch {
                match pending.deadline {
                    Some(d) if now >= d => {
                        // sync: monotonic counter, rendered by /metrics;
                        // no synchronization piggybacks on it.
                        self.metrics
                            .deadline_expired
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = pending.reply.send(Err(GendtError::timeout(
                            "deadline expired before the batch ran",
                        )));
                    }
                    _ => live.push(pending),
                }
            }
            if live.is_empty() {
                continue;
            }

            // Chaos probes: schedules can stall or fail whole batches
            // here to exercise client retries and drain behavior.
            gendt_faults::sleep_if_slow("serve.batch");
            if let Err(e) = gendt_faults::fail_io("serve.batch") {
                for pending in live {
                    let _ = pending
                        .reply
                        .send(Err(GendtError::unavailable(format!("batch aborted: {e}"))));
                }
                continue;
            }

            let n = live.len();
            let jobs: Vec<&GenJob> = live.iter().map(|p| &p.job).collect();
            let batch_started = Instant::now();
            // A panic inside generation (e.g. a sanitizer trip) must not
            // kill the worker: convert it into per-request errors.
            let result = {
                // The whole coalesced pass runs under the head job's
                // trace context, so its spans land on that request's
                // cross-process timeline.
                let _trace = gendt_trace::trace_scope(live[0].trace);
                gendt_trace::span!("serve_batch", "batch" => n);
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let owned: Vec<GenJob> = jobs.iter().map(|&j| j.clone()).collect();
                    self.runner.run(&owned)
                }))
            };
            let batch_us = clamp_us(batch_started.elapsed());
            self.metrics.observe_batch(n);
            match result {
                Ok(outs) => {
                    for (pending, out) in live.into_iter().zip(outs) {
                        let queue_us =
                            clamp_us(batch_started.saturating_duration_since(pending.enqueued));
                        let _ = pending.reply.send(Ok(JobDone {
                            series: out.series,
                            cursor: out.cursor,
                            queue_us,
                            batch_us,
                        }));
                    }
                }
                Err(_) => {
                    for pending in live {
                        let _ = pending.reply.send(Err(GendtError::internal(
                            "generation failed (internal panic)",
                        )));
                    }
                }
            }
        }
    }

    /// Block until at least one job is queued (or shutdown), then
    /// collect up to `max_batch` jobs for the head job's model, waiting
    /// up to `max_wait_ms` for stragglers.
    fn next_batch(&self) -> Option<Vec<Pending>> {
        let mut q = self.queue.lock();
        loop {
            if let Some(head) = q.pop_front() {
                // Covers coalescing + the fill wait, not the idle block
                // above — the assembly timeline, not queue idleness.
                let _assembling = gendt_trace::span("serve_batch_assemble");
                let mut batch = vec![head];
                let deadline = Instant::now() + Duration::from_millis(self.cfg.max_wait_ms);
                loop {
                    // Collect queued jobs for the same model instance.
                    let mut rest = VecDeque::with_capacity(q.len());
                    while let Some(p) = q.pop_front() {
                        if batch.len() < self.cfg.max_batch
                            && Arc::ptr_eq(&p.job.entry, &batch[0].job.entry)
                        {
                            batch.push(p);
                        } else {
                            rest.push_back(p);
                        }
                    }
                    *q = rest;
                    let now = Instant::now();
                    if batch.len() >= self.cfg.max_batch || now >= deadline {
                        break;
                    }
                    let (guard, _timeout) = self
                        .cv
                        .wait_timeout(q, deadline.saturating_duration_since(now));
                    q = guard;
                    // sync: Acquire pairs with stop()'s Release store.
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                }
                // sync: gauge only — published under the queue lock.
                self.metrics
                    .queue_depth
                    .store(q.len() as u64, Ordering::Relaxed);
                return Some(batch);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            q = self.cv.wait(q);
        }
    }

    /// Ask workers to exit once the queue drains, and wake them.
    pub fn stop(&self) {
        // sync: taking the queue lock orders this Release store against
        // submit's under-lock Acquire check: after stop() returns, no
        // new job can slip into the queue unobserved by exiting workers.
        {
            let _q = self.queue.lock();
            self.shutdown.store(true, Ordering::Release);
        }
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelEntry;
    use gendt::{GenDt, GenDtCfg};
    use gendt_data::context::RunContext;
    use gendt_data::kpi_types::Kpi;
    use gendt_sync::testing::inject_spurious_wakeups;
    use gendt_sync::thread;

    /// Answers each job with a marker series carrying its sample seed,
    /// so tests can verify reply routing without running inference.
    struct MarkerRunner;

    impl BatchRunner for MarkerRunner {
        fn run(&self, jobs: &[GenJob]) -> Vec<BatchOut> {
            jobs.iter()
                .map(|j| BatchOut {
                    series: GeneratedSeries {
                        kpis: Vec::new(),
                        series: vec![vec![j.sample_seed as f64]],
                    },
                    cursor: None,
                })
                .collect()
        }
    }

    fn test_entry() -> Arc<ModelEntry> {
        let mut cfg = GenDtCfg::fast(4, 71);
        cfg.hidden = 4;
        cfg.resgen_hidden = 4;
        cfg.disc_hidden = 4;
        cfg.window.len = 4;
        cfg.window.stride = 4;
        cfg.window.max_cells = 2;
        Arc::new(ModelEntry {
            name: "m".to_string(),
            version: 0,
            model: GenDt::new(cfg),
            kpis: Kpi::DATASET_A.to_vec(),
        })
    }

    fn job(entry: &Arc<ModelEntry>, sample_seed: u64) -> GenJob {
        GenJob {
            entry: Arc::clone(entry),
            ctx: Arc::new(RunContext { steps: Vec::new() }),
            sample_seed,
            stream: None,
        }
    }

    fn sched(cfg: SchedCfg) -> (Arc<Scheduler>, Arc<ServeMetrics>) {
        let metrics = Arc::new(ServeMetrics::new(cfg.max_batch));
        let s = Arc::new(Scheduler::with_runner(
            cfg,
            Arc::clone(&metrics),
            Box::new(MarkerRunner),
        ));
        (s, metrics)
    }

    /// Both Condvar sites — the idle block in `next_batch` and the
    /// batch-fill `wait_timeout` — must treat a spurious wakeup as a
    /// non-event: recheck state, re-arm with the remaining time, and
    /// keep serving. One test (not two) because the injected budget is
    /// process-wide and the harness runs tests concurrently.
    #[test]
    fn condvar_waits_absorb_spurious_wakeups() {
        // Idle wait: the worker burns the whole budget parked on an
        // empty queue, then must still answer real work and shut down.
        let (s, _) = sched(SchedCfg {
            max_batch: 1,
            max_wait_ms: 1,
            queue_cap: 8,
        });
        let entry = test_entry();
        inject_spurious_wakeups(3);
        let worker = {
            let s = Arc::clone(&s);
            thread::spawn(move || s.run_worker())
        };
        for seed in [7u64, 8] {
            let rx = s.submit(job(&entry, seed), None).expect("queue open");
            let out = rx
                .recv()
                .expect("worker exited instead of absorbing a spurious wakeup")
                .expect("marker batch cannot fail");
            assert_eq!(out.series.series, vec![vec![seed as f64]]);
        }
        s.stop();
        worker.join().expect("worker panicked");

        // Fill wait: spurious early returns from `wait_timeout` must not
        // be mistaken for the fill deadline — a straggler submitted
        // mid-window still joins the head job's batch.
        let (s, metrics) = sched(SchedCfg {
            max_batch: 4,
            max_wait_ms: 200,
            queue_cap: 8,
        });
        inject_spurious_wakeups(3);
        let worker = {
            let s = Arc::clone(&s);
            thread::spawn(move || s.run_worker())
        };
        let rx_a = s.submit(job(&entry, 1), None).expect("queue open");
        std::thread::sleep(Duration::from_millis(20));
        let rx_b = s.submit(job(&entry, 2), None).expect("queue open");
        let a = rx_a.recv().expect("reply dropped").expect("marker batch");
        let b = rx_b.recv().expect("reply dropped").expect("marker batch");
        assert_eq!(a.series.series, vec![vec![1.0]]);
        assert_eq!(b.series.series, vec![vec![2.0]]);
        assert_eq!(
            metrics.batches.load(Ordering::SeqCst),
            1,
            "straggler must coalesce into the head batch, not run alone"
        );
        assert_eq!(metrics.batched_requests.load(Ordering::SeqCst), 2);
        s.stop();
        worker.join().expect("worker panicked");
        inject_spurious_wakeups(0);
    }

    /// Echoes the trace context the batch executes under, proving the
    /// submitter's `trace_scope` travels queue → worker thread → runner.
    struct TraceRunner;

    impl BatchRunner for TraceRunner {
        fn run(&self, jobs: &[GenJob]) -> Vec<BatchOut> {
            let t = gendt_trace::current_trace() as f64;
            jobs.iter()
                .map(|_| BatchOut {
                    series: GeneratedSeries {
                        kpis: Vec::new(),
                        series: vec![vec![t]],
                    },
                    cursor: None,
                })
                .collect()
        }
    }

    #[test]
    fn batch_runs_under_the_submitters_trace_context() {
        let metrics = Arc::new(ServeMetrics::new(8));
        let s = Arc::new(Scheduler::with_runner(
            SchedCfg {
                max_batch: 8,
                max_wait_ms: 1,
                queue_cap: 8,
            },
            metrics,
            Box::new(TraceRunner),
        ));
        let entry = test_entry();
        let rx = {
            let _scope = gendt_trace::trace_scope(77);
            s.submit(job(&entry, 1), None).expect("queue open")
        };
        let worker = {
            let s = Arc::clone(&s);
            thread::spawn(move || s.run_worker())
        };
        let done = rx.recv().expect("reply dropped").expect("runner runs");
        assert_eq!(done.series.series, vec![vec![77.0]]);
        s.stop();
        worker.join().expect("worker panicked");
    }

    /// A job whose deadline has already passed when its batch is popped
    /// is answered with a `Timeout` taxonomy error and never executed;
    /// its batchmates still run.
    #[test]
    fn expired_deadline_is_answered_not_executed() {
        let (s, metrics) = sched(SchedCfg {
            max_batch: 8,
            max_wait_ms: 1,
            queue_cap: 8,
        });
        let entry = test_entry();
        // Enqueue both before the worker exists so they pop as one
        // batch deterministically; the second's deadline is already in
        // the past by the time the worker checks it.
        let rx_live = s.submit(job(&entry, 5), None).expect("queue open");
        let rx_dead = s
            .submit(job(&entry, 6), Some(Instant::now()))
            .expect("queue open");
        let worker = {
            let s = Arc::clone(&s);
            thread::spawn(move || s.run_worker())
        };
        let live = rx_live
            .recv()
            .expect("reply dropped")
            .expect("live job runs");
        assert_eq!(live.series.series, vec![vec![5.0]]);
        let dead = rx_dead
            .recv()
            .expect("expired job must still be answered")
            .expect_err("expired job must not execute");
        assert_eq!(dead.kind(), gendt_faults::ErrorKind::Timeout);
        assert_eq!(metrics.deadline_expired.load(Ordering::SeqCst), 1);
        assert_eq!(
            metrics.batched_requests.load(Ordering::SeqCst),
            1,
            "only the live job may reach the runner"
        );
        s.stop();
        worker.join().expect("worker panicked");
    }
}
