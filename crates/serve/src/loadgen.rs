//! Open-loop load generation: seeded Poisson arrivals against a serving
//! endpoint.
//!
//! A closed loop (fixed concurrency, next request sent when the last
//! returns) lets a slow server set the arrival rate, hiding queueing
//! collapse; an *open* loop keeps offering work at the configured rate
//! regardless of completions, so the measured tail (p99/p99.9) reflects
//! what real traffic would see. Arrivals are exponential inter-arrival
//! samples from a seeded [`gendt_rng::Rng`], so a load run is exactly
//! reproducible from `(rate, requests, seed)`.
//!
//! Used by `gendt-loadgen` (single node) and `gendt-fleet bench`
//! (router + worker pool), including the saturation-knee sweep that
//! ramps the offered rate until achieved throughput stops following it.

use crate::http::http_request;
use gendt_faults::GendtError;
use gendt_metrics::Quantiles;
use gendt_rng::Rng;
use gendt_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use gendt_sync::Mutex;
use std::time::{Duration, Instant};

/// Open-loop driver knobs.
#[derive(Clone, Debug)]
pub struct OpenLoopCfg {
    /// Offered arrival rate, requests per second.
    pub rate_rps: f64,
    /// Total arrivals to offer.
    pub requests: usize,
    /// Seed of the arrival process (inter-arrival samples).
    pub seed: u64,
    /// Hard cap on concurrently in-flight requests: an arrival that
    /// would exceed it is dropped client-side (counted, not blocked —
    /// blocking would close the loop).
    pub max_inflight: usize,
}

impl OpenLoopCfg {
    /// Validated defaults at the given rate: 256 arrivals, seed 1,
    /// inflight capped at 256.
    pub fn at_rate(rate_rps: f64) -> OpenLoopCfg {
        OpenLoopCfg {
            rate_rps,
            requests: 256,
            seed: 1,
            max_inflight: 256,
        }
    }

    /// Reject degenerate values.
    pub fn validate(&self) -> Result<(), GendtError> {
        if !(self.rate_rps.is_finite() && self.rate_rps > 0.0) {
            return Err(GendtError::config(format!(
                "open-loop rate_rps={} must be finite and > 0",
                self.rate_rps
            )));
        }
        if self.requests == 0 {
            return Err(GendtError::config("open-loop requests must be > 0"));
        }
        if self.max_inflight == 0 {
            return Err(GendtError::config("open-loop max_inflight must be > 0"));
        }
        Ok(())
    }
}

/// What one open-loop run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Configured arrival rate, requests per second.
    pub offered_rps: f64,
    /// Completed-OK rate over the wall-clock of the run.
    pub achieved_rps: f64,
    /// Requests answered 200.
    pub ok: u64,
    /// Requests shed by the server (429/503).
    pub rejected: u64,
    /// Requests that failed any other way (other status, socket error).
    pub failed: u64,
    /// Arrivals dropped client-side at the `max_inflight` cap.
    pub client_shed: u64,
    /// Wall-clock from first arrival to last completion, seconds.
    pub wall_s: f64,
    /// End-to-end latency quantiles of the OK requests, milliseconds.
    pub latency_ms: Quantiles,
}

/// Deterministic arrival schedule: cumulative exponential inter-arrival
/// offsets (seconds from run start) for `n` arrivals at `rate_rps`.
pub fn arrival_offsets(rate_rps: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            // Inverse-CDF exponential sample; 1-u keeps ln() finite.
            let u = rng.uniform01();
            t += -(1.0 - u).ln() / rate_rps;
            t
        })
        .collect()
}

/// Drive `addr` open-loop: offer `cfg.requests` arrivals of
/// `POST /v1/generate` with bodies from `body_of(i)` at the configured
/// Poisson rate, and report achieved throughput plus latency quantiles.
pub fn drive_open_loop(
    addr: &str,
    body_of: &(dyn Fn(usize) -> String + Sync),
    cfg: &OpenLoopCfg,
) -> Result<LoadReport, GendtError> {
    cfg.validate()?;
    let offsets = arrival_offsets(cfg.rate_rps, cfg.requests, cfg.seed);
    let ok = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let mut client_shed = 0u64;
    let inflight = AtomicUsize::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(cfg.requests));

    let started = Instant::now();
    std::thread::scope(|scope| {
        for (i, &offset) in offsets.iter().enumerate() {
            // Hold the arrival process to its schedule. Sleeps are
            // coarse near the end, so finish with short naps.
            loop {
                let elapsed = started.elapsed().as_secs_f64();
                if elapsed >= offset {
                    break;
                }
                let wait = offset - elapsed;
                if wait > 0.002 {
                    std::thread::sleep(Duration::from_secs_f64(wait - 0.001));
                } else {
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
            // sync: inflight is a soft admission gauge; exactness under
            // racing decrements is not required, only boundedness.
            if inflight.load(Ordering::Relaxed) >= cfg.max_inflight {
                client_shed += 1;
                continue;
            }
            inflight.fetch_add(1, Ordering::Relaxed);
            let body = body_of(i);
            let (ok, rejected, failed, inflight, latencies) =
                (&ok, &rejected, &failed, &inflight, &latencies);
            scope.spawn(move || {
                let t0 = Instant::now();
                // sync: independent tally counters, joined by the scope
                // before anyone reads them.
                match http_request(addr, "POST", "/v1/generate", Some(&body)) {
                    Ok((200, _)) => {
                        let ms = t0.elapsed().as_secs_f64() * 1000.0;
                        ok.fetch_add(1, Ordering::Relaxed);
                        latencies.lock().push(ms);
                    }
                    Ok((429, _)) | Ok((503, _)) => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok((_, _)) | Err(_) => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                inflight.fetch_sub(1, Ordering::Relaxed);
            });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();

    let samples = latencies.lock();
    if samples.is_empty() {
        return Err(GendtError::unavailable(format!(
            "open-loop run against {addr}: no request succeeded"
        )));
    }
    // sync: the scope join above ordered every worker's tallies.
    let ok_n = ok.load(Ordering::Relaxed);
    Ok(LoadReport {
        offered_rps: cfg.rate_rps,
        achieved_rps: ok_n as f64 / wall_s.max(1e-9),
        ok: ok_n,
        rejected: rejected.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        client_shed,
        wall_s,
        latency_ms: Quantiles::from_samples(&samples),
    })
}

/// Stream-session workload knobs: how many sessions to hold open and
/// how hard to drive their continuations.
#[derive(Clone, Debug)]
pub struct StreamLoadCfg {
    /// Stream sessions to open (each paused after one window, so all of
    /// them are concurrently resident in the server's session table
    /// without holding a socket each).
    pub sessions: usize,
    /// Offered continuation arrival rate, requests per second.
    pub rate_rps: f64,
    /// Continuation arrivals to offer across the session pool.
    pub requests: usize,
    /// Seed of the arrival process.
    pub seed: u64,
    /// Client-side cap on in-flight continuations.
    pub max_inflight: usize,
}

impl StreamLoadCfg {
    /// Reject degenerate values.
    pub fn validate(&self) -> Result<(), GendtError> {
        if self.sessions == 0 {
            return Err(GendtError::config("stream load sessions must be > 0"));
        }
        if !(self.rate_rps.is_finite() && self.rate_rps > 0.0) {
            return Err(GendtError::config(format!(
                "stream load rate_rps={} must be finite and > 0",
                self.rate_rps
            )));
        }
        if self.requests == 0 {
            return Err(GendtError::config("stream load requests must be > 0"));
        }
        if self.max_inflight == 0 {
            return Err(GendtError::config("stream load max_inflight must be > 0"));
        }
        Ok(())
    }
}

/// What one stream-session run measured. Continuation latency goes
/// through the same [`Quantiles`] reduction as every other loadgen
/// path, so p99.9 is comparable across sections of the bench artifact.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Sessions successfully opened (= concurrently resident sessions
    /// when the continuation phase starts).
    pub opened: u64,
    /// Opens that failed (non-200 or transport error).
    pub open_failed: u64,
    /// Configured continuation arrival rate, requests per second.
    pub offered_rps: f64,
    /// Completed-OK continuation rate over the continuation phase.
    pub achieved_rps: f64,
    /// Continuations answered 200.
    pub ok: u64,
    /// Continuations shed by the server (429/503).
    pub rejected: u64,
    /// Continuations that failed any other way.
    pub failed: u64,
    /// Arrivals dropped client-side (inflight cap, or every session
    /// already complete).
    pub client_shed: u64,
    /// Sessions that streamed to completion during the run.
    pub completed: u64,
    /// Wall-clock of the continuation phase, seconds.
    pub wall_s: f64,
    /// Continuation latency quantiles of the OK requests, milliseconds.
    pub latency_ms: Quantiles,
}

/// Size of the thread pool that opens the session population.
const OPEN_POOL: usize = 64;

/// Drive `addr` with a stateful streaming workload: open
/// `cfg.sessions` sessions (bodies from `open_body_of(i)`, which must
/// include a `max_windows` budget so each open pauses resident
/// server-side), then offer `cfg.requests` one-window continuations at
/// the configured Poisson rate, round-robin over the live sessions.
///
/// Sessions complete as their series run out; arrivals that would land
/// on a completed session are counted `client_shed` rather than sent,
/// so `failed` stays a server-health signal.
pub fn drive_stream_sessions(
    addr: &str,
    open_body_of: &(dyn Fn(usize) -> String + Sync),
    cfg: &StreamLoadCfg,
) -> Result<StreamReport, GendtError> {
    cfg.validate()?;

    // Phase 1: stand up the session population with a bounded pool.
    let ids: Mutex<Vec<String>> = Mutex::new(Vec::with_capacity(cfg.sessions));
    let open_failed = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..OPEN_POOL.min(cfg.sessions) {
            let (ids, open_failed, next) = (&ids, &open_failed, &next);
            scope.spawn(move || loop {
                // sync: work-queue ticket; each index claimed once.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cfg.sessions {
                    break;
                }
                let body = open_body_of(i);
                match crate::http::http_request_full(addr, "POST", "/v1/stream", &[], Some(&body)) {
                    Ok(resp) if resp.status == 200 => {
                        match resp.header(crate::api::SESSION_HEADER) {
                            // A session that already ran to completion
                            // can't take continuations; only paused
                            // ones join the pool.
                            Some(sid) if !resp.body.contains("\"done\":true") => {
                                ids.lock().push(sid.to_string());
                            }
                            _ => {
                                open_failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    _ => {
                        open_failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let ids = std::mem::take(&mut *ids.lock());
    if ids.is_empty() {
        return Err(GendtError::unavailable(format!(
            "stream load against {addr}: no session opened"
        )));
    }

    // Phase 2: open-loop continuations over the pool.
    let offsets = arrival_offsets(cfg.rate_rps, cfg.requests, cfg.seed);
    let ok = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let mut client_shed = 0u64;
    let inflight = AtomicUsize::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(cfg.requests));
    // Index-aligned completion flags; a done session leaves rotation.
    let done: Vec<AtomicU64> = (0..ids.len()).map(|_| AtomicU64::new(0)).collect();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for (i, &offset) in offsets.iter().enumerate() {
            loop {
                let elapsed = started.elapsed().as_secs_f64();
                if elapsed >= offset {
                    break;
                }
                let wait = offset - elapsed;
                if wait > 0.002 {
                    std::thread::sleep(Duration::from_secs_f64(wait - 0.001));
                } else {
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
            // sync: soft admission gauge, boundedness only.
            if inflight.load(Ordering::Relaxed) >= cfg.max_inflight {
                client_shed += 1;
                continue;
            }
            // Round-robin from this arrival's slot to the next session
            // still live; all-complete means the run has drained.
            // sync: done flags are monotonic 0→1 tallies; a stale read
            // costs one shed or one 404-counted-failed, not correctness.
            let target = (0..ids.len())
                .map(|k| (i + k) % ids.len())
                .find(|&s| done[s].load(Ordering::Relaxed) == 0);
            let Some(slot) = target else {
                client_shed += 1;
                continue;
            };
            inflight.fetch_add(1, Ordering::Relaxed);
            let sid = ids[slot].clone();
            let (ok, rejected, failed, completed, inflight, latencies, done) = (
                &ok, &rejected, &failed, &completed, &inflight, &latencies, &done,
            );
            scope.spawn(move || {
                let body = format!("{{\"session\":{sid:?},\"max_windows\":1}}");
                let t0 = Instant::now();
                // sync: independent tally counters, joined by the scope
                // before anyone reads them.
                match crate::http::http_request_full(addr, "POST", "/v1/stream", &[], Some(&body)) {
                    Ok(resp) if resp.status == 200 => {
                        let ms = t0.elapsed().as_secs_f64() * 1000.0;
                        ok.fetch_add(1, Ordering::Relaxed);
                        latencies.lock().push(ms);
                        if resp.body.contains("\"done\":true") {
                            done[slot].store(1, Ordering::Relaxed);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Ok(resp) if resp.status == 429 || resp.status == 503 => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(resp) => {
                        // A lost race with completion answers 404;
                        // retire the slot either way.
                        if resp.status == 404 {
                            done[slot].store(1, Ordering::Relaxed);
                        }
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                inflight.fetch_sub(1, Ordering::Relaxed);
            });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();

    let samples = latencies.lock();
    if samples.is_empty() {
        return Err(GendtError::unavailable(format!(
            "stream load against {addr}: no continuation succeeded"
        )));
    }
    // sync: the scope join above ordered every worker's tallies.
    let ok_n = ok.load(Ordering::Relaxed);
    Ok(StreamReport {
        opened: ids.len() as u64,
        open_failed: open_failed.load(Ordering::Relaxed),
        offered_rps: cfg.rate_rps,
        achieved_rps: ok_n as f64 / wall_s.max(1e-9),
        ok: ok_n,
        rejected: rejected.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        client_shed,
        completed: completed.load(Ordering::Relaxed),
        wall_s,
        latency_ms: Quantiles::from_samples(&samples),
    })
}

/// One point of a stream-continuation saturation sweep.
#[derive(Clone, Debug)]
pub struct StreamKneePoint {
    /// Offered continuation rate at this step, requests per second.
    pub offered_rps: f64,
    /// Achieved continuation rate at this step.
    pub achieved_rps: f64,
    /// The full report of the step.
    pub report: StreamReport,
}

/// Saturation-knee sweep over the continuation rate: each step stands
/// up a fresh session population and ramps the offered rate
/// geometrically until achieved throughput falls below `follow_frac`
/// of offered, mirroring [`saturation_sweep`] for the one-shot path.
#[allow(clippy::too_many_arguments)] // symmetric with saturation_sweep
pub fn stream_saturation_sweep(
    addr: &str,
    open_body_of: &(dyn Fn(usize) -> String + Sync),
    base: &StreamLoadCfg,
    start_rps: f64,
    growth: f64,
    follow_frac: f64,
    max_steps: usize,
) -> Result<Vec<StreamKneePoint>, GendtError> {
    if !(growth.is_finite() && growth > 1.0) {
        return Err(GendtError::config(format!(
            "stream saturation sweep growth={growth} must be > 1"
        )));
    }
    let mut points = Vec::new();
    let mut rate = start_rps;
    for step in 0..max_steps.max(1) {
        let cfg = StreamLoadCfg {
            rate_rps: rate,
            // Decorrelate arrival schedules across steps.
            seed: base.seed.wrapping_add(step as u64),
            ..base.clone()
        };
        let report = drive_stream_sessions(addr, open_body_of, &cfg)?;
        let kept_up = report.achieved_rps >= follow_frac * report.offered_rps;
        points.push(StreamKneePoint {
            offered_rps: report.offered_rps,
            achieved_rps: report.achieved_rps,
            report,
        });
        if !kept_up {
            break;
        }
        rate *= growth;
    }
    Ok(points)
}

/// The knee of a stream sweep: highest achieved continuation rate.
pub fn stream_knee_of(points: &[StreamKneePoint]) -> Option<&StreamKneePoint> {
    points.iter().max_by(|a, b| {
        a.achieved_rps
            .partial_cmp(&b.achieved_rps)
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

/// One point of a saturation sweep.
#[derive(Clone, Debug)]
pub struct KneePoint {
    /// Offered rate at this step, requests per second.
    pub offered_rps: f64,
    /// What the target actually completed, requests per second.
    pub achieved_rps: f64,
    /// The full report of the step.
    pub report: LoadReport,
}

/// Find the saturation knee: ramp the offered rate geometrically from
/// `start_rps` until achieved throughput falls below
/// `follow_frac` of offered (the target stopped keeping up) or
/// `max_steps` is exhausted. Returns every step measured, in order; the
/// knee is the last step that still kept up (or the best achieved step
/// when nothing kept up).
pub fn saturation_sweep(
    addr: &str,
    body_of: &(dyn Fn(usize) -> String + Sync),
    base: &OpenLoopCfg,
    start_rps: f64,
    growth: f64,
    follow_frac: f64,
    max_steps: usize,
) -> Result<Vec<KneePoint>, GendtError> {
    if !(growth.is_finite() && growth > 1.0) {
        return Err(GendtError::config(format!(
            "saturation sweep growth={growth} must be > 1"
        )));
    }
    let mut points = Vec::new();
    let mut rate = start_rps;
    for step in 0..max_steps.max(1) {
        let cfg = OpenLoopCfg {
            rate_rps: rate,
            // Decorrelate arrival schedules across steps.
            seed: base.seed.wrapping_add(step as u64),
            ..base.clone()
        };
        let report = drive_open_loop(addr, body_of, &cfg)?;
        let kept_up = report.achieved_rps >= follow_frac * report.offered_rps;
        points.push(KneePoint {
            offered_rps: report.offered_rps,
            achieved_rps: report.achieved_rps,
            report,
        });
        if !kept_up {
            break;
        }
        rate *= growth;
    }
    Ok(points)
}

/// The knee of a sweep: highest achieved throughput observed.
pub fn knee_of(points: &[KneePoint]) -> Option<&KneePoint> {
    points.iter().max_by(|a, b| {
        a.achieved_rps
            .partial_cmp(&b.achieved_rps)
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_offsets_are_deterministic_and_increasing() {
        let a = arrival_offsets(100.0, 64, 7);
        let b = arrival_offsets(100.0, 64, 7);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[1] > w[0], "offsets must strictly increase");
        }
        let c = arrival_offsets(100.0, 64, 8);
        assert_ne!(a, c, "different seeds must give different schedules");
    }

    #[test]
    fn arrival_rate_matches_configured_rate() {
        // Mean inter-arrival of Exp(rate) is 1/rate; over 4000 samples
        // the empirical rate should land within 10%.
        let n = 4000;
        let xs = arrival_offsets(250.0, n, 3);
        let empirical = n as f64 / xs.last().copied().unwrap_or(1.0);
        assert!(
            (empirical - 250.0).abs() < 25.0,
            "empirical rate {empirical} too far from 250"
        );
    }

    #[test]
    fn cfg_validation_rejects_degenerates() {
        assert!(OpenLoopCfg::at_rate(100.0).validate().is_ok());
        assert!(OpenLoopCfg::at_rate(0.0).validate().is_err());
        assert!(OpenLoopCfg::at_rate(f64::NAN).validate().is_err());
        let mut c = OpenLoopCfg::at_rate(10.0);
        c.requests = 0;
        assert!(c.validate().is_err());
        let mut c = OpenLoopCfg::at_rate(10.0);
        c.max_inflight = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn stream_cfg_validation_rejects_degenerates() {
        let good = StreamLoadCfg {
            sessions: 8,
            rate_rps: 50.0,
            requests: 32,
            seed: 1,
            max_inflight: 64,
        };
        assert!(good.validate().is_ok());
        for tweak in [
            |c: &mut StreamLoadCfg| c.sessions = 0,
            |c: &mut StreamLoadCfg| c.rate_rps = 0.0,
            |c: &mut StreamLoadCfg| c.rate_rps = f64::INFINITY,
            |c: &mut StreamLoadCfg| c.requests = 0,
            |c: &mut StreamLoadCfg| c.max_inflight = 0,
        ] {
            let mut c = good.clone();
            tweak(&mut c);
            assert!(c.validate().is_err(), "{c:?} must be rejected");
        }
    }

    #[test]
    fn stream_knee_picks_best_achieved() {
        let mk = |o: f64, a: f64| StreamKneePoint {
            offered_rps: o,
            achieved_rps: a,
            report: StreamReport {
                opened: 8,
                open_failed: 0,
                offered_rps: o,
                achieved_rps: a,
                ok: 1,
                rejected: 0,
                failed: 0,
                client_shed: 0,
                completed: 0,
                wall_s: 1.0,
                latency_ms: Quantiles::default(),
            },
        };
        let pts = vec![mk(50.0, 49.0), mk(80.0, 77.0), mk(128.0, 70.0)];
        assert_eq!(stream_knee_of(&pts).expect("non-empty").offered_rps, 80.0);
        assert!(stream_knee_of(&[]).is_none());
    }

    #[test]
    fn knee_picks_best_achieved() {
        let mk = |o: f64, a: f64| KneePoint {
            offered_rps: o,
            achieved_rps: a,
            report: LoadReport {
                offered_rps: o,
                achieved_rps: a,
                ok: 1,
                rejected: 0,
                failed: 0,
                client_shed: 0,
                wall_s: 1.0,
                latency_ms: Quantiles::default(),
            },
        };
        let pts = vec![mk(100.0, 99.0), mk(160.0, 155.0), mk(256.0, 140.0)];
        let knee = knee_of(&pts).expect("non-empty");
        assert_eq!(knee.offered_rps, 160.0);
        assert!(knee_of(&[]).is_none());
    }
}
