//! Online generation service for GenDT models.
//!
//! The ROADMAP's north star is a system that serves drive-test KPIs to
//! live consumers, not just batch binaries. This crate stands up that
//! serving path with **no dependencies beyond the workspace** (the build
//! container is offline): a threaded HTTP/1.1 server over
//! `std::net::TcpListener` with
//!
//! * a [micro-batching scheduler](scheduler) that coalesces concurrent
//!   `/generate` requests for the same model into one batched forward
//!   pass over `gendt::generate_series_batch`, with a bounded queue that
//!   sheds load (HTTP 429) instead of collapsing;
//! * a [checkpoint registry](registry) loading named models from a
//!   directory, hot-swappable via `/reload` without dropping in-flight
//!   requests;
//! * a [context cache](cache) so repeated trajectories skip
//!   `gendt_data::extract`;
//! * a [stream session table](session) behind `POST /v1/stream`:
//!   sessions hold carried LSTM state server-side so chunked responses
//!   stream windows as the scheduler produces them and continuations
//!   resume bitwise-exactly, with LRU + TTL eviction;
//! * a `/metrics` endpoint in Prometheus text format built on
//!   `gendt_metrics::Histogram`.
//!
//! Determinism is preserved end to end: a request carries an explicit
//! sample seed, and a batched response is bitwise-equal to a direct
//! `generate_series` call with the same seed (each request keeps its own
//! RNG stream inside the batch — see `Generator::forward_gen_batch`).
//!
//! The API is versioned: `/v1/*` routes answer errors with the typed
//! `{code, message, retryable}` envelope of the workspace taxonomy
//! (`gendt_faults::GendtError`); the original unversioned routes remain
//! as deprecated aliases (`Deprecation: true`). Requests may carry a
//! `Deadline-Ms` header propagated into the scheduler, and shutdown
//! drains gracefully — see DESIGN.md §10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod batch;
pub mod cache;
pub mod demo;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod registry;
pub mod scheduler;
pub mod server;
pub mod session;

pub use api::{
    ErrorEnvelope, ErrorResponse, GenerateRequest, GenerateResponse, InfoResponse, ModelInfo,
    ModelsResponse, StreamChunk, StreamRequest, StreamTrailer,
};
pub use registry::{ModelEntry, Registry};
pub use server::{serve, ServerCfg, ServerCfgBuilder, ServerHandle};
pub use session::{Checkout, SessionTable, StreamSession};
