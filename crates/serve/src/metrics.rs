//! Serving metrics and their Prometheus text rendering.
//!
//! Counters are lock-free atomics on the request path; the latency and
//! batch-size distributions stream into `gendt_metrics::Histogram`
//! behind short-lived mutexes and render as quantile summaries via
//! `gendt_metrics::Quantiles`.

use gendt_metrics::{Histogram, Quantiles};
use gendt_sync::atomic::{AtomicU64, Ordering};
use gendt_sync::Mutex;

/// Shared serving metrics.
pub struct ServeMetrics {
    /// Requests received, any endpoint.
    pub http_requests: AtomicU64,
    /// `/generate` requests answered 200.
    pub generate_ok: AtomicU64,
    /// `/generate` requests shed with 429 (queue full).
    pub generate_rejected: AtomicU64,
    /// `/generate` requests failed with 4xx/5xx other than 429.
    pub generate_failed: AtomicU64,
    /// Jobs whose per-request deadline expired while still queued.
    pub deadline_expired: AtomicU64,
    /// Jobs currently queued in the scheduler.
    pub queue_depth: AtomicU64,
    /// Total requests that went through a batched forward pass.
    pub batched_requests: AtomicU64,
    /// Total batched forward passes.
    pub batches: AtomicU64,
    /// Requests on the legacy unversioned surface (`/generate`,
    /// `/models`, `/reload`), counted toward its sunset.
    pub legacy_requests: AtomicU64,
    /// Stream sessions opened over `/v1/stream`.
    pub stream_sessions_opened: AtomicU64,
    /// Stream sessions evicted for capacity (LRU) pressure.
    pub stream_sessions_evicted: AtomicU64,
    /// Stream sessions expired by the idle TTL.
    pub stream_sessions_expired: AtomicU64,
    /// Chunks streamed over `/v1/stream` responses.
    pub stream_chunks: AtomicU64,
    /// Live sessions in the session table (gauge).
    pub stream_sessions: AtomicU64,
    latency_ms: Mutex<Histogram>,
    batch_size: Mutex<Histogram>,
}

impl ServeMetrics {
    /// Fresh metrics. `max_batch` sizes the batch-occupancy histogram.
    pub fn new(max_batch: usize) -> ServeMetrics {
        ServeMetrics {
            http_requests: AtomicU64::new(0),
            generate_ok: AtomicU64::new(0),
            generate_rejected: AtomicU64::new(0),
            generate_failed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            legacy_requests: AtomicU64::new(0),
            stream_sessions_opened: AtomicU64::new(0),
            stream_sessions_evicted: AtomicU64::new(0),
            stream_sessions_expired: AtomicU64::new(0),
            stream_chunks: AtomicU64::new(0),
            stream_sessions: AtomicU64::new(0),
            // 0..10s in 25ms bins: generation latencies land well inside.
            latency_ms: Mutex::new(Histogram::empty(0.0, 10_000.0, 400)),
            batch_size: Mutex::new(Histogram::empty(0.0, max_batch.max(1) as f64 + 1.0, {
                max_batch.max(1) + 1
            })),
        }
    }

    /// Record one `/generate` end-to-end latency, milliseconds.
    pub fn observe_latency_ms(&self, ms: f64) {
        self.latency_ms.lock().push(ms);
    }

    /// Record one executed batch of `n` coalesced requests.
    pub fn observe_batch(&self, n: usize) {
        // sync: monotonic counters scraped by /metrics; no ordering
        // requirement between them and other state.
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(n as u64, Ordering::Relaxed);
        self.batch_size.lock().push(n as f64);
    }

    /// Render the Prometheus text exposition for `/metrics`.
    ///
    /// All loads are Relaxed on purpose: each series is an independent
    /// monotonic counter or gauge and a scrape needs no cross-counter
    /// consistency.
    pub fn render(&self, models_live: usize, cache_hits: u64, cache_misses: u64) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        // sync: every load below is a Relaxed scrape of an independent
        // monotonic counter or gauge; /metrics imposes no cross-counter
        // ordering.
        counter(
            &mut out,
            "gendt_serve_http_requests_total",
            "Requests received, any endpoint.",
            self.http_requests.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_serve_generate_ok_total",
            "Generate requests answered 200.",
            self.generate_ok.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_serve_generate_rejected_total",
            "Generate requests shed with 429.",
            self.generate_rejected.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_serve_generate_failed_total",
            "Generate requests failed (non-429 errors).",
            self.generate_failed.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_serve_deadline_expired_total",
            "Jobs whose deadline expired while still queued.",
            self.deadline_expired.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_serve_faults_injected_total",
            "Faults injected by the GENDT_FAULTS harness, process-wide.",
            gendt_faults::injected_count(),
        );
        gauge(
            &mut out,
            "gendt_serve_queue_depth",
            "Jobs currently queued in the scheduler.",
            self.queue_depth.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "gendt_serve_models_live",
            "Models currently loaded in the registry.",
            models_live as u64,
        );
        counter(
            &mut out,
            "gendt_serve_context_cache_hits_total",
            "Context cache hits.",
            cache_hits,
        );
        counter(
            &mut out,
            "gendt_serve_context_cache_misses_total",
            "Context cache misses.",
            cache_misses,
        );
        counter(
            &mut out,
            "gendt_serve_batched_requests_total",
            "Requests that went through a batched forward pass.",
            self.batched_requests.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_serve_batches_total",
            "Batched forward passes executed.",
            self.batches.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_serve_legacy_requests_total",
            "Requests on the legacy unversioned surface (sunsetting).",
            self.legacy_requests.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_serve_stream_sessions_opened_total",
            "Stream sessions opened over /v1/stream.",
            self.stream_sessions_opened.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_serve_stream_sessions_evicted_total",
            "Stream sessions evicted under capacity pressure.",
            self.stream_sessions_evicted.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_serve_stream_sessions_expired_total",
            "Stream sessions expired by the idle TTL.",
            self.stream_sessions_expired.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gendt_serve_stream_chunks_total",
            "Chunks streamed over /v1/stream responses.",
            self.stream_chunks.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "gendt_serve_stream_sessions",
            "Live sessions in the stream session table.",
            self.stream_sessions.load(Ordering::Relaxed),
        );
        {
            let lat = self.latency_ms.lock();
            render_summary(
                &mut out,
                "gendt_serve_latency_ms",
                "Generate end-to-end latency, milliseconds.",
                &lat,
            );
        }
        {
            let bs = self.batch_size.lock();
            render_summary(
                &mut out,
                "gendt_serve_batch_size",
                "Coalesced requests per batched forward pass.",
                &bs,
            );
        }
        out
    }
}

fn render_summary(out: &mut String, name: &str, help: &str, h: &Histogram) {
    let n = h.total();
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} summary\n"));
    if n > 0 {
        let q = Quantiles::from_histogram(h);
        out.push_str(&format!("{name}{{quantile=\"0.5\"}} {}\n", q.p50));
        out.push_str(&format!("{name}{{quantile=\"0.95\"}} {}\n", q.p95));
        out.push_str(&format!("{name}{{quantile=\"0.99\"}} {}\n", q.p99));
        out.push_str(&format!("{name}{{quantile=\"0.999\"}} {}\n", q.p999));
    }
    // Sparse cumulative buckets (only the bins where the cumulative
    // count steps, plus +Inf): the fleet router's federation merges
    // these exactly across workers, where quantile summaries cannot be
    // combined.
    let width = (h.hi - h.lo) / h.counts.len().max(1) as f64;
    let mut cum = 0u64;
    for (i, &c) in h.counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let le = h.lo + width * (i as f64 + 1.0);
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {n}\n"));
    out.push_str(&format!("{name}_count {n}\n"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_core_series() {
        let m = ServeMetrics::new(8);
        m.http_requests.fetch_add(3, Ordering::Relaxed);
        m.observe_latency_ms(12.0);
        m.observe_batch(4);
        let text = m.render(2, 5, 7);
        for needle in [
            "gendt_serve_http_requests_total 3",
            "gendt_serve_models_live 2",
            "gendt_serve_context_cache_hits_total 5",
            "gendt_serve_latency_ms_count 1",
            "gendt_serve_latency_ms_bucket{le=\"25\"} 1",
            "gendt_serve_latency_ms_bucket{le=\"+Inf\"} 1",
            "gendt_serve_batch_size_count 1",
            "gendt_serve_batched_requests_total 4",
            "gendt_serve_batches_total 1",
            "gendt_serve_deadline_expired_total",
            "gendt_serve_faults_injected_total",
            "gendt_serve_legacy_requests_total",
            "gendt_serve_stream_sessions_opened_total",
            "gendt_serve_stream_sessions 0",
            "gendt_serve_stream_chunks_total",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
