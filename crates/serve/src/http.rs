//! Minimal HTTP/1.1 request parsing and response writing over
//! `std::net::TcpStream` — just enough of the protocol for this
//! service's `Connection: close` request/response exchanges, with hard
//! caps on header and body size so a misbehaving client cannot balloon
//! memory.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest accepted header block, bytes.
const MAX_HEADER: usize = 16 * 1024;
/// Largest accepted body, bytes.
const MAX_BODY: usize = 1024 * 1024;

/// A parsed request: method, path, headers, and raw body.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, query string included.
    pub path: String,
    /// Header `(name, value)` pairs in wire order, names as sent.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Socket failure mid-read.
    Io(std::io::Error),
    /// The bytes on the wire were not a parseable HTTP/1.1 request.
    Malformed(String),
    /// The request exceeded a size cap.
    TooLarge(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
        }
    }
}

/// Read one HTTP/1.1 request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    // Read until the end of the header block.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER {
            return Err(HttpError::TooLarge(format!(
                "header block exceeds {MAX_HEADER} bytes"
            )));
        }
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before end of headers".to_string(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let header_text = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = header_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".to_string()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing path".to_string()))?
        .to_string();

    let mut content_length = 0usize;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::Malformed(format!("bad content-length {:?}", value.trim()))
                })?;
            }
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds {MAX_BODY}"
        )));
    }

    // Body: whatever arrived past the header block, then the remainder.
    let mut body: Vec<u8> = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed mid-body".to_string(),
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Write a complete response and flush. Always `Connection: close`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_extra(stream, status, reason, content_type, &[], body)
}

/// [`write_response`] with extra headers (`Retry-After`, `Deprecation`,
/// ...) between the standard block and the body.
pub fn write_response_extra(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Start a chunked response: status line and headers with
/// `Transfer-Encoding: chunked` instead of `Content-Length`. Follow
/// with [`write_chunk`] calls and one [`finish_chunked`].
pub fn write_chunked_head(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n"
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Write one HTTP/1.1 chunk (size line, payload, CRLF) and flush so
/// the client sees the span as soon as the scheduler produced it.
/// Empty payloads are skipped — a zero-size chunk would terminate the
/// stream.
pub fn write_chunk(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    if payload.is_empty() {
        return Ok(());
    }
    stream.write_all(format!("{:x}\r\n", payload.len()).as_bytes())?;
    stream.write_all(payload)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminate a chunked response with the zero-size chunk.
pub fn finish_chunked(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Decode a chunked transfer coding body into the payload bytes.
/// Tolerates a truncated tail (a stream cut mid-chunk yields the bytes
/// that made it), which is exactly what a deadline-expired stream
/// leaves on the wire.
pub fn decode_chunked(raw: &[u8]) -> Result<Vec<u8>, HttpError> {
    let mut out = Vec::with_capacity(raw.len());
    let mut pos = 0usize;
    // A missing size line means a truncated stream: return what decoded.
    while let Some(line_end) = raw[pos..].windows(2).position(|w| w == b"\r\n") {
        let size_line = String::from_utf8_lossy(&raw[pos..pos + line_end]);
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_hex:?}")))?;
        pos += line_end + 2;
        if size == 0 {
            break; // terminal chunk
        }
        let take = size.min(raw.len().saturating_sub(pos));
        out.extend_from_slice(&raw[pos..pos + take]);
        pos += size + 2; // payload + trailing CRLF
        if pos > raw.len() {
            break; // truncated payload
        }
        if out.len() > MAX_BODY {
            return Err(HttpError::TooLarge(format!(
                "chunked body exceeds {MAX_BODY} bytes"
            )));
        }
    }
    Ok(out)
}

/// Shorthand for a JSON response.
pub fn write_json(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    json: &str,
) -> std::io::Result<()> {
    write_response(stream, status, reason, "application/json", json.as_bytes())
}

/// Shorthand for a JSON response with extra headers.
pub fn write_json_extra(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra: &[(&str, &str)],
    json: &str,
) -> std::io::Result<()> {
    write_response_extra(
        stream,
        status,
        reason,
        "application/json",
        extra,
        json.as_bytes(),
    )
}

/// A parsed client-side response: status, headers, and body text.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response header `(name, value)` pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body text.
    pub body: String,
}

impl HttpResponse {
    /// First response header with the given name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Blocking one-shot HTTP client for tools and tests: send `method
/// path` with an optional JSON body, return `(status, body)`.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), HttpError> {
    let resp = http_request_full(addr, method, path, &[], body)?;
    Ok((resp.status, resp.body))
}

/// [`http_request`] with extra request headers and the full parsed
/// response (status, headers, body) — tests use this to pin
/// `Retry-After` and `Deprecation` headers.
pub fn http_request_full(
    addr: &str,
    method: &str,
    path: &str,
    extra: &[(&str, &str)],
    body: Option<&str>,
) -> Result<HttpResponse, HttpError> {
    let mut stream = TcpStream::connect(addr).map_err(HttpError::Io)?;
    let body_bytes = body.unwrap_or("").as_bytes();
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body_bytes.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).map_err(HttpError::Io)?;
    stream.write_all(body_bytes).map_err(HttpError::Io)?;
    stream.flush().map_err(HttpError::Io)?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(HttpError::Io)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| HttpError::Malformed("no header/body separator in response".to_string()))?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty response".to_string()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {status_line:?}")))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            line.split_once(':')
                .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        })
        .collect();
    let chunked = headers.iter().any(|(n, v)| {
        n.eq_ignore_ascii_case("transfer-encoding") && v.eq_ignore_ascii_case("chunked")
    });
    let body = if chunked {
        String::from_utf8_lossy(&decode_chunked(payload.as_bytes())?).into_owned()
    } else {
        payload.to_string()
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn chunked_roundtrip_and_truncation() {
        // Two chunks + terminator.
        let wire = b"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let body = decode_chunked(wire).expect("well-formed chunked body");
        assert_eq!(body, b"hello world");

        // Cut mid-payload: the bytes that made it are returned.
        let cut = &wire[..10];
        assert_eq!(decode_chunked(cut).expect("truncated decodes"), b"hello");

        // Garbage size line is an error, not silent truncation.
        assert!(decode_chunked(b"zz\r\nhello\r\n").is_err());
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = Request {
            method: "POST".to_string(),
            path: "/v1/generate".to_string(),
            headers: vec![("Deadline-Ms".to_string(), "250".to_string())],
            body: Vec::new(),
        };
        assert_eq!(req.header("deadline-ms"), Some("250"));
        assert_eq!(req.header("DEADLINE-MS"), Some("250"));
        assert_eq!(req.header("retry-after"), None);
    }
}
