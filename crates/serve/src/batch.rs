//! Batched generation execution: the pure compute step the scheduler
//! hands coalesced requests to.
//!
//! This module feeds generation and must stay deterministic: no clocks,
//! no ambient randomness — every output is a function of (model,
//! context, seed) alone, which is what makes a batched response
//! bitwise-equal to its single-request counterpart.

use crate::registry::ModelEntry;
use gendt::{generate_series_batch, GenBatchItem, GeneratedSeries};
use gendt_data::context::RunContext;
use std::sync::Arc;

/// One queued generation job: the model pinned at dispatch time, the
/// extracted context, and the request's explicit sample seed.
pub struct GenJob {
    /// Model entry the request resolved; pinned so a `/reload` cannot
    /// swap the model out from under a queued request.
    pub entry: Arc<ModelEntry>,
    /// Extracted trajectory context (possibly shared via the cache).
    pub ctx: Arc<RunContext>,
    /// Generation sample seed from the request.
    pub sample_seed: u64,
}

/// Run one coalesced batch against a single model. Jobs must all carry
/// the same `entry` the caller grouped by; results align with `jobs`.
pub fn run_batch(entry: &ModelEntry, jobs: &[GenJob]) -> Vec<GeneratedSeries> {
    let items: Vec<GenBatchItem> = jobs
        .iter()
        .map(|j| GenBatchItem {
            ctx: &j.ctx,
            seed: j.sample_seed,
        })
        .collect();
    generate_series_batch(&entry.model, &entry.kpis, &items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::demo_model;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::kpi_types::Kpi;

    /// The scheduler's compute step must produce the same bits whether
    /// the model runs the interpreted tape or compiled plans; each
    /// `ModelEntry` owns its plan cache, so a `/reload` (fresh entries)
    /// invalidates plans by construction.
    #[test]
    fn plan_mode_batches_match_interpreted() {
        let entry = |plan: bool| {
            let mut model = demo_model(3);
            model.set_plan_mode(plan);
            ModelEntry {
                name: "demo".to_string(),
                version: 0,
                model,
                kpis: Kpi::DATASET_A.to_vec(),
            }
        };
        let ds = dataset_a(&BuildCfg::quick(9));
        let ctx = Arc::new(gendt_data::context::extract(
            &ds.world,
            &ds.deployment,
            &ds.runs[0].traj,
            &gendt_data::context::ContextCfg {
                max_cells: 3,
                ..gendt_data::context::ContextCfg::default()
            },
        ));
        let tape = entry(false);
        let plan = entry(true);
        let jobs: Vec<GenJob> = [11u64, 12]
            .iter()
            .map(|&seed| GenJob {
                entry: Arc::new(entry(false)),
                ctx: Arc::clone(&ctx),
                sample_seed: seed,
            })
            .collect();
        let base = run_batch(&tape, &jobs);
        let first = run_batch(&plan, &jobs);
        let replay = run_batch(&plan, &jobs);
        for k in 0..jobs.len() {
            assert_eq!(base[k].series, first[k].series, "plan batch diverges");
            assert_eq!(base[k].series, replay[k].series, "plan replay diverges");
        }
    }
}
