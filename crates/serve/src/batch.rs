//! Batched generation execution: the pure compute step the scheduler
//! hands coalesced requests to.
//!
//! This module feeds generation and must stay deterministic: no clocks,
//! no ambient randomness — every output is a function of (model,
//! context, seed, cursor) alone, which is what makes a batched response
//! bitwise-equal to its single-request counterpart and a streamed chunk
//! bitwise-equal to the same span of the one-shot series.

use crate::registry::ModelEntry;
use gendt::{generate_series_chunk, GenChunkItem, GenCursor, GeneratedSeries};
use gendt_data::context::RunContext;
use std::sync::Arc;

/// Streaming continuation carried by a [`GenJob`]: resume generation
/// from `cursor`, producing at most `max_windows` windows this chunk.
#[derive(Clone)]
pub struct StreamPart {
    /// Resume position (carried LSTM state + RNG stream + next window).
    pub cursor: GenCursor,
    /// Window budget for this chunk.
    pub max_windows: usize,
}

/// One queued generation job: the model pinned at dispatch time, the
/// extracted context, and the request's explicit sample seed.
#[derive(Clone)]
pub struct GenJob {
    /// Model entry the request resolved; pinned so a `/reload` cannot
    /// swap the model out from under a queued request.
    pub entry: Arc<ModelEntry>,
    /// Extracted trajectory context (possibly shared via the cache).
    pub ctx: Arc<RunContext>,
    /// Generation sample seed from the request.
    pub sample_seed: u64,
    /// `Some` for a streaming chunk, `None` for a one-shot series.
    /// Streaming continuations coalesce into the same micro-batches as
    /// one-shot jobs — the chunk pass is row-local, so mixed cursor
    /// positions batch bitwise-safely.
    pub stream: Option<StreamPart>,
}

/// One executed job: the produced series (full series for one-shot jobs,
/// this chunk's span for streaming jobs) plus the advanced cursor for
/// streaming jobs.
pub struct BatchOut {
    /// Generated series, aligned with the job.
    pub series: GeneratedSeries,
    /// Advanced resume cursor; `None` for one-shot jobs.
    pub cursor: Option<GenCursor>,
}

/// Run one coalesced batch against a single model. Jobs must all carry
/// the same `entry` the caller grouped by; results align with `jobs`.
pub fn run_batch(entry: &ModelEntry, jobs: &[GenJob]) -> Vec<BatchOut> {
    let cfg = entry.model.cfg();
    let mut items: Vec<GenChunkItem> = jobs
        .iter()
        .map(|j| match &j.stream {
            Some(part) => GenChunkItem {
                ctx: &j.ctx,
                cursor: part.cursor.clone(),
                max_windows: part.max_windows,
            },
            None => GenChunkItem {
                ctx: &j.ctx,
                cursor: GenCursor::fresh(cfg, j.sample_seed),
                max_windows: usize::MAX,
            },
        })
        .collect();
    let series = generate_series_chunk(&entry.model, &entry.kpis, &mut items);
    series
        .into_iter()
        .zip(items)
        .zip(jobs)
        .map(|((series, item), job)| BatchOut {
            series,
            cursor: job.stream.as_ref().map(|_| item.cursor),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::demo_model;
    use gendt_data::builders::{dataset_a, BuildCfg};
    use gendt_data::kpi_types::Kpi;

    fn demo_ctx() -> Arc<RunContext> {
        let ds = dataset_a(&BuildCfg::quick(9));
        Arc::new(gendt_data::context::extract(
            &ds.world,
            &ds.deployment,
            &ds.runs[0].traj,
            &gendt_data::context::ContextCfg {
                max_cells: 3,
                ..gendt_data::context::ContextCfg::default()
            },
        ))
    }

    /// The scheduler's compute step must produce the same bits whether
    /// the model runs the interpreted tape or compiled plans; each
    /// `ModelEntry` owns its plan cache, so a `/reload` (fresh entries)
    /// invalidates plans by construction.
    #[test]
    fn plan_mode_batches_match_interpreted() {
        let entry = |plan: bool| {
            let mut model = demo_model(3);
            model.set_plan_mode(plan);
            ModelEntry {
                name: "demo".to_string(),
                version: 0,
                model,
                kpis: Kpi::DATASET_A.to_vec(),
            }
        };
        let ctx = demo_ctx();
        let tape = entry(false);
        let plan = entry(true);
        let jobs: Vec<GenJob> = [11u64, 12]
            .iter()
            .map(|&seed| GenJob {
                entry: Arc::new(entry(false)),
                ctx: Arc::clone(&ctx),
                sample_seed: seed,
                stream: None,
            })
            .collect();
        let base = run_batch(&tape, &jobs);
        let first = run_batch(&plan, &jobs);
        let replay = run_batch(&plan, &jobs);
        for k in 0..jobs.len() {
            assert_eq!(base[k].series.series, first[k].series.series);
            assert_eq!(base[k].series.series, replay[k].series.series);
        }
    }

    /// A streaming job chunked through `run_batch` — coalesced with an
    /// unrelated one-shot job in the same batch — must concatenate to
    /// the one-shot series for its own seed.
    #[test]
    fn streamed_chunks_concatenate_to_one_shot() {
        let entry = ModelEntry {
            name: "demo".to_string(),
            version: 0,
            model: demo_model(3),
            kpis: Kpi::DATASET_A.to_vec(),
        };
        let ctx = demo_ctx();
        let one_shot = run_batch(
            &entry,
            &[GenJob {
                entry: Arc::new(ModelEntry {
                    name: "demo".to_string(),
                    version: 0,
                    model: demo_model(3),
                    kpis: Kpi::DATASET_A.to_vec(),
                }),
                ctx: Arc::clone(&ctx),
                sample_seed: 21,
                stream: None,
            }],
        )
        .remove(0);
        assert!(one_shot.cursor.is_none());

        let mut cursor = GenCursor::fresh(entry.model.cfg(), 21);
        let mut cat: Vec<Vec<f64>> = vec![Vec::new(); 4];
        loop {
            let out = run_batch(
                &entry,
                &[
                    GenJob {
                        entry: Arc::new(ModelEntry {
                            name: "demo".to_string(),
                            version: 0,
                            model: demo_model(3),
                            kpis: Kpi::DATASET_A.to_vec(),
                        }),
                        ctx: Arc::clone(&ctx),
                        sample_seed: 21,
                        stream: Some(StreamPart {
                            cursor: cursor.clone(),
                            max_windows: 1,
                        }),
                    },
                    GenJob {
                        entry: Arc::new(ModelEntry {
                            name: "demo".to_string(),
                            version: 0,
                            model: demo_model(3),
                            kpis: Kpi::DATASET_A.to_vec(),
                        }),
                        ctx: Arc::clone(&ctx),
                        sample_seed: 99,
                        stream: None,
                    },
                ],
            );
            let chunk = &out[0];
            if chunk.series.is_empty() {
                break;
            }
            for (acc, s) in cat.iter_mut().zip(chunk.series.series.iter()) {
                acc.extend_from_slice(s);
            }
            cursor = chunk.cursor.clone().expect("stream job returns a cursor");
        }
        assert_eq!(one_shot.series.series, cat, "streamed concat diverges");
    }
}
