//! Batched generation execution: the pure compute step the scheduler
//! hands coalesced requests to.
//!
//! This module feeds generation and must stay deterministic: no clocks,
//! no ambient randomness — every output is a function of (model,
//! context, seed) alone, which is what makes a batched response
//! bitwise-equal to its single-request counterpart.

use crate::registry::ModelEntry;
use gendt::{generate_series_batch, GenBatchItem, GeneratedSeries};
use gendt_data::context::RunContext;
use std::sync::Arc;

/// One queued generation job: the model pinned at dispatch time, the
/// extracted context, and the request's explicit sample seed.
pub struct GenJob {
    /// Model entry the request resolved; pinned so a `/reload` cannot
    /// swap the model out from under a queued request.
    pub entry: Arc<ModelEntry>,
    /// Extracted trajectory context (possibly shared via the cache).
    pub ctx: Arc<RunContext>,
    /// Generation sample seed from the request.
    pub sample_seed: u64,
}

/// Run one coalesced batch against a single model. Jobs must all carry
/// the same `entry` the caller grouped by; results align with `jobs`.
pub fn run_batch(entry: &ModelEntry, jobs: &[GenJob]) -> Vec<GeneratedSeries> {
    let items: Vec<GenBatchItem> = jobs
        .iter()
        .map(|j| GenBatchItem {
            ctx: &j.ctx,
            seed: j.sample_seed,
        })
        .collect();
    generate_series_batch(&entry.model, &entry.kpis, &items)
}
