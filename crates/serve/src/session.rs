//! Stream session table: server-side state for `/v1/stream`.
//!
//! A streaming session holds the carried LSTM state, RNG stream
//! position, and window offset of a partially generated series so a
//! continuation request resumes bitwise-exactly where the last chunk
//! stopped. The table layers the same recency discipline as the LRU
//! context cache, plus an idle TTL: capacity pressure evicts the least
//! recently used *idle* session, and a sweep expires sessions idle
//! longer than the TTL.
//!
//! Checkout leaves a `Busy` marker in the slot, so a session being
//! continued right now can never be evicted, expired, or shed out from
//! under its in-flight request — the churn interleave model in
//! `gendt-audit sync-check` drives exactly that race. Checkin restores
//! the slot (refreshing recency) unless the session was force-removed
//! while busy, in which case the state is simply dropped.

use crate::metrics::ServeMetrics;
use crate::registry::ModelEntry;
use gendt::GenCursor;
use gendt_data::context::RunContext;
use gendt_sync::atomic::Ordering;
use gendt_sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a `/v1/stream` continuation needs to resume generation
/// bitwise-exactly: the pinned model, the extracted context, and the
/// resume cursor.
pub struct StreamSession {
    /// Session id (minted by the worker or forwarded by the fleet).
    pub id: String,
    /// Model entry pinned at open time; a `/reload` cannot swap it.
    pub entry: Arc<ModelEntry>,
    /// Extracted trajectory context (possibly shared via the cache).
    pub ctx: Arc<RunContext>,
    /// Resume position: carried LSTM state, RNG stream, next window.
    pub cursor: GenCursor,
    /// Total generation windows in the full series.
    pub total_windows: usize,
    /// The open request's sample seed (reported, not re-used: the
    /// cursor carries the live RNG stream).
    pub sample_seed: u64,
    /// Windows per streamed chunk for this session.
    pub chunk_windows: usize,
    /// Next chunk sequence number.
    pub seq: u64,
}

/// One slot: an idle session, or a `Busy` marker while a request holds
/// the session checked out.
enum SlotState<T> {
    Idle(T),
    Busy,
}

struct Slot<T> {
    state: SlotState<T>,
    /// Recency tick for LRU ordering (monotonic, clock-free).
    tick: u64,
    /// Wall-clock recency for the idle TTL.
    last_used: Instant,
}

struct Inner<T> {
    map: BTreeMap<String, Slot<T>>,
    tick: u64,
}

/// Outcome of [`SessionTable::checkout`].
pub enum Checkout<T> {
    /// The session, now exclusively held by the caller; the slot keeps
    /// a `Busy` marker until checkin or removal.
    Session(T),
    /// The session exists but another request holds it checked out.
    Busy,
    /// No such session (never opened, completed, evicted, or expired).
    NotFound,
}

/// Bounded table of stream sessions with LRU + TTL eviction over idle
/// slots. Generic over the session payload so the audit crate's
/// interleave models can churn the real table with cheap values.
pub struct SessionTable<T> {
    cap: usize,
    ttl: Duration,
    metrics: Arc<ServeMetrics>,
    inner: Mutex<Inner<T>>,
}

impl<T> SessionTable<T> {
    /// Table holding at most `cap` sessions (at least one); idle
    /// sessions expire after `ttl` on the next [`sweep`].
    ///
    /// [`sweep`]: SessionTable::sweep
    pub fn new(cap: usize, ttl: Duration, metrics: Arc<ServeMetrics>) -> SessionTable<T> {
        SessionTable {
            cap: cap.max(1),
            ttl,
            metrics,
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                tick: 0,
            }),
        }
    }

    fn publish_len(&self, len: usize) {
        // sync: gauge scraped by /metrics; the map itself is guarded by
        // `inner`, the gauge needs no ordering against it.
        self.metrics
            .stream_sessions
            .store(len as u64, Ordering::Relaxed);
    }

    /// Insert a freshly opened session, evicting least-recently-used
    /// *idle* sessions while over capacity. Busy slots are never
    /// evicted; the table may transiently exceed `cap` when every slot
    /// is busy. Returns the ids evicted to make room.
    pub fn open(&self, id: String, session: T) -> Vec<String> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            id,
            Slot {
                state: SlotState::Idle(session),
                tick,
                last_used: Instant::now(),
            },
        );
        let mut evicted = Vec::new();
        while inner.map.len() > self.cap {
            let oldest = inner
                .map
                .iter()
                .filter(|(_, slot)| matches!(slot.state, SlotState::Idle(_)))
                .min_by_key(|(_, slot)| slot.tick)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    inner.map.remove(&k);
                    evicted.push(k);
                }
                None => break, // every remaining slot is busy
            }
        }
        // sync: monotonic counters for /metrics; see publish_len.
        self.metrics
            .stream_sessions_opened
            .fetch_add(1, Ordering::Relaxed);
        self.metrics
            .stream_sessions_evicted
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        self.publish_len(inner.map.len());
        evicted
    }

    /// Take the session out of its slot for exclusive use, leaving a
    /// `Busy` marker that shields it from eviction, expiry, and
    /// shedding until [`checkin`] or [`remove`].
    ///
    /// [`checkin`]: SessionTable::checkin
    /// [`remove`]: SessionTable::remove
    pub fn checkout(&self, id: &str) -> Checkout<T> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(id) {
            None => Checkout::NotFound,
            Some(slot) => {
                slot.tick = tick;
                slot.last_used = Instant::now();
                match std::mem::replace(&mut slot.state, SlotState::Busy) {
                    SlotState::Idle(sess) => Checkout::Session(sess),
                    SlotState::Busy => Checkout::Busy,
                }
            }
        }
    }

    /// Return a checked-out session to its slot, refreshing recency.
    /// Returns `false` (dropping the session) when the slot was
    /// force-removed while busy.
    pub fn checkin(&self, id: &str, session: T) -> bool {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(id) {
            Some(slot) => {
                slot.state = SlotState::Idle(session);
                slot.tick = tick;
                slot.last_used = Instant::now();
                true
            }
            None => false,
        }
    }

    /// Remove a session outright (completion, drain, or error),
    /// whether idle or checked out. The holder of a busy checkout
    /// simply drops the state instead of checking it back in.
    pub fn remove(&self, id: &str) -> bool {
        let mut inner = self.inner.lock();
        let hit = inner.map.remove(id).is_some();
        self.publish_len(inner.map.len());
        hit
    }

    /// Expire idle sessions whose last use is older than the TTL.
    /// Busy slots are shielded. Returns the expired ids.
    pub fn sweep(&self) -> Vec<String> {
        let mut inner = self.inner.lock();
        let dead: Vec<String> = inner
            .map
            .iter()
            .filter(|(_, slot)| {
                matches!(slot.state, SlotState::Idle(_)) && slot.last_used.elapsed() >= self.ttl
            })
            .map(|(k, _)| k.clone())
            .collect();
        for k in &dead {
            inner.map.remove(k);
        }
        // sync: monotonic counter for /metrics; see publish_len.
        self.metrics
            .stream_sessions_expired
            .fetch_add(dead.len() as u64, Ordering::Relaxed);
        self.publish_len(inner.map.len());
        dead
    }

    /// Shed every idle session (drain): the server stops carrying
    /// state for sessions with no in-flight request. Busy sessions
    /// finish their current chunk; their handlers observe the drain
    /// flag and close with a `drain` trailer. Returns the shed ids.
    pub fn shed_idle(&self) -> Vec<String> {
        let mut inner = self.inner.lock();
        let idle: Vec<String> = inner
            .map
            .iter()
            .filter(|(_, slot)| matches!(slot.state, SlotState::Idle(_)))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &idle {
            inner.map.remove(k);
        }
        self.publish_len(inner.map.len());
        idle
    }

    /// Live sessions, busy markers included.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the table holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(cap: usize, ttl_ms: u64) -> SessionTable<u64> {
        SessionTable::new(
            cap,
            Duration::from_millis(ttl_ms),
            Arc::new(ServeMetrics::new(4)),
        )
    }

    #[test]
    fn checkout_checkin_roundtrip() {
        let t = table(4, 60_000);
        t.open("a".to_string(), 1);
        let Checkout::Session(v) = t.checkout("a") else {
            panic!("expected checkout to yield the session");
        };
        assert_eq!(v, 1);
        assert!(matches!(t.checkout("a"), Checkout::Busy));
        assert!(t.checkin("a", v + 1));
        let Checkout::Session(v) = t.checkout("a") else {
            panic!("expected re-checkout after checkin");
        };
        assert_eq!(v, 2);
        assert!(matches!(t.checkout("missing"), Checkout::NotFound));
    }

    #[test]
    fn capacity_evicts_lru_idle_but_never_busy() {
        let t = table(2, 60_000);
        t.open("a".to_string(), 1);
        t.open("b".to_string(), 2);
        // Touch "a" so "b" is LRU, then overflow.
        let Checkout::Session(v) = t.checkout("a") else {
            panic!("checkout a");
        };
        t.checkin("a", v);
        let evicted = t.open("c".to_string(), 3);
        assert_eq!(evicted, vec!["b".to_string()]);
        assert!(matches!(t.checkout("b"), Checkout::NotFound));

        // A busy slot is shielded: with "a" checked out, overflow must
        // evict idle "c" even though "a" is older.
        let Checkout::Session(_) = t.checkout("a") else {
            panic!("checkout a again");
        };
        let evicted = t.open("d".to_string(), 4);
        assert_eq!(evicted, vec!["c".to_string()]);
        assert!(matches!(t.checkout("a"), Checkout::Busy));
    }

    #[test]
    fn sweep_expires_idle_not_busy() {
        let t = table(8, 0); // zero TTL: everything idle is expired
        t.open("idle".to_string(), 1);
        t.open("busy".to_string(), 2);
        let Checkout::Session(_) = t.checkout("busy") else {
            panic!("checkout busy");
        };
        let dead = t.sweep();
        assert_eq!(dead, vec!["idle".to_string()]);
        assert!(matches!(t.checkout("busy"), Checkout::Busy));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn shed_idle_leaves_busy_and_checkin_after_removal_drops() {
        let t = table(8, 60_000);
        t.open("idle".to_string(), 1);
        t.open("busy".to_string(), 2);
        let Checkout::Session(v) = t.checkout("busy") else {
            panic!("checkout busy");
        };
        assert_eq!(t.shed_idle(), vec!["idle".to_string()]);
        assert_eq!(t.len(), 1, "busy marker survives shedding");
        // Force-remove while busy: the later checkin drops the state.
        assert!(t.remove("busy"));
        assert!(!t.checkin("busy", v));
        assert!(t.is_empty());
    }

    #[test]
    fn gauge_tracks_table_size() {
        let metrics = Arc::new(ServeMetrics::new(4));
        let t: SessionTable<u64> =
            SessionTable::new(2, Duration::from_secs(60), Arc::clone(&metrics));
        t.open("a".to_string(), 1);
        t.open("b".to_string(), 2);
        t.open("c".to_string(), 3);
        assert_eq!(metrics.stream_sessions.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.stream_sessions_opened.load(Ordering::Relaxed), 3);
        assert_eq!(metrics.stream_sessions_evicted.load(Ordering::Relaxed), 1);
        t.remove("b");
        t.remove("c");
        assert_eq!(metrics.stream_sessions.load(Ordering::Relaxed), 0);
    }
}
