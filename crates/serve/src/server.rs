//! The HTTP server: accept loop, routing, and the `/generate` handler
//! wiring registry → cache → scheduler together.
//!
//! Threading model: one acceptor thread, one detached thread per
//! connection (`Connection: close`, so connections are short-lived), and
//! a configurable number of scheduler workers executing batched forward
//! passes. Shutdown is cooperative — `POST /shutdown` (or
//! [`ServerHandle::shutdown`]) raises a flag, wakes the acceptor with a
//! self-connection, and lets workers drain.

use crate::api::{
    parse_scenario, ErrorResponse, GenerateRequest, GenerateResponse, ModelsResponse,
};
use crate::batch::GenJob;
use crate::cache::{ContextCache, ContextKey};
use crate::http::{read_request, write_json, write_response, Request};
use crate::metrics::ServeMetrics;
use crate::registry::Registry;
use crate::scheduler::{SchedCfg, Scheduler, SubmitError};
use gendt_data::context::{extract, ContextCfg};
use gendt_geo::{trajectory, World, WorldCfg, XY};
use gendt_radio::Deployment;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest trajectory a request may ask for, seconds. Guards against a
/// single request occupying a worker for minutes.
const MAX_DURATION_S: f64 = 4.0 * 3600.0;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerCfg {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 for tests).
    pub addr: String,
    /// Directory of model checkpoints.
    pub models_dir: PathBuf,
    /// Seed of the synthetic world served against.
    pub world_seed: u64,
    /// Micro-batching scheduler knobs.
    pub sched: SchedCfg,
    /// Context cache capacity (entries).
    pub cache_cap: usize,
    /// Scheduler worker threads.
    pub workers: usize,
}

impl ServerCfg {
    /// Defaults for a models directory: one worker, port picked by the
    /// OS, the paper's world seed.
    pub fn new(models_dir: PathBuf) -> ServerCfg {
        ServerCfg {
            addr: "127.0.0.1:0".to_string(),
            models_dir,
            world_seed: 1,
            sched: SchedCfg::default(),
            cache_cap: 128,
            workers: 1,
        }
    }
}

struct ServerState {
    registry: Registry,
    world: World,
    deployment: Deployment,
    metrics: Arc<ServeMetrics>,
    scheduler: Arc<Scheduler>,
    cache: ContextCache,
    shutdown: AtomicBool,
}

/// A running server: its bound address and the means to stop it.
pub struct ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Shared metrics (for in-process inspection by tools and tests).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        self.state.metrics.clone()
    }

    /// Block until the acceptor exits (i.e. until `/shutdown`).
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Stop the server: raise the flag, wake the acceptor, join
    /// everything.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.scheduler.stop();
        // The acceptor blocks in accept(); a throwaway connection wakes it.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Start serving. Returns once the listener is bound and workers are up.
pub fn serve(cfg: ServerCfg) -> Result<ServerHandle, String> {
    let registry = Registry::load(&cfg.models_dir)?;
    let world = World::generate(WorldCfg::city(cfg.world_seed));
    let deployment = Deployment::from_world(&world);
    let metrics = Arc::new(ServeMetrics::new(cfg.sched.max_batch));
    let scheduler = Arc::new(Scheduler::new(cfg.sched, metrics.clone()));
    let listener =
        TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("no local addr: {e}"))?;

    let state = Arc::new(ServerState {
        registry,
        world,
        deployment,
        metrics,
        scheduler: scheduler.clone(),
        cache: ContextCache::new(cfg.cache_cap),
        shutdown: AtomicBool::new(false),
    });

    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for _ in 0..cfg.workers.max(1) {
        let sched = scheduler.clone();
        workers.push(std::thread::spawn(move || sched.run_worker()));
    }

    let accept_state = state.clone();
    let acceptor = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_state.shutdown.load(Ordering::Acquire) {
                break;
            }
            let conn_state = accept_state.clone();
            match stream {
                Ok(s) => {
                    std::thread::spawn(move || handle_conn(&conn_state, s));
                }
                Err(_) => continue,
            }
        }
        accept_state.scheduler.stop();
    });

    Ok(ServerHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        workers,
    })
}

fn error_body(msg: &str) -> String {
    serde_json::to_string(&ErrorResponse {
        error: msg.to_string(),
    })
    .unwrap_or_else(|_| format!("{{\"error\":{msg:?}}}"))
}

fn handle_conn(state: &Arc<ServerState>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let req = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = write_json(
                &mut stream,
                400,
                "Bad Request",
                &error_body(&format!("{e}")),
            );
            return;
        }
    };
    state.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/generate") => handle_generate(state, &mut stream, &req),
        ("GET", "/models") => {
            let body = serde_json::to_string(&ModelsResponse {
                models: state.registry.names(),
            })
            .unwrap_or_else(|_| "{}".to_string());
            let _ = write_json(&mut stream, 200, "OK", &body);
        }
        ("POST", "/reload") => match state.registry.reload() {
            Ok(_) => {
                let body = serde_json::to_string(&ModelsResponse {
                    models: state.registry.names(),
                })
                .unwrap_or_else(|_| "{}".to_string());
                let _ = write_json(&mut stream, 200, "OK", &body);
            }
            Err(e) => {
                let _ = write_json(&mut stream, 500, "Internal Server Error", &error_body(&e));
            }
        },
        ("GET", "/metrics") => {
            let (hits, misses) = state.cache.stats();
            let text = state
                .metrics
                .render(state.registry.names().len(), hits, misses);
            let _ = write_response(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                text.as_bytes(),
            );
        }
        ("GET", "/healthz") => {
            let _ = write_response(&mut stream, 200, "OK", "text/plain", b"ok\n");
        }
        ("GET", "/debug/trace") => {
            // Non-destructive view of recent spans: `spans` is itself a
            // complete Chrome-trace document, so it can be saved as-is
            // and loaded into chrome://tracing or Perfetto. Per-op tape
            // events are excluded here — one request produces thousands
            // of them and they would evict the batch timelines; use
            // `export_chrome_trace` for the full op-level view.
            let (all, dropped) = gendt_trace::snapshot_spans(usize::MAX);
            let mut spans: Vec<_> = all.into_iter().filter(|e| e.cat == "span").collect();
            if spans.len() > 256 {
                spans.drain(..spans.len() - 256);
            }
            let mut body = format!(
                "{{\"enabled\":{},\"dropped\":{dropped},\"spans\":",
                gendt_trace::trace_enabled()
            );
            body.push_str(&gendt_trace::chrome_trace_json(&spans));
            body.push('}');
            let _ = write_json(&mut stream, 200, "OK", &body);
        }
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::Release);
            state.scheduler.stop();
            let _ = write_response(&mut stream, 200, "OK", "text/plain", b"shutting down\n");
            // Wake the acceptor so it observes the flag.
            if let Ok(local) = stream.local_addr() {
                let _ = TcpStream::connect(local);
            }
        }
        _ => {
            let _ = write_json(&mut stream, 404, "Not Found", &error_body("no such route"));
        }
    }
}

fn handle_generate(state: &Arc<ServerState>, stream: &mut TcpStream, req: &Request) {
    let started = Instant::now();
    let fail = |state: &Arc<ServerState>| {
        state
            .metrics
            .generate_failed
            .fetch_add(1, Ordering::Relaxed);
    };

    let body = String::from_utf8_lossy(&req.body);
    let parsed: GenerateRequest = match serde_json::from_str(&body) {
        Ok(p) => p,
        Err(e) => {
            fail(state);
            let _ = write_json(
                stream,
                400,
                "Bad Request",
                &error_body(&format!("bad request body: {e}")),
            );
            return;
        }
    };
    let Some(scenario) = parse_scenario(&parsed.scenario) else {
        fail(state);
        let _ = write_json(
            stream,
            400,
            "Bad Request",
            &error_body(&format!("unknown scenario {:?}", parsed.scenario)),
        );
        return;
    };
    if !(parsed.duration_s.is_finite()
        && parsed.duration_s > 0.0
        && parsed.duration_s <= MAX_DURATION_S
        && parsed.start_x.is_finite()
        && parsed.start_y.is_finite())
    {
        fail(state);
        let _ = write_json(
            stream,
            400,
            "Bad Request",
            &error_body("duration/start out of range"),
        );
        return;
    }
    let Some(entry) = state.registry.get(&parsed.model) else {
        fail(state);
        let _ = write_json(
            stream,
            404,
            "Not Found",
            &error_body(&format!("unknown model {:?}", parsed.model)),
        );
        return;
    };

    // Context: cached by trajectory spec + extraction cfg; extraction
    // runs outside the cache lock.
    let ctx_cfg = ContextCfg {
        max_cells: entry.model.cfg().window.max_cells,
        ..ContextCfg::default()
    };
    let key = ContextKey::new(
        &parsed.scenario,
        parsed.duration_s,
        parsed.start_x,
        parsed.start_y,
        parsed.traj_seed,
        &ctx_cfg,
    );
    let ctx = match state.cache.get(key) {
        Some(c) => c,
        None => {
            let traj_cfg = trajectory::TrajectoryCfg::new(
                scenario,
                parsed.duration_s,
                XY {
                    x: parsed.start_x,
                    y: parsed.start_y,
                },
                parsed.traj_seed,
            );
            let traj = trajectory::generate(&state.world, &traj_cfg);
            let built = Arc::new(extract(&state.world, &state.deployment, &traj, &ctx_cfg));
            state.cache.insert(key, built.clone());
            built
        }
    };

    let job = GenJob {
        entry: entry.clone(),
        ctx,
        sample_seed: parsed.sample_seed,
    };
    let rx = match state.scheduler.submit(job) {
        Ok(rx) => rx,
        Err(SubmitError::QueueFull) => {
            state
                .metrics
                .generate_rejected
                .fetch_add(1, Ordering::Relaxed);
            let _ = write_json(
                stream,
                429,
                "Too Many Requests",
                &error_body("generation queue is full, retry later"),
            );
            return;
        }
        Err(SubmitError::ShuttingDown) => {
            fail(state);
            let _ = write_json(
                stream,
                503,
                "Service Unavailable",
                &error_body("server is shutting down"),
            );
            return;
        }
    };
    match rx.recv() {
        Ok(Ok(series)) => {
            let resp = GenerateResponse {
                model: entry.name.clone(),
                series,
            };
            match serde_json::to_string(&resp) {
                Ok(body) => {
                    state.metrics.generate_ok.fetch_add(1, Ordering::Relaxed);
                    state
                        .metrics
                        .observe_latency_ms(started.elapsed().as_secs_f64() * 1000.0);
                    let _ = write_json(stream, 200, "OK", &body);
                }
                Err(e) => {
                    fail(state);
                    let _ = write_json(
                        stream,
                        500,
                        "Internal Server Error",
                        &error_body(&format!("response encoding failed: {e}")),
                    );
                }
            }
        }
        Ok(Err(e)) => {
            fail(state);
            let _ = write_json(stream, 500, "Internal Server Error", &error_body(&e));
        }
        Err(_) => {
            fail(state);
            let _ = write_json(
                stream,
                500,
                "Internal Server Error",
                &error_body("worker dropped the request"),
            );
        }
    }
}
