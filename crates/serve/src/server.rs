//! The HTTP server: accept loop, routing, and the `/generate` handler
//! wiring registry → cache → scheduler together.
//!
//! Routing is versioned: every endpoint lives under `/v1/*` and answers
//! errors with the typed [`ErrorEnvelope`] of the workspace taxonomy;
//! the original unversioned paths remain as deprecated aliases that
//! keep the legacy `{"error": ...}` shape and carry a
//! `Deprecation: true` response header. Load-shed (429) and draining
//! (503) responses carry `Retry-After` on both surfaces.
//!
//! Threading model: one acceptor thread, one detached thread per
//! connection (`Connection: close`, so connections are short-lived), and
//! a configurable number of scheduler workers executing batched forward
//! passes. Shutdown is cooperative and graceful — `POST /shutdown` (or
//! [`ServerHandle::shutdown`]) raises a flag, wakes the acceptor with a
//! self-connection, stops accepting, lets workers flush every queued
//! batch, and waits for in-flight connections to finish. (Safe std
//! cannot install a SIGTERM handler, so process supervisors signal
//! drain through `POST /shutdown`; see DESIGN.md §10.)

use crate::api::{
    encode, parse_scenario, stream_reason, ErrorEnvelope, ErrorResponse, GenerateRequest,
    GenerateResponse, InfoResponse, ModelInfo, ModelsResponse, StreamChunk, StreamRequest,
    StreamTrailer,
};
use crate::batch::{GenJob, StreamPart};
use crate::cache::{ContextCache, ContextKey};
use crate::http::{
    finish_chunked, read_request, write_chunk, write_chunked_head, write_json, write_json_extra,
    write_response_extra, Request,
};
use crate::metrics::ServeMetrics;
use crate::registry::{ModelEntry, Registry};
use crate::scheduler::{SchedCfg, Scheduler, SubmitError};
use crate::session::{Checkout, SessionTable, StreamSession};
use gendt::{generation_windows, GenCursor};
use gendt_data::context::{extract, ContextCfg, RunContext};
use gendt_faults::GendtError;
use gendt_geo::{trajectory, World, WorldCfg, XY};
use gendt_obs::{flightrec, traceid};
use gendt_radio::Deployment;
use gendt_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use gendt_sync::thread::{self, JoinHandle};
use gendt_sync::time::Instant;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Longest trajectory a request may ask for, seconds. Guards against a
/// single request occupying a worker for minutes.
const MAX_DURATION_S: f64 = 4.0 * 3600.0;

/// How long shutdown waits for in-flight connections to finish.
const DRAIN_WAIT: Duration = Duration::from_secs(10);

/// After `POST /shutdown` the listener stays open this long, answering
/// health checks with 503 and shedding new work, before the hard close
/// — so load balancers observe the drain instead of connection resets.
const DRAIN_GRACE: Duration = Duration::from_millis(400);

/// `Sunset` header (RFC 8594) announced on the legacy unversioned
/// routes (`/generate`, `/models`, `/reload`): the date after which the
/// unversioned surface may be removed. Removal is rehearsed today by
/// setting `GENDT_V1_ONLY=1`, which answers these routes with 410 Gone.
const LEGACY_SUNSET: &str = "Tue, 01 Jun 2027 00:00:00 GMT";

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerCfg {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 for tests).
    pub addr: String,
    /// Directory of model checkpoints.
    pub models_dir: PathBuf,
    /// Seed of the synthetic world served against.
    pub world_seed: u64,
    /// Micro-batching scheduler knobs.
    pub sched: SchedCfg,
    /// Context cache capacity (entries).
    pub cache_cap: usize,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Default per-request deadline, milliseconds; `0` means none. A
    /// request's `Deadline-Ms` header overrides it.
    pub default_deadline_ms: u64,
    /// Most concurrent `/v1/stream` sessions held server-side; LRU
    /// eviction over idle sessions beyond this.
    pub session_cap: usize,
    /// Idle stream sessions expire after this many milliseconds.
    pub session_ttl_ms: u64,
    /// Default windows per streamed chunk (a request's `chunk_windows`
    /// overrides it).
    pub chunk_windows: usize,
    /// Remove the legacy unversioned surface: `/generate`, `/models`,
    /// and `/reload` answer 410 Gone. Defaults from `GENDT_V1_ONLY=1`.
    pub v1_only: bool,
}

impl ServerCfg {
    /// Defaults for a models directory: one worker, port picked by the
    /// OS, the paper's world seed.
    pub fn new(models_dir: PathBuf) -> ServerCfg {
        ServerCfg {
            addr: "127.0.0.1:0".to_string(),
            models_dir,
            world_seed: 1,
            sched: SchedCfg::default(),
            cache_cap: 128,
            workers: 1,
            default_deadline_ms: 0,
            session_cap: 4096,
            session_ttl_ms: 60_000,
            chunk_windows: 1,
            v1_only: std::env::var("GENDT_V1_ONLY")
                .map(|v| v == "1")
                .unwrap_or(false),
        }
    }

    /// Start a validated builder from [`ServerCfg::new`] defaults.
    pub fn builder(models_dir: PathBuf) -> ServerCfgBuilder {
        ServerCfgBuilder {
            cfg: ServerCfg::new(models_dir),
            default_deadline_ms: 0,
        }
    }

    /// Reject degenerate values with a descriptive [`GendtError`].
    pub fn validate(&self) -> Result<(), GendtError> {
        let bad = |msg: String| Err(GendtError::config(format!("ServerCfg: {msg}")));
        match self.addr.rsplit_once(':') {
            Some((host, port)) if !host.is_empty() => {
                if port.parse::<u16>().is_err() {
                    return bad(format!("bad port in addr {:?}", self.addr));
                }
            }
            _ => return bad(format!("addr {:?} is not host:port", self.addr)),
        }
        if self.workers == 0 {
            return bad("workers must be > 0 (nothing would execute batches)".into());
        }
        if self.cache_cap == 0 {
            return bad("cache_cap must be > 0".into());
        }
        if self.sched.max_batch == 0 {
            return bad("sched.max_batch must be > 0".into());
        }
        if self.sched.queue_cap == 0 {
            return bad("sched.queue_cap must be > 0 (every submit would shed)".into());
        }
        if self.session_cap == 0 {
            return bad("session_cap must be > 0 (every stream open would evict itself)".into());
        }
        if self.chunk_windows == 0 {
            return bad("chunk_windows must be > 0 (chunks would never advance)".into());
        }
        Ok(())
    }
}

/// Builder for [`ServerCfg`] whose `build()` validates instead of
/// letting a bad value bind nothing or shed every request.
#[derive(Clone, Debug)]
pub struct ServerCfgBuilder {
    cfg: ServerCfg,
    /// Signed so a caller-supplied negative timeout is caught in
    /// `build()` rather than silently wrapping.
    default_deadline_ms: i64,
}

impl ServerCfgBuilder {
    /// Bind address (`host:port`).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.cfg.addr = addr.into();
        self
    }

    /// Seed of the synthetic world served against.
    pub fn world_seed(mut self, seed: u64) -> Self {
        self.cfg.world_seed = seed;
        self
    }

    /// Most requests coalesced into one forward pass.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.cfg.sched.max_batch = n;
        self
    }

    /// How long the worker waits for a batch to fill, milliseconds.
    pub fn max_wait_ms(mut self, ms: u64) -> Self {
        self.cfg.sched.max_wait_ms = ms;
        self
    }

    /// Bounded scheduler queue capacity.
    pub fn queue_cap(mut self, n: usize) -> Self {
        self.cfg.sched.queue_cap = n;
        self
    }

    /// Context cache capacity (entries).
    pub fn cache_cap(mut self, n: usize) -> Self {
        self.cfg.cache_cap = n;
        self
    }

    /// Scheduler worker threads.
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// Default per-request deadline, milliseconds (`0` = none).
    pub fn default_deadline_ms(mut self, ms: i64) -> Self {
        self.default_deadline_ms = ms;
        self
    }

    /// Most concurrent `/v1/stream` sessions held server-side.
    pub fn session_cap(mut self, n: usize) -> Self {
        self.cfg.session_cap = n;
        self
    }

    /// Idle stream-session TTL, milliseconds.
    pub fn session_ttl_ms(mut self, ms: u64) -> Self {
        self.cfg.session_ttl_ms = ms;
        self
    }

    /// Default windows per streamed chunk.
    pub fn chunk_windows(mut self, n: usize) -> Self {
        self.cfg.chunk_windows = n;
        self
    }

    /// Remove the legacy unversioned surface (410 Gone).
    pub fn v1_only(mut self, on: bool) -> Self {
        self.cfg.v1_only = on;
        self
    }

    /// Validate and return the configuration.
    pub fn build(mut self) -> Result<ServerCfg, GendtError> {
        if self.default_deadline_ms < 0 {
            return Err(GendtError::config(format!(
                "ServerCfg: default_deadline_ms={} must not be negative",
                self.default_deadline_ms
            )));
        }
        self.cfg.default_deadline_ms = self.default_deadline_ms as u64;
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

struct ServerState {
    registry: Registry,
    world: World,
    deployment: Deployment,
    metrics: Arc<ServeMetrics>,
    scheduler: Arc<Scheduler>,
    cache: ContextCache,
    /// Drain requested: shed new work, report unhealthy, keep answering.
    draining: AtomicBool,
    /// Hard close: the acceptor exits as soon as it observes this.
    shutdown: AtomicBool,
    /// Connection handlers currently running; drain waits for zero.
    active: AtomicU64,
    default_deadline_ms: u64,
    /// Scheduler micro-batch capacity, advertised on `/v1/info`.
    max_batch: usize,
    /// Stream sessions held for `/v1/stream` continuations.
    sessions: SessionTable<StreamSession>,
    /// Default windows per streamed chunk.
    chunk_windows: usize,
    /// `GENDT_V1_ONLY=1`: the legacy unversioned surface answers 410.
    v1_only: bool,
    /// Mint source for locally assigned session ids.
    session_seq: AtomicU64,
}

impl ServerState {
    fn is_draining(&self) -> bool {
        // sync: pairs with the Release stores in shutdown paths so a
        // handler that sees the flag also sees everything staged before
        // the drain began.
        self.draining.load(Ordering::Acquire) || self.shutdown.load(Ordering::Acquire)
    }
}

/// Decrements the in-flight connection count when a handler exits,
/// panic or not.
struct ActiveGuard<'a>(&'a AtomicU64);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        // sync: AcqRel so the drain loop's Acquire load of zero also
        // observes every write the finished handler made.
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running server: its bound address and the means to stop it.
pub struct ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Shared metrics (for in-process inspection by tools and tests).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        self.state.metrics.clone()
    }

    /// Block until the acceptor exits (i.e. until `/shutdown`), then
    /// drain workers and in-flight connections.
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        wait_for_drain(&self.state);
    }

    /// Stop the server gracefully: stop accepting, flush every queued
    /// batch, wait for in-flight connections, join everything.
    pub fn shutdown(mut self) {
        // sync: Release pairs with the Acquire loads in is_draining and
        // the accept loop.
        self.state.draining.store(true, Ordering::Release);
        self.state.shutdown.store(true, Ordering::Release);
        self.state.scheduler.stop();
        // The acceptor blocks in accept(); a throwaway connection wakes it.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        wait_for_drain(&self.state);
    }
}

/// Block (bounded) until every in-flight connection handler returned.
fn wait_for_drain(state: &Arc<ServerState>) {
    let deadline = Instant::now() + DRAIN_WAIT;
    // sync: Acquire pairs with ActiveGuard's AcqRel decrement.
    while state.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(2));
    }
}

/// Start serving. Returns once the listener is bound and workers are up.
pub fn serve(cfg: ServerCfg) -> Result<ServerHandle, GendtError> {
    cfg.validate()?;
    let registry = Registry::load(&cfg.models_dir)?;
    let world = World::generate(WorldCfg::city(cfg.world_seed));
    let deployment = Deployment::from_world(&world);
    let metrics = Arc::new(ServeMetrics::new(cfg.sched.max_batch));
    let scheduler = Arc::new(Scheduler::new(cfg.sched, metrics.clone()));
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| GendtError::from(e).wrap(format!("cannot bind {}", cfg.addr)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| GendtError::from(e).wrap("no local addr"))?;

    let metrics_for_sessions = metrics.clone();
    let state = Arc::new(ServerState {
        registry,
        world,
        deployment,
        metrics,
        scheduler: scheduler.clone(),
        cache: ContextCache::new(cfg.cache_cap),
        draining: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        active: AtomicU64::new(0),
        default_deadline_ms: cfg.default_deadline_ms,
        max_batch: cfg.sched.max_batch,
        sessions: SessionTable::new(
            cfg.session_cap,
            Duration::from_millis(cfg.session_ttl_ms),
            metrics_for_sessions,
        ),
        chunk_windows: cfg.chunk_windows,
        v1_only: cfg.v1_only,
        session_seq: AtomicU64::new(1),
    });

    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for _ in 0..cfg.workers.max(1) {
        let sched = scheduler.clone();
        workers.push(thread::spawn_named("sched-worker", move || {
            sched.run_worker()
        }));
    }

    let accept_state = state.clone();
    let acceptor = thread::spawn_named("acceptor", move || {
        for stream in listener.incoming() {
            // sync: pairs with the Release store in shutdown paths.
            if accept_state.shutdown.load(Ordering::Acquire) {
                break;
            }
            match stream {
                Ok(s) => {
                    // Chaos probe: drop accepted connections on the
                    // floor so clients exercise their retry paths.
                    if gendt_faults::should_drop("http.accept") {
                        drop(s);
                        continue;
                    }
                    let conn_state = accept_state.clone();
                    // sync: AcqRel, the counterpart of ActiveGuard's
                    // decrement watched by wait_for_drain.
                    conn_state.active.fetch_add(1, Ordering::AcqRel);
                    thread::spawn_named("conn", move || {
                        let _guard = ActiveGuard(&conn_state.active);
                        handle_conn(&conn_state, s);
                    });
                }
                Err(_) => continue,
            }
        }
        accept_state.scheduler.stop();
    });

    Ok(ServerHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        workers,
    })
}

fn error_body(msg: &str) -> String {
    serde_json::to_string(&ErrorResponse {
        error: msg.to_string(),
    })
    .unwrap_or_else(|_| format!("{{\"error\":{msg:?}}}"))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        410 => "Gone",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

/// Extra headers for a successful response on the given API surface:
/// legacy routes announce their deprecation and sunset date.
fn surface_headers(v1: bool) -> &'static [(&'static str, &'static str)] {
    if v1 {
        &[]
    } else {
        &[("Deprecation", "true"), ("Sunset", LEGACY_SUNSET)]
    }
}

/// Write a taxonomy error on the right surface: typed envelope on
/// `/v1/*`, legacy `{"error"}` on unversioned routes, `Retry-After` on
/// load-shed and draining responses either way.
fn write_error(stream: &mut TcpStream, v1: bool, err: &GendtError) {
    let status = err.http_status();
    let mut extra: Vec<(&str, &str)> = Vec::new();
    if !v1 {
        extra.push(("Deprecation", "true"));
        extra.push(("Sunset", LEGACY_SUNSET));
    }
    if status == 429 || status == 503 {
        extra.push(("Retry-After", "1"));
    }
    let body = if v1 {
        encode(&ErrorEnvelope::from_error(err))
    } else {
        error_body(err.context())
    };
    let _ = write_json_extra(stream, status, reason(status), &extra, &body);
}

fn handle_conn(state: &Arc<ServerState>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let req = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = write_json(
                &mut stream,
                400,
                "Bad Request",
                &error_body(&format!("{e}")),
            );
            return;
        }
    };
    // sync: monotonic counter for /metrics only.
    state.metrics.http_requests.fetch_add(1, Ordering::Relaxed);

    // Distributed trace context: a `Gendt-Trace-Id` header (minted by
    // the fleet router) scopes this whole handler, so every span and
    // flight record it produces carries the request's id. The scope is
    // a thread-local set/restore — no effect on generated bytes.
    let trace_id = req
        .header(traceid::TRACE_HEADER)
        .and_then(traceid::parse_id)
        .unwrap_or(0);
    let _trace = gendt_trace::trace_scope(trace_id);

    // `/v1/<route>` and `<route>` dispatch identically; the flag decides
    // the error shape and deprecation headers.
    let (route, v1) = match req.path.strip_prefix("/v1") {
        Some("") => ("/".to_string(), true),
        Some(rest) if rest.starts_with('/') => (rest.to_string(), true),
        _ => (req.path.clone(), false),
    };

    // The unversioned API surface is sunsetting: count its traffic, and
    // under GENDT_V1_ONLY=1 rehearse the removal with 410 Gone.
    let legacy_api = !v1 && matches!(route.as_str(), "/generate" | "/models" | "/reload");
    if legacy_api {
        // sync: monotonic counter for /metrics only.
        state
            .metrics
            .legacy_requests
            .fetch_add(1, Ordering::Relaxed);
        if state.v1_only {
            let _ = write_json_extra(
                &mut stream,
                410,
                reason(410),
                surface_headers(false),
                &error_body(&format!("the unversioned API is removed; use /v1{route}")),
            );
            return;
        }
    }

    match (req.method.as_str(), route.as_str()) {
        ("POST", "/generate") => handle_generate(state, &mut stream, &req, v1),
        ("POST", "/stream") if v1 => handle_stream(state, &mut stream, &req),
        ("GET", "/models") => {
            let body = encode(&ModelsResponse {
                models: state.registry.names(),
            });
            let _ = write_json_extra(&mut stream, 200, "OK", surface_headers(v1), &body);
        }
        ("GET", "/info") => {
            // Fleet discovery: what this worker serves right now. The
            // router polls this alongside /healthz to learn shard
            // ownership instead of hardcoding it.
            let models = state
                .registry
                .entries()
                .iter()
                .map(|e| ModelInfo {
                    name: e.name.clone(),
                    version: e.version,
                    n_ch: e.model.cfg().n_ch,
                })
                .collect();
            let body = encode(&InfoResponse {
                models,
                // sync: gauge scrape; no cross-counter consistency needed.
                queue_depth: state.metrics.queue_depth.load(Ordering::Relaxed),
                max_batch: state.max_batch,
                draining: state.is_draining(),
            });
            let _ = write_json_extra(&mut stream, 200, "OK", surface_headers(v1), &body);
        }
        ("POST", "/reload") => match state.registry.reload() {
            Ok(_) => {
                let body = encode(&ModelsResponse {
                    models: state.registry.names(),
                });
                let _ = write_json_extra(&mut stream, 200, "OK", surface_headers(v1), &body);
            }
            Err(e) => write_error(&mut stream, v1, &e),
        },
        ("GET", "/metrics") => {
            let (hits, misses) = state.cache.stats();
            let text = state
                .metrics
                .render(state.registry.names().len(), hits, misses);
            let _ = write_response_extra(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                surface_headers(v1),
                text.as_bytes(),
            );
        }
        ("GET", "/healthz") => {
            // A draining server is not healthy for new work: report 503
            // so load balancers rotate it out while in-flight batches
            // finish.
            if state.is_draining() {
                let mut extra = surface_headers(v1).to_vec();
                extra.push(("Retry-After", "1"));
                let _ = write_response_extra(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    "text/plain",
                    &extra,
                    b"draining\n",
                );
            } else {
                let _ = write_response_extra(
                    &mut stream,
                    200,
                    "OK",
                    "text/plain",
                    surface_headers(v1),
                    b"ok\n",
                );
            }
        }
        ("GET", "/debug/trace") => {
            // Non-destructive view of recent spans: `spans` is itself a
            // complete Chrome-trace document, so it can be saved as-is
            // and loaded into chrome://tracing or Perfetto. Per-op tape
            // events are excluded here — one request produces thousands
            // of them and they would evict the batch timelines; use
            // `export_chrome_trace` for the full op-level view.
            let (all, dropped) = gendt_trace::snapshot_spans(usize::MAX);
            let mut spans: Vec<_> = all.into_iter().filter(|e| e.cat == "span").collect();
            if spans.len() > 256 {
                spans.drain(..spans.len() - 256);
            }
            let mut body = format!(
                "{{\"enabled\":{},\"dropped\":{dropped},\"spans\":",
                gendt_trace::trace_enabled()
            );
            body.push_str(&gendt_trace::chrome_trace_json(&spans));
            body.push('}');
            let _ = write_json_extra(&mut stream, 200, "OK", surface_headers(v1), &body);
        }
        ("GET", "/debug/flightrec") => {
            let _ = write_json_extra(
                &mut stream,
                200,
                "OK",
                surface_headers(v1),
                &flightrec::dump_json(),
            );
        }
        ("POST", "/shutdown") => {
            // Graceful drain: stop taking generation work immediately
            // (queued batches still flush), keep the listener answering
            // 503s for a grace window, then hard-close the acceptor.
            // sync: Release pairs with is_draining's Acquire load.
            state.draining.store(true, Ordering::Release);
            state.scheduler.stop();
            // Idle stream sessions have no connection to flush a trailer
            // to; shed their state now. In-flight streams observe the
            // drain flag and close with a `drain` trailer themselves.
            state.sessions.shed_idle();
            // Crash-box dump: when GENDT_FLIGHTREC_DUMP names a file the
            // flight-recorder ring is written there before the process
            // winds down (best-effort, never blocks the drain).
            let _ = flightrec::dump_on_drain();
            let _ = write_response_extra(
                &mut stream,
                200,
                "OK",
                "text/plain",
                surface_headers(v1),
                b"draining\n",
            );
            let local = stream.local_addr().ok();
            let closer_state = state.clone();
            thread::spawn_named("drain-closer", move || {
                thread::sleep(DRAIN_GRACE);
                // sync: Release pairs with the accept loop's Acquire.
                closer_state.shutdown.store(true, Ordering::Release);
                // Wake the acceptor so it observes the flag.
                if let Some(local) = local {
                    let _ = TcpStream::connect(local);
                }
            });
        }
        _ => write_error(
            &mut stream,
            v1,
            &GendtError::not_found(format!("no such route {:?}", req.path)),
        ),
    }
}

/// Per-request deadline: the `Deadline-Ms` header wins, then the
/// server default; `None` means unbounded.
fn request_deadline(
    state: &ServerState,
    req: &Request,
    started: Instant,
) -> Result<Option<Instant>, GendtError> {
    let ms = match req.header("deadline-ms") {
        Some(raw) => {
            let ms: u64 = raw.parse().map_err(|_| {
                GendtError::invalid(format!(
                    "Deadline-Ms: {raw:?} is not a non-negative integer"
                ))
            })?;
            if ms == 0 {
                return Err(GendtError::invalid("Deadline-Ms must be > 0"));
            }
            Some(ms)
        }
        None if state.default_deadline_ms > 0 => Some(state.default_deadline_ms),
        None => None,
    };
    Ok(ms.map(|m| started + Duration::from_millis(m)))
}

fn handle_generate(state: &Arc<ServerState>, stream: &mut TcpStream, req: &Request, v1: bool) {
    let started = Instant::now();
    let mut rec = flightrec::FlightRecord {
        trace: gendt_trace::current_trace(),
        scenario: 255,
        outcome: flightrec::outcome::FAILED,
        worker: flightrec::self_worker(),
        queue_us: 0,
        batch_us: 0,
        forward_us: 0,
        total_us: 0,
    };
    let result = generate_response(state, req, started, &mut rec);
    rec.total_us = started.elapsed().as_micros().min(u32::MAX as u128) as u32;
    match result {
        Ok(body) => {
            rec.outcome = flightrec::outcome::OK;
            // sync: monotonic counter for /metrics only.
            state.metrics.generate_ok.fetch_add(1, Ordering::Relaxed);
            state
                .metrics
                .observe_latency_ms(started.elapsed().as_secs_f64() * 1000.0);
            // Echo the request's trace id and this process's clock: the
            // router pairs the clock reading with its own send/receive
            // timestamps to estimate this worker's clock offset.
            let trace_hdr = traceid::format_id(rec.trace);
            let clock_hdr = format!("{}", gendt_trace::now_ns());
            let mut extra: Vec<(&str, &str)> = surface_headers(v1).to_vec();
            if rec.trace != 0 {
                extra.push((traceid::TRACE_HEADER, &trace_hdr));
            }
            extra.push((traceid::WORKER_TIME_HEADER, &clock_hdr));
            let _ = write_json_extra(stream, 200, "OK", &extra, &body);
        }
        Err(e) => {
            let shed = e.kind() == gendt_faults::ErrorKind::Overloaded;
            rec.outcome = match e.kind() {
                gendt_faults::ErrorKind::Overloaded => flightrec::outcome::REJECTED,
                gendt_faults::ErrorKind::Timeout => flightrec::outcome::EXPIRED,
                _ => flightrec::outcome::FAILED,
            };
            let counter = if shed {
                &state.metrics.generate_rejected
            } else {
                &state.metrics.generate_failed
            };
            // sync: monotonic counter for /metrics only.
            counter.fetch_add(1, Ordering::Relaxed);
            write_error(stream, v1, &e);
        }
    }
    flightrec::record(rec);
}

/// Validate a generate/stream-open spec and resolve it to the pinned
/// model entry plus the extracted (possibly cached) trajectory context
/// — the shared front half of `/v1/generate` and `/v1/stream` opens.
fn resolve_spec(
    state: &Arc<ServerState>,
    parsed: &GenerateRequest,
) -> Result<(Arc<ModelEntry>, Arc<RunContext>), GendtError> {
    let scenario = parse_scenario(&parsed.scenario)
        .ok_or_else(|| GendtError::invalid(format!("unknown scenario {:?}", parsed.scenario)))?;
    if !(parsed.duration_s.is_finite()
        && parsed.duration_s > 0.0
        && parsed.duration_s <= MAX_DURATION_S
        && parsed.start_x.is_finite()
        && parsed.start_y.is_finite())
    {
        return Err(GendtError::invalid("duration/start out of range"));
    }
    let entry = state
        .registry
        .get(&parsed.model)
        .ok_or_else(|| GendtError::not_found(format!("unknown model {:?}", parsed.model)))?;

    // Context: cached by trajectory spec + extraction cfg; extraction
    // runs outside the cache lock.
    let ctx_cfg = ContextCfg {
        max_cells: entry.model.cfg().window.max_cells,
        ..ContextCfg::default()
    };
    let key = ContextKey::new(
        &parsed.scenario,
        parsed.duration_s,
        parsed.start_x,
        parsed.start_y,
        parsed.traj_seed,
        &ctx_cfg,
    );
    let ctx = match state.cache.get(key) {
        Some(c) => c,
        None => {
            let traj_cfg = trajectory::TrajectoryCfg::new(
                scenario,
                parsed.duration_s,
                XY {
                    x: parsed.start_x,
                    y: parsed.start_y,
                },
                parsed.traj_seed,
            );
            let traj = trajectory::generate(&state.world, &traj_cfg);
            let built = Arc::new(extract(&state.world, &state.deployment, &traj, &ctx_cfg));
            state.cache.insert(key, built.clone());
            built
        }
    };
    Ok((entry, ctx))
}

/// The generate pipeline: validate, resolve, extract, submit, await.
/// Every failure is a taxonomy error; the caller picks the wire shape.
fn generate_response(
    state: &Arc<ServerState>,
    req: &Request,
    started: Instant,
    rec: &mut flightrec::FlightRecord,
) -> Result<String, GendtError> {
    let body = String::from_utf8_lossy(&req.body);
    let parsed: GenerateRequest = serde_json::from_str(&body)
        .map_err(|e| GendtError::invalid(format!("bad request body: {e}")))?;
    rec.scenario = flightrec::scenario_code(&parsed.scenario);
    let deadline = request_deadline(state, req, started)?;
    let (entry, ctx) = resolve_spec(state, &parsed)?;

    let job = GenJob {
        entry: entry.clone(),
        ctx,
        sample_seed: parsed.sample_seed,
        stream: None,
    };
    let rx = state.scheduler.submit(job, deadline).map_err(|e| match e {
        SubmitError::QueueFull => GendtError::overloaded("generation queue is full, retry later"),
        SubmitError::ShuttingDown => GendtError::unavailable("server is shutting down"),
    })?;
    let done = rx
        .recv()
        .map_err(|_| GendtError::internal("worker dropped the request"))??;
    rec.queue_us = done.queue_us;
    rec.batch_us = done.batch_us;
    let resp = GenerateResponse {
        model: entry.name.clone(),
        series: done.series,
    };
    serde_json::to_string(&resp)
        .map_err(|e| GendtError::internal(format!("response encoding failed: {e}")))
}

/// Mint a worker-local session id (the fleet router sends its own via
/// the `Gendt-Session-Id` request header, which wins).
fn mint_session_id(state: &ServerState) -> String {
    // sync: unique-id mint only; no ordering requirement.
    let n = state.session_seq.fetch_add(1, Ordering::Relaxed);
    format!("s{:x}-{n:x}", gendt_trace::now_ns())
}

/// `POST /v1/stream`: open or continue a stateful generation session
/// and stream NDJSON chunks over chunked transfer encoding as the
/// scheduler produces them. Failures before the first byte are regular
/// typed-envelope responses; once streaming, failures surface in the
/// end-of-stream trailer.
fn handle_stream(state: &Arc<ServerState>, stream: &mut TcpStream, req: &Request) {
    let started = Instant::now();
    // Opportunistic TTL sweep: continuation traffic retires idle state.
    state.sessions.sweep();
    let fail = |stream: &mut TcpStream, state: &Arc<ServerState>, e: &GendtError| {
        // sync: monotonic counters for /metrics only.
        if e.kind() == gendt_faults::ErrorKind::Overloaded {
            state
                .metrics
                .generate_rejected
                .fetch_add(1, Ordering::Relaxed);
        } else {
            state
                .metrics
                .generate_failed
                .fetch_add(1, Ordering::Relaxed);
        }
        write_error(stream, true, e);
    };
    let body = String::from_utf8_lossy(&req.body);
    let parsed: StreamRequest = match serde_json::from_str(&body) {
        Ok(p) => p,
        Err(e) => {
            fail(
                stream,
                state,
                &GendtError::invalid(format!("bad request body: {e}")),
            );
            return;
        }
    };
    let deadline = match request_deadline(state, req, started) {
        Ok(d) => d,
        Err(e) => {
            fail(stream, state, &e);
            return;
        }
    };
    if state.is_draining() {
        fail(
            stream,
            state,
            &GendtError::unavailable("server is draining"),
        );
        return;
    }
    let budget = match parsed.max_windows {
        Some(n) if n > 0 => n,
        _ => usize::MAX,
    };

    let sess = match &parsed.session {
        // Continuation: take the session out of the table; the Busy
        // marker shields it from eviction while this response streams.
        Some(sid) => match state.sessions.checkout(sid) {
            Checkout::Session(s) => s,
            Checkout::Busy => {
                fail(
                    stream,
                    state,
                    &GendtError::overloaded(format!("session {sid:?} is busy, retry later")),
                );
                return;
            }
            Checkout::NotFound => {
                fail(
                    stream,
                    state,
                    &GendtError::not_found(format!("unknown session {sid:?}")),
                );
                return;
            }
        },
        // Open: resolve the spec, register the session, check it out.
        None => {
            let spec = match parsed.open_spec() {
                Ok(s) => s,
                Err(e) => {
                    fail(stream, state, &e);
                    return;
                }
            };
            let (entry, ctx) = match resolve_spec(state, &spec) {
                Ok(r) => r,
                Err(e) => {
                    fail(stream, state, &e);
                    return;
                }
            };
            let cfg = entry.model.cfg();
            let total_windows = generation_windows(&ctx, cfg.n_ch, &cfg.generation_window()).len();
            let chunk_windows = match parsed.chunk_windows {
                Some(n) if n > 0 => n,
                _ => state.chunk_windows,
            };
            let id = req
                .header(crate::api::SESSION_HEADER)
                .map(str::to_string)
                .unwrap_or_else(|| mint_session_id(state));
            let cursor = GenCursor::fresh(cfg, spec.sample_seed);
            state.sessions.open(
                id.clone(),
                StreamSession {
                    id: id.clone(),
                    entry,
                    ctx,
                    cursor,
                    total_windows,
                    sample_seed: spec.sample_seed,
                    chunk_windows,
                    seq: 0,
                },
            );
            match state.sessions.checkout(&id) {
                Checkout::Session(s) => s,
                // Evicted between open and checkout (capacity storm) or
                // a duplicate open raced us on the same fleet-minted id.
                _ => {
                    fail(
                        stream,
                        state,
                        &GendtError::overloaded("session table is over capacity, retry later"),
                    );
                    return;
                }
            }
        }
    };
    stream_session(state, stream, sess, budget, deadline);
}

/// Write the final NDJSON trailer line and the terminal chunk.
fn emit_trailer(
    stream: &mut TcpStream,
    sess: &StreamSession,
    reason: &'static str,
    done: bool,
    err: Option<&GendtError>,
) {
    let trailer = StreamTrailer {
        session: sess.id.clone(),
        done,
        reason: reason.to_string(),
        next_window: sess.cursor.next_window,
        total_windows: sess.total_windows,
        error: err.map(ErrorEnvelope::from_error),
    };
    let mut line = encode(&trailer);
    line.push('\n');
    let _ = write_chunk(stream, line.as_bytes());
    let _ = finish_chunked(stream);
}

/// The streaming loop: submit one chunk at a time (so streaming
/// continuations coalesce into the same micro-batches as one-shot
/// requests), flush each span the moment the scheduler returns it, and
/// close with a typed trailer. The session returns to the table
/// (`paused`/`deadline`) or is removed (`complete`/`drain`).
fn stream_session(
    state: &Arc<ServerState>,
    stream: &mut TcpStream,
    mut sess: StreamSession,
    mut budget: usize,
    deadline: Option<Instant>,
) {
    let window_len = sess.entry.model.cfg().generation_window().len;
    {
        let trace = gendt_trace::current_trace();
        let trace_hdr = traceid::format_id(trace);
        let mut extra: Vec<(&str, &str)> = vec![(crate::api::SESSION_HEADER, &sess.id)];
        if trace != 0 {
            extra.push((traceid::TRACE_HEADER, &trace_hdr));
        }
        if write_chunked_head(stream, 200, "OK", "application/x-ndjson", &extra).is_err() {
            // Client vanished before the first byte; park the session.
            let id = sess.id.clone();
            state.sessions.checkin(&id, sess);
            return;
        }
    }

    loop {
        if sess.cursor.next_window >= sess.total_windows {
            emit_trailer(stream, &sess, stream_reason::COMPLETE, true, None);
            state.sessions.remove(&sess.id);
            return;
        }
        if state.is_draining() {
            // Flush what streamed, close the session, and tell the
            // client exactly why instead of stranding it mid-series.
            emit_trailer(stream, &sess, stream_reason::DRAIN, false, None);
            state.sessions.remove(&sess.id);
            return;
        }
        if budget == 0 {
            emit_trailer(stream, &sess, stream_reason::PAUSED, false, None);
            let id = sess.id.clone();
            state.sessions.checkin(&id, sess);
            return;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            // Mid-stream expiry keeps the session: the client already
            // holds every chunk up to `next_window` and can continue.
            emit_trailer(stream, &sess, stream_reason::DEADLINE, false, None);
            let id = sess.id.clone();
            state.sessions.checkin(&id, sess);
            return;
        }

        let job = GenJob {
            entry: sess.entry.clone(),
            ctx: sess.ctx.clone(),
            sample_seed: sess.sample_seed,
            stream: Some(StreamPart {
                cursor: sess.cursor.clone(),
                max_windows: sess.chunk_windows.min(budget),
            }),
        };
        let outcome = state
            .scheduler
            .submit(job, deadline)
            .map_err(|e| match e {
                SubmitError::QueueFull => {
                    GendtError::overloaded("generation queue is full, retry later")
                }
                SubmitError::ShuttingDown => GendtError::unavailable("server is shutting down"),
            })
            .and_then(|rx| match rx.recv() {
                Ok(inner) => inner,
                Err(_) => Err(GendtError::internal("worker dropped the request")),
            });
        let done = match outcome {
            Ok(d) => d,
            Err(e) => {
                let id = sess.id.clone();
                match e.kind() {
                    // The job's deadline expired in the queue: same
                    // contract as the loop's own deadline check.
                    gendt_faults::ErrorKind::Timeout => {
                        emit_trailer(stream, &sess, stream_reason::DEADLINE, false, None);
                        state.sessions.checkin(&id, sess);
                    }
                    // Drain raced the submit: the drain trailer closes
                    // the session like the loop-top check would.
                    gendt_faults::ErrorKind::Unavailable => {
                        emit_trailer(stream, &sess, stream_reason::DRAIN, false, None);
                        state.sessions.remove(&id);
                    }
                    _ => {
                        emit_trailer(stream, &sess, stream_reason::ERROR, false, Some(&e));
                        state.sessions.checkin(&id, sess);
                    }
                }
                return;
            }
        };
        let Some(cursor) = done.cursor else {
            let e = GendtError::internal("stream job returned no cursor");
            emit_trailer(stream, &sess, stream_reason::ERROR, false, Some(&e));
            let id = sess.id.clone();
            state.sessions.checkin(&id, sess);
            return;
        };

        let advanced = cursor.next_window.saturating_sub(sess.cursor.next_window);
        let chunk = StreamChunk {
            session: sess.id.clone(),
            seq: sess.seq,
            start: sess.cursor.next_window * window_len,
            windows: advanced,
            series: done.series,
        };
        sess.cursor = cursor;
        sess.seq += 1;
        budget = budget.saturating_sub(advanced.max(1));
        // sync: monotonic counter for /metrics only.
        state.metrics.stream_chunks.fetch_add(1, Ordering::Relaxed);
        let mut line = encode(&chunk);
        line.push('\n');
        if write_chunk(stream, line.as_bytes()).is_err() {
            // Client went away mid-stream; the session stays resumable.
            let id = sess.id.clone();
            state.sessions.checkin(&id, sess);
            return;
        }
    }
}
