//! Checkpoint registry: named models loaded from a directory, with
//! atomic hot-swap.
//!
//! Every `*.json` file in the model directory becomes one entry named by
//! its file stem. The live set is an `Arc`-swapped immutable map, so
//! `/reload` replaces the whole set in one store while in-flight
//! requests keep generating against the `Arc<ModelEntry>` they resolved
//! at dispatch time — a request never observes a half-swapped model.
//!
//! Loads go through `gendt_faults::retry_with_backoff`: transient I/O
//! failures (including the injected `io_err@registry.scan` probe) are
//! retried a bounded number of times with jittered exponential backoff
//! before the error surfaces.

use gendt::checkpoint::load_model_from_file;
use gendt::trainer::GenDt;
use gendt_data::kpi_types::Kpi;
use gendt_faults::{retry_with_backoff, GendtError};
use gendt_sync::RwLock;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One loaded model plus everything a request needs to generate with it.
pub struct ModelEntry {
    /// Registry name (checkpoint file stem).
    pub name: String,
    /// Checkpoint content version: FNV-1a hash of the checkpoint file
    /// bytes, `0` for preloaded (in-memory) entries. The fleet router
    /// compares versions across workers via `/v1/info` to detect a torn
    /// deploy before routing to it.
    pub version: u64,
    /// The loaded model.
    pub model: GenDt,
    /// KPI channels, inferred from the model's channel count.
    pub kpis: Vec<Kpi>,
}

/// FNV-1a over a byte slice — the checkpoint content hash used as the
/// wire-visible model `version`.
pub fn content_version(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

/// The immutable live model set, swapped wholesale on reload.
pub type ModelMap = BTreeMap<String, Arc<ModelEntry>>;

/// The registry: a directory plus the currently live model set.
pub struct Registry {
    dir: PathBuf,
    current: RwLock<Arc<ModelMap>>,
}

/// Retry budget for directory scans: 3 attempts, 10 ms base delay
/// capped at 160 ms. Small enough that `/reload` stays interactive,
/// large enough to ride out a torn deploy.
const SCAN_ATTEMPTS: u32 = 3;
const SCAN_BASE_MS: u64 = 10;
const SCAN_CAP_MS: u64 = 160;

/// The checkpoint does not record its KPI list, so infer it from the
/// channel count — the two dataset layouts of the paper.
fn infer_kpis(n_ch: usize) -> Result<Vec<Kpi>, GendtError> {
    match n_ch {
        4 => Ok(Kpi::DATASET_A.to_vec()),
        2 => Ok(Kpi::DATASET_B.to_vec()),
        other => Err(GendtError::corrupt(format!(
            "cannot infer KPI list for a {other}-channel model (expected 4 or 2)"
        ))),
    }
}

fn scan_dir(dir: &Path) -> Result<ModelMap, GendtError> {
    gendt_faults::fail_io("registry.scan")
        .map_err(|e| GendtError::io(format!("scanning {}: {e}", dir.display())))?;
    let entries = std::fs::read_dir(dir)
        .map_err(|e| GendtError::from(e).wrap(format!("cannot read {}", dir.display())))?;
    let mut map = ModelMap::new();
    for entry in entries {
        let entry = entry
            .map_err(|e| GendtError::from(e).wrap(format!("cannot list {}", dir.display())))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        // Skip benchmark/result JSON that happens to share the directory.
        if stem.starts_with("BENCH_") || stem.starts_with("RESULTS") {
            continue;
        }
        let model = load_model_from_file(&path)
            .map_err(|e| GendtError::corrupt(format!("loading {}: {e}", path.display())))?;
        let kpis = infer_kpis(model.cfg().n_ch)
            .map_err(|e| e.wrap(format!("loading {}", path.display())))?;
        let bytes = std::fs::read(&path)
            .map_err(|e| GendtError::from(e).wrap(format!("hashing {}", path.display())))?;
        map.insert(
            stem.to_string(),
            Arc::new(ModelEntry {
                name: stem.to_string(),
                version: content_version(&bytes),
                model,
                kpis,
            }),
        );
    }
    if map.is_empty() {
        return Err(GendtError::not_found(format!(
            "no model checkpoints found in {}",
            dir.display()
        )));
    }
    Ok(map)
}

/// Scan with bounded retries on transient (retryable) failures.
fn scan_dir_retrying(dir: &Path) -> Result<ModelMap, GendtError> {
    // Deterministic jitter seed derived from the directory path.
    let seed = dir
        .to_string_lossy()
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
        });
    retry_with_backoff(
        SCAN_BASE_MS,
        SCAN_CAP_MS,
        SCAN_ATTEMPTS,
        seed,
        || scan_dir(dir),
        |e: &GendtError| e.retryable(),
    )
}

impl Registry {
    /// Load every checkpoint in `dir`. Fails if the directory holds no
    /// loadable model — an empty registry cannot serve anything.
    pub fn load(dir: &Path) -> Result<Registry, GendtError> {
        let map = scan_dir_retrying(dir)?;
        Ok(Registry {
            dir: dir.to_path_buf(),
            current: RwLock::new(Arc::new(map)),
        })
    }

    /// Registry over an already-built model set, no directory backing.
    /// Harness seam: `gendt-audit sync-check` explores resolve/install
    /// interleavings against the real swap logic without touching disk.
    pub fn preloaded(map: ModelMap) -> Registry {
        Registry {
            dir: PathBuf::new(),
            current: RwLock::new(Arc::new(map)),
        }
    }

    /// Atomically swap in `map` as the live model set (the reload
    /// commit step, minus the directory scan).
    pub fn install(&self, map: ModelMap) {
        let mut cur = self.current.write();
        *cur = Arc::new(map);
    }

    /// Rescan the directory and atomically swap in the new model set.
    /// On any load failure the previous set stays live — a bad deploy
    /// never takes down serving.
    pub fn reload(&self) -> Result<usize, GendtError> {
        let map = scan_dir_retrying(&self.dir)?;
        let n = map.len();
        self.install(map);
        Ok(n)
    }

    /// Resolve a model by name. The returned `Arc` stays valid across
    /// reloads, pinning the exact model version a request started with.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        let cur = self.current.read();
        cur.get(name).cloned()
    }

    /// Sorted model names currently live.
    pub fn names(&self) -> Vec<String> {
        let cur = self.current.read();
        cur.keys().cloned().collect()
    }

    /// Snapshot of the live entries, sorted by name — the `/v1/info`
    /// advertisement (name, version, channel count).
    pub fn entries(&self) -> Vec<Arc<ModelEntry>> {
        let cur = self.current.read();
        cur.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kpi_inference_matches_dataset_layouts() {
        assert_eq!(infer_kpis(4).ok().as_deref(), Some(&Kpi::DATASET_A[..]));
        assert_eq!(infer_kpis(2).ok().as_deref(), Some(&Kpi::DATASET_B[..]));
        assert!(infer_kpis(3).is_err());
    }

    #[test]
    fn missing_dir_is_a_not_found_error() {
        let err = Registry::load(Path::new("/nonexistent/gendt-models"))
            .err()
            .expect("load must fail");
        assert_eq!(err.kind(), gendt_faults::ErrorKind::NotFound);
    }
}
