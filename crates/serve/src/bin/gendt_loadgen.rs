//! `gendt-loadgen` — drive a `gendt-serve` instance with open-loop
//! Poisson arrivals and report serving latency/throughput.
//!
//! ```text
//! gendt-loadgen [--addr HOST:PORT] [--rate RPS] [--requests N]
//!               [--max-inflight N] [--seed N] [--out PATH]
//!               [--quick] [--smoke]
//! ```
//!
//! Arrivals are offered at the configured rate whether or not earlier
//! requests returned (open loop), so tail latency reflects queueing
//! rather than client back-pressure; the arrival schedule is seeded and
//! exactly reproducible. Without `--addr`, an in-process server is
//! stood up against a freshly trained demo checkpoint — this is what CI
//! uses, so the gate needs no external binaries (no curl in the
//! container). `--quick` shrinks the run for CI; `--smoke` only checks
//! one request plus a `/metrics` scrape and a clean shutdown. Results
//! (p50/p95/p99/p99.9 latency, offered vs achieved throughput, batch
//! occupancy) land in `BENCH_serve.json`.

#![forbid(unsafe_code)]

use gendt_faults::GendtError;
use gendt_serve::api::{GenerateRequest, GenerateResponse};
use gendt_serve::http::http_request;
use gendt_serve::loadgen::{drive_open_loop, OpenLoopCfg};
use gendt_serve::scheduler::SchedCfg;
use gendt_serve::{serve, ServerCfg, ServerHandle};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;

/// Load-driver knobs echoed into the artifact so a recorded run is
/// reproducible from its own header.
#[derive(Debug, Serialize, Deserialize)]
struct BenchConfig {
    mode: String,
    rate_rps: f64,
    requests: usize,
    max_inflight: usize,
    seed: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchOut {
    /// Versioned layout marker (`gendt_trace::BENCH_SCHEMA`); bumped when
    /// a field changes meaning, so cross-PR comparisons can tell.
    bench_schema: u32,
    git_rev: String,
    config: BenchConfig,
    offered_rps: f64,
    achieved_rps: f64,
    ok: u64,
    rejected: u64,
    failed: u64,
    client_shed: u64,
    wall_s: f64,
    latency_ms: gendt_metrics::Quantiles,
    batch_occupancy: f64,
    batches: u64,
}

struct Opts {
    addr: Option<String>,
    cfg: OpenLoopCfg,
    out: String,
    smoke: bool,
}

fn parse_opts() -> Result<Opts, GendtError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut o = Opts {
        addr: None,
        cfg: OpenLoopCfg {
            rate_rps: 400.0,
            requests: 512,
            seed: 1,
            max_inflight: 256,
        },
        out: "BENCH_serve.json".to_string(),
        smoke: false,
    };
    let need = |flag: &str| GendtError::config(format!("{flag} needs a value"));
    let bad = |flag: &str| GendtError::config(format!("{flag}: bad value"));
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => o.addr = Some(it.next().ok_or_else(|| need("--addr"))?.clone()),
            "--rate" => {
                o.cfg.rate_rps = it
                    .next()
                    .ok_or_else(|| need("--rate"))?
                    .parse()
                    .map_err(|_| bad("--rate"))?
            }
            "--requests" => {
                o.cfg.requests = it
                    .next()
                    .ok_or_else(|| need("--requests"))?
                    .parse()
                    .map_err(|_| bad("--requests"))?
            }
            "--max-inflight" => {
                o.cfg.max_inflight = it
                    .next()
                    .ok_or_else(|| need("--max-inflight"))?
                    .parse()
                    .map_err(|_| bad("--max-inflight"))?
            }
            "--seed" => {
                o.cfg.seed = it
                    .next()
                    .ok_or_else(|| need("--seed"))?
                    .parse()
                    .map_err(|_| bad("--seed"))?
            }
            "--out" => o.out = it.next().ok_or_else(|| need("--out"))?.clone(),
            "--quick" => {
                o.cfg.rate_rps = 250.0;
                o.cfg.requests = 96;
            }
            "--smoke" => o.smoke = true,
            other => return Err(GendtError::config(format!("unknown flag {other}"))),
        }
    }
    o.cfg.validate()?;
    Ok(o)
}

/// Stand up an in-process server over a demo checkpoint.
fn inprocess_server() -> Result<ServerHandle, GendtError> {
    let dir = std::env::temp_dir().join("gendt-loadgen-models");
    let ckpt = dir.join("demo_a.json");
    if !ckpt.exists() {
        eprintln!("training demo checkpoint at {} ...", ckpt.display());
        gendt_serve::demo::write_demo_model(&ckpt, 1)?;
    }
    let cfg = ServerCfg {
        sched: SchedCfg {
            max_batch: 8,
            max_wait_ms: 4,
            queue_cap: 256,
        },
        ..ServerCfg::new(dir)
    };
    serve(cfg)
}

fn request_body(i: usize) -> String {
    let req = GenerateRequest {
        model: "demo_a".to_string(),
        scenario: "walk".to_string(),
        duration_s: 40.0,
        start_x: 0.0,
        start_y: 0.0,
        // A handful of distinct routes: exercises both the context
        // cache (repeats) and batched heterogeneity (distinct).
        traj_seed: (i % 4) as u64,
        sample_seed: i as u64,
    };
    serde_json::to_string(&req).unwrap_or_default()
}

fn scrape_counter(metrics_text: &str, name: &str) -> Option<f64> {
    metrics_text
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

fn smoke(addr: &str) -> Result<(), GendtError> {
    let (status, body) = http_request(addr, "POST", "/v1/generate", Some(&request_body(0)))
        .map_err(|e| GendtError::unavailable(format!("generate: {e}")))?;
    if status != 200 {
        return Err(GendtError::internal(format!(
            "generate returned {status}: {body}"
        )));
    }
    let resp: GenerateResponse = serde_json::from_str(&body)
        .map_err(|e| GendtError::internal(format!("bad generate body: {e}")))?;
    if resp.series.is_empty() {
        return Err(GendtError::internal("generate returned an empty series"));
    }
    let (status, text) = http_request(addr, "GET", "/v1/metrics", None)
        .map_err(|e| GendtError::unavailable(format!("metrics: {e}")))?;
    if status != 200 || !text.contains("gendt_serve_http_requests_total") {
        return Err(GendtError::internal(format!(
            "metrics scrape failed ({status})"
        )));
    }
    println!(
        "serve smoke OK: 1 request, {} KPI channels",
        resp.series.kpis.len()
    );
    Ok(())
}

fn run() -> Result<(), GendtError> {
    let opts = parse_opts()?;
    let (addr, handle) = match &opts.addr {
        Some(a) => (a.clone(), None),
        None => {
            let h = inprocess_server()?;
            (h.addr.to_string(), Some(h))
        }
    };

    let result = if opts.smoke {
        smoke(&addr)
    } else {
        drive(&addr, &opts)
    };

    if let Some(h) = handle {
        h.shutdown();
    }
    result
}

fn drive(addr: &str, opts: &Opts) -> Result<(), GendtError> {
    let report = drive_open_loop(addr, &request_body, &opts.cfg)?;

    let (text_status, metrics_text) = http_request(addr, "GET", "/v1/metrics", None)
        .map_err(|e| GendtError::unavailable(format!("metrics: {e}")))?;
    if text_status != 200 {
        return Err(GendtError::internal(format!(
            "metrics scrape failed ({text_status})"
        )));
    }
    let batched =
        scrape_counter(&metrics_text, "gendt_serve_batched_requests_total").unwrap_or(0.0);
    let batches = scrape_counter(&metrics_text, "gendt_serve_batches_total").unwrap_or(0.0);
    let occupancy = if batches > 0.0 {
        batched / batches
    } else {
        0.0
    };

    let out = BenchOut {
        bench_schema: gendt_trace::BENCH_SCHEMA,
        git_rev: gendt_trace::git_rev(),
        config: BenchConfig {
            mode: "open_loop_poisson".to_string(),
            rate_rps: opts.cfg.rate_rps,
            requests: opts.cfg.requests,
            max_inflight: opts.cfg.max_inflight,
            seed: opts.cfg.seed,
        },
        offered_rps: report.offered_rps,
        achieved_rps: report.achieved_rps,
        ok: report.ok,
        rejected: report.rejected,
        failed: report.failed,
        client_shed: report.client_shed,
        wall_s: report.wall_s,
        latency_ms: report.latency_ms,
        batch_occupancy: occupancy,
        batches: batches as u64,
    };
    // Preserve an existing fleet section (written by `gendt-fleet
    // bench`) when refreshing the single-node numbers in place.
    let json = match merge_preserving_fleet(&opts.out, &out) {
        Some(merged) => merged,
        None => serde_json::to_string(&out)
            .map_err(|e| GendtError::internal(format!("encoding results: {e}")))?,
    };
    std::fs::write(&opts.out, &json)
        .map_err(|e| GendtError::from(e).wrap(format!("writing {}", opts.out)))?;
    println!(
        "loadgen: offered {:.0} rps → achieved {:.1} rps ({} ok / {} rejected / {} failed / {} client-shed) in {:.2}s, p50={:.1}ms p95={:.1}ms p99={:.1}ms p99.9={:.1}ms, batch occupancy {:.2}",
        out.offered_rps,
        out.achieved_rps,
        out.ok,
        out.rejected,
        out.failed,
        out.client_shed,
        out.wall_s,
        out.latency_ms.p50,
        out.latency_ms.p95,
        out.latency_ms.p99,
        out.latency_ms.p999,
        out.batch_occupancy,
    );
    println!("wrote {}", opts.out);
    Ok(())
}

/// If `path` already holds a bench artifact with a `fleet` section,
/// graft that section onto the fresh single-node results so the two
/// producers (`gendt-loadgen`, `gendt-fleet bench`) can share one file.
fn merge_preserving_fleet(path: &str, out: &BenchOut) -> Option<String> {
    let old = std::fs::read_to_string(path).ok()?;
    let old: serde::Value = serde_json::from_str(&old).ok()?;
    let fleet = old
        .as_map_for("bench artifact")
        .ok()?
        .iter()
        .find(|(k, _)| k == "fleet")
        .map(|(_, v)| v.clone())?;
    let fresh = serde_json::to_string(out).ok()?;
    let mut doc: serde::Value = serde_json::from_str(&fresh).ok()?;
    if let serde::Value::Map(entries) = &mut doc {
        entries.push(("fleet".to_string(), fleet));
    }
    serde_json::to_string(&doc).ok()
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gendt-loadgen: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
