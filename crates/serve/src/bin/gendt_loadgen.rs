//! `gendt-loadgen` — drive a `gendt-serve` instance at fixed concurrency
//! and report serving latency/throughput.
//!
//! ```text
//! gendt-loadgen [--addr HOST:PORT] [--concurrency N] [--requests N]
//!               [--out PATH] [--quick] [--smoke]
//! ```
//!
//! Without `--addr`, an in-process server is stood up against a freshly
//! trained demo checkpoint — this is what CI uses, so the gate needs no
//! external binaries (no curl in the container). `--quick` shrinks the
//! run for CI; `--smoke` only checks one request plus a `/metrics`
//! scrape and a clean shutdown. Results (p50/p95/p99 latency,
//! throughput, batch occupancy) land in `BENCH_serve.json`.

#![forbid(unsafe_code)]

use gendt_faults::GendtError;
use gendt_serve::api::{GenerateRequest, GenerateResponse};
use gendt_serve::http::http_request;
use gendt_serve::scheduler::SchedCfg;
use gendt_serve::{serve, ServerCfg, ServerHandle};
use gendt_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use gendt_sync::Mutex;
use serde::{Deserialize, Serialize};
use std::process::ExitCode;
use std::time::Instant;

/// Load-driver knobs echoed into the artifact so a recorded run is
/// reproducible from its own header.
#[derive(Debug, Serialize, Deserialize)]
struct BenchConfig {
    requests: usize,
    concurrency: usize,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchOut {
    /// Versioned layout marker (`gendt_trace::BENCH_SCHEMA`); bumped when
    /// a field changes meaning, so cross-PR comparisons can tell.
    bench_schema: u32,
    git_rev: String,
    config: BenchConfig,
    requests: usize,
    concurrency: usize,
    ok: u64,
    rejected: u64,
    failed: u64,
    wall_s: f64,
    throughput_rps: f64,
    latency_ms: gendt_metrics::Quantiles,
    batch_occupancy: f64,
    batches: u64,
}

struct Opts {
    addr: Option<String>,
    concurrency: usize,
    requests: usize,
    out: String,
    smoke: bool,
}

fn parse_opts() -> Result<Opts, GendtError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut o = Opts {
        addr: None,
        concurrency: 8,
        requests: 64,
        out: "BENCH_serve.json".to_string(),
        smoke: false,
    };
    let need = |flag: &str| GendtError::config(format!("{flag} needs a value"));
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => o.addr = Some(it.next().ok_or_else(|| need("--addr"))?.clone()),
            "--concurrency" => {
                o.concurrency = it
                    .next()
                    .ok_or_else(|| need("--concurrency"))?
                    .parse()
                    .map_err(|_| GendtError::config("--concurrency: bad value"))?
            }
            "--requests" => {
                o.requests = it
                    .next()
                    .ok_or_else(|| need("--requests"))?
                    .parse()
                    .map_err(|_| GendtError::config("--requests: bad value"))?
            }
            "--out" => o.out = it.next().ok_or_else(|| need("--out"))?.clone(),
            "--quick" => {
                o.concurrency = 4;
                o.requests = 16;
            }
            "--smoke" => o.smoke = true,
            other => return Err(GendtError::config(format!("unknown flag {other}"))),
        }
    }
    Ok(o)
}

/// Stand up an in-process server over a demo checkpoint.
fn inprocess_server() -> Result<ServerHandle, GendtError> {
    let dir = std::env::temp_dir().join("gendt-loadgen-models");
    let ckpt = dir.join("demo_a.json");
    if !ckpt.exists() {
        eprintln!("training demo checkpoint at {} ...", ckpt.display());
        gendt_serve::demo::write_demo_model(&ckpt, 1)?;
    }
    let cfg = ServerCfg {
        sched: SchedCfg {
            max_batch: 8,
            max_wait_ms: 4,
            queue_cap: 256,
        },
        ..ServerCfg::new(dir)
    };
    serve(cfg)
}

fn request_body(i: usize) -> String {
    let req = GenerateRequest {
        model: "demo_a".to_string(),
        scenario: "walk".to_string(),
        duration_s: 40.0,
        start_x: 0.0,
        start_y: 0.0,
        // A handful of distinct routes: exercises both the context
        // cache (repeats) and batched heterogeneity (distinct).
        traj_seed: (i % 4) as u64,
        sample_seed: i as u64,
    };
    serde_json::to_string(&req).unwrap_or_default()
}

fn scrape_counter(metrics_text: &str, name: &str) -> Option<f64> {
    metrics_text
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

fn smoke(addr: &str) -> Result<(), GendtError> {
    let (status, body) = http_request(addr, "POST", "/v1/generate", Some(&request_body(0)))
        .map_err(|e| GendtError::unavailable(format!("generate: {e}")))?;
    if status != 200 {
        return Err(GendtError::internal(format!(
            "generate returned {status}: {body}"
        )));
    }
    let resp: GenerateResponse = serde_json::from_str(&body)
        .map_err(|e| GendtError::internal(format!("bad generate body: {e}")))?;
    if resp.series.is_empty() {
        return Err(GendtError::internal("generate returned an empty series"));
    }
    let (status, text) = http_request(addr, "GET", "/v1/metrics", None)
        .map_err(|e| GendtError::unavailable(format!("metrics: {e}")))?;
    if status != 200 || !text.contains("gendt_serve_http_requests_total") {
        return Err(GendtError::internal(format!(
            "metrics scrape failed ({status})"
        )));
    }
    println!(
        "serve smoke OK: 1 request, {} KPI channels",
        resp.series.kpis.len()
    );
    Ok(())
}

fn run() -> Result<(), GendtError> {
    let opts = parse_opts()?;
    let (addr, handle) = match &opts.addr {
        Some(a) => (a.clone(), None),
        None => {
            let h = inprocess_server()?;
            (h.addr.to_string(), Some(h))
        }
    };

    let result = if opts.smoke {
        smoke(&addr)
    } else {
        drive(&addr, &opts)
    };

    if let Some(h) = handle {
        h.shutdown();
    }
    result
}

fn drive(addr: &str, opts: &Opts) -> Result<(), GendtError> {
    let next = AtomicUsize::new(0);
    let ok = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(opts.requests));

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..opts.concurrency.max(1) {
            scope.spawn(|| loop {
                // sync: work-stealing ticket + tallies; each counter is
                // independent and joined before being read.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= opts.requests {
                    return;
                }
                let body = request_body(i);
                let t0 = Instant::now();
                match http_request(addr, "POST", "/v1/generate", Some(&body)) {
                    Ok((200, _)) => {
                        let ms = t0.elapsed().as_secs_f64() * 1000.0;
                        ok.fetch_add(1, Ordering::Relaxed);
                        latencies.lock().push(ms);
                    }
                    Ok((429, _)) => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok((_, _)) | Err(_) => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();

    let samples = latencies.lock();
    if samples.is_empty() {
        return Err(GendtError::unavailable("no request succeeded"));
    }
    let (text_status, metrics_text) = http_request(addr, "GET", "/v1/metrics", None)
        .map_err(|e| GendtError::unavailable(format!("metrics: {e}")))?;
    if text_status != 200 {
        return Err(GendtError::internal(format!(
            "metrics scrape failed ({text_status})"
        )));
    }
    let batched =
        scrape_counter(&metrics_text, "gendt_serve_batched_requests_total").unwrap_or(0.0);
    let batches = scrape_counter(&metrics_text, "gendt_serve_batches_total").unwrap_or(0.0);
    let occupancy = if batches > 0.0 {
        batched / batches
    } else {
        0.0
    };

    let out = BenchOut {
        bench_schema: gendt_trace::BENCH_SCHEMA,
        git_rev: gendt_trace::git_rev(),
        config: BenchConfig {
            requests: opts.requests,
            concurrency: opts.concurrency,
        },
        requests: opts.requests,
        concurrency: opts.concurrency,
        // sync: scope join above ordered every worker's tallies.
        ok: ok.load(Ordering::Relaxed),
        rejected: rejected.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        wall_s,
        throughput_rps: ok.load(Ordering::Relaxed) as f64 / wall_s.max(1e-9),
        latency_ms: gendt_metrics::Quantiles::from_samples(&samples),
        batch_occupancy: occupancy,
        batches: batches as u64,
    };
    let json = serde_json::to_string(&out)
        .map_err(|e| GendtError::internal(format!("encoding results: {e}")))?;
    std::fs::write(&opts.out, &json)
        .map_err(|e| GendtError::from(e).wrap(format!("writing {}", opts.out)))?;
    println!(
        "loadgen: {} ok / {} rejected / {} failed in {:.2}s ({:.1} req/s), p50={:.1}ms p95={:.1}ms p99={:.1}ms, batch occupancy {:.2}",
        out.ok,
        out.rejected,
        out.failed,
        out.wall_s,
        out.throughput_rps,
        out.latency_ms.p50,
        out.latency_ms.p95,
        out.latency_ms.p99,
        out.batch_occupancy,
    );
    println!("wrote {}", opts.out);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gendt-loadgen: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
