//! `gendt-loadgen` — drive a `gendt-serve` instance with open-loop
//! Poisson arrivals and report serving latency/throughput.
//!
//! ```text
//! gendt-loadgen [--addr HOST:PORT] [--rate RPS] [--requests N]
//!               [--max-inflight N] [--seed N] [--out PATH]
//!               [--quick] [--smoke] [--stream] [--sessions N]
//! ```
//!
//! Arrivals are offered at the configured rate whether or not earlier
//! requests returned (open loop), so tail latency reflects queueing
//! rather than client back-pressure; the arrival schedule is seeded and
//! exactly reproducible. Without `--addr`, an in-process server is
//! stood up against a freshly trained demo checkpoint — this is what CI
//! uses, so the gate needs no external binaries (no curl in the
//! container). `--quick` shrinks the run for CI; `--smoke` only checks
//! one request plus a `/metrics` scrape and a clean shutdown. Results
//! (p50/p95/p99/p99.9 latency, offered vs achieved throughput, batch
//! occupancy) land in `BENCH_serve.json`.

#![forbid(unsafe_code)]

use gendt_faults::GendtError;
use gendt_serve::api::{GenerateRequest, GenerateResponse};
use gendt_serve::http::http_request;
use gendt_serve::loadgen::{
    drive_open_loop, drive_stream_sessions, stream_knee_of, stream_saturation_sweep, OpenLoopCfg,
    StreamLoadCfg,
};
use gendt_serve::scheduler::SchedCfg;
use gendt_serve::{serve, ServerCfg, ServerHandle};
use serde::{Deserialize, Serialize};
use std::process::ExitCode;

/// Load-driver knobs echoed into the artifact so a recorded run is
/// reproducible from its own header.
#[derive(Debug, Serialize, Deserialize)]
struct BenchConfig {
    mode: String,
    rate_rps: f64,
    requests: usize,
    max_inflight: usize,
    seed: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchOut {
    /// Versioned layout marker (`gendt_trace::BENCH_SCHEMA`); bumped when
    /// a field changes meaning, so cross-PR comparisons can tell.
    bench_schema: u32,
    git_rev: String,
    config: BenchConfig,
    offered_rps: f64,
    achieved_rps: f64,
    ok: u64,
    rejected: u64,
    failed: u64,
    client_shed: u64,
    wall_s: f64,
    latency_ms: gendt_metrics::Quantiles,
    batch_occupancy: f64,
    batches: u64,
}

struct Opts {
    addr: Option<String>,
    cfg: OpenLoopCfg,
    out: String,
    smoke: bool,
    stream: bool,
    sessions: usize,
}

fn parse_opts() -> Result<Opts, GendtError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut o = Opts {
        addr: None,
        cfg: OpenLoopCfg {
            rate_rps: 400.0,
            requests: 512,
            seed: 1,
            max_inflight: 256,
        },
        out: "BENCH_serve.json".to_string(),
        smoke: false,
        stream: false,
        sessions: 1024,
    };
    let need = |flag: &str| GendtError::config(format!("{flag} needs a value"));
    let bad = |flag: &str| GendtError::config(format!("{flag}: bad value"));
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => o.addr = Some(it.next().ok_or_else(|| need("--addr"))?.clone()),
            "--rate" => {
                o.cfg.rate_rps = it
                    .next()
                    .ok_or_else(|| need("--rate"))?
                    .parse()
                    .map_err(|_| bad("--rate"))?
            }
            "--requests" => {
                o.cfg.requests = it
                    .next()
                    .ok_or_else(|| need("--requests"))?
                    .parse()
                    .map_err(|_| bad("--requests"))?
            }
            "--max-inflight" => {
                o.cfg.max_inflight = it
                    .next()
                    .ok_or_else(|| need("--max-inflight"))?
                    .parse()
                    .map_err(|_| bad("--max-inflight"))?
            }
            "--seed" => {
                o.cfg.seed = it
                    .next()
                    .ok_or_else(|| need("--seed"))?
                    .parse()
                    .map_err(|_| bad("--seed"))?
            }
            "--out" => o.out = it.next().ok_or_else(|| need("--out"))?.clone(),
            "--quick" => {
                o.cfg.rate_rps = 250.0;
                o.cfg.requests = 96;
                o.sessions = 64;
            }
            "--smoke" => o.smoke = true,
            "--stream" => o.stream = true,
            "--sessions" => {
                o.sessions = it
                    .next()
                    .ok_or_else(|| need("--sessions"))?
                    .parse()
                    .map_err(|_| bad("--sessions"))?
            }
            other => return Err(GendtError::config(format!("unknown flag {other}"))),
        }
    }
    o.cfg.validate()?;
    Ok(o)
}

/// Stand up an in-process server over a demo checkpoint.
fn inprocess_server() -> Result<ServerHandle, GendtError> {
    let dir = std::env::temp_dir().join("gendt-loadgen-models");
    let ckpt = dir.join("demo_a.json");
    if !ckpt.exists() {
        eprintln!("training demo checkpoint at {} ...", ckpt.display());
        gendt_serve::demo::write_demo_model(&ckpt, 1)?;
    }
    let cfg = ServerCfg {
        sched: SchedCfg {
            max_batch: 8,
            max_wait_ms: 4,
            queue_cap: 256,
        },
        ..ServerCfg::new(dir)
    };
    serve(cfg)
}

fn request_body(i: usize) -> String {
    let req = GenerateRequest {
        model: "demo_a".to_string(),
        scenario: "walk".to_string(),
        duration_s: 40.0,
        start_x: 0.0,
        start_y: 0.0,
        // A handful of distinct routes: exercises both the context
        // cache (repeats) and batched heterogeneity (distinct).
        traj_seed: (i % 4) as u64,
        sample_seed: i as u64,
    };
    serde_json::to_string(&req).unwrap_or_default()
}

fn scrape_counter(metrics_text: &str, name: &str) -> Option<f64> {
    metrics_text
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

fn smoke(addr: &str) -> Result<(), GendtError> {
    let (status, body) = http_request(addr, "POST", "/v1/generate", Some(&request_body(0)))
        .map_err(|e| GendtError::unavailable(format!("generate: {e}")))?;
    if status != 200 {
        return Err(GendtError::internal(format!(
            "generate returned {status}: {body}"
        )));
    }
    let resp: GenerateResponse = serde_json::from_str(&body)
        .map_err(|e| GendtError::internal(format!("bad generate body: {e}")))?;
    if resp.series.is_empty() {
        return Err(GendtError::internal("generate returned an empty series"));
    }
    let (status, text) = http_request(addr, "GET", "/v1/metrics", None)
        .map_err(|e| GendtError::unavailable(format!("metrics: {e}")))?;
    if status != 200 || !text.contains("gendt_serve_http_requests_total") {
        return Err(GendtError::internal(format!(
            "metrics scrape failed ({status})"
        )));
    }
    println!(
        "serve smoke OK: 1 request, {} KPI channels",
        resp.series.kpis.len()
    );
    Ok(())
}

fn run() -> Result<(), GendtError> {
    let opts = parse_opts()?;
    let (addr, handle) = match &opts.addr {
        Some(a) => (a.clone(), None),
        None => {
            let h = inprocess_server()?;
            (h.addr.to_string(), Some(h))
        }
    };

    let result = if opts.smoke {
        smoke(&addr)
    } else if opts.stream {
        drive_stream(&addr, &opts)
    } else {
        drive(&addr, &opts)
    };

    if let Some(h) = handle {
        h.shutdown();
    }
    result
}

fn drive(addr: &str, opts: &Opts) -> Result<(), GendtError> {
    let report = drive_open_loop(addr, &request_body, &opts.cfg)?;

    let (text_status, metrics_text) = http_request(addr, "GET", "/v1/metrics", None)
        .map_err(|e| GendtError::unavailable(format!("metrics: {e}")))?;
    if text_status != 200 {
        return Err(GendtError::internal(format!(
            "metrics scrape failed ({text_status})"
        )));
    }
    let batched =
        scrape_counter(&metrics_text, "gendt_serve_batched_requests_total").unwrap_or(0.0);
    let batches = scrape_counter(&metrics_text, "gendt_serve_batches_total").unwrap_or(0.0);
    let occupancy = if batches > 0.0 {
        batched / batches
    } else {
        0.0
    };

    let out = BenchOut {
        bench_schema: gendt_trace::BENCH_SCHEMA,
        git_rev: gendt_trace::git_rev(),
        config: BenchConfig {
            mode: "open_loop_poisson".to_string(),
            rate_rps: opts.cfg.rate_rps,
            requests: opts.cfg.requests,
            max_inflight: opts.cfg.max_inflight,
            seed: opts.cfg.seed,
        },
        offered_rps: report.offered_rps,
        achieved_rps: report.achieved_rps,
        ok: report.ok,
        rejected: report.rejected,
        failed: report.failed,
        client_shed: report.client_shed,
        wall_s: report.wall_s,
        latency_ms: report.latency_ms,
        batch_occupancy: occupancy,
        batches: batches as u64,
    };
    // Preserve an existing fleet section (written by `gendt-fleet
    // bench`) when refreshing the single-node numbers in place.
    let json = match merge_preserving_fleet(&opts.out, &out) {
        Some(merged) => merged,
        None => serde_json::to_string(&out)
            .map_err(|e| GendtError::internal(format!("encoding results: {e}")))?,
    };
    std::fs::write(&opts.out, &json)
        .map_err(|e| GendtError::from(e).wrap(format!("writing {}", opts.out)))?;
    println!(
        "loadgen: offered {:.0} rps → achieved {:.1} rps ({} ok / {} rejected / {} failed / {} client-shed) in {:.2}s, p50={:.1}ms p95={:.1}ms p99={:.1}ms p99.9={:.1}ms, batch occupancy {:.2}",
        out.offered_rps,
        out.achieved_rps,
        out.ok,
        out.rejected,
        out.failed,
        out.client_shed,
        out.wall_s,
        out.latency_ms.p50,
        out.latency_ms.p95,
        out.latency_ms.p99,
        out.latency_ms.p999,
        out.batch_occupancy,
    );
    println!("wrote {}", opts.out);
    Ok(())
}

/// Session-workload knobs echoed into the `stream` section header.
#[derive(Debug, Serialize, Deserialize)]
struct StreamBenchConfig {
    mode: String,
    sessions: usize,
    rate_rps: f64,
    requests: usize,
    max_inflight: usize,
    seed: u64,
}

/// One step of the stream saturation sweep.
#[derive(Debug, Serialize, Deserialize)]
struct StreamStep {
    offered_rps: f64,
    achieved_rps: f64,
    ok: u64,
    rejected: u64,
    failed: u64,
    completed: u64,
    p99_ms: f64,
    p999_ms: f64,
}

/// The `stream` section of the bench artifact: the headline session
/// run plus the continuation-rate saturation sweep.
#[derive(Debug, Serialize, Deserialize)]
struct StreamBenchOut {
    /// Section-local schema stamp, same meaning as the top level.
    bench_schema: u32,
    git_rev: String,
    config: StreamBenchConfig,
    /// Sessions concurrently resident when the continuation phase ran.
    opened: u64,
    open_failed: u64,
    offered_rps: f64,
    achieved_rps: f64,
    ok: u64,
    rejected: u64,
    failed: u64,
    client_shed: u64,
    completed: u64,
    wall_s: f64,
    latency_ms: gendt_metrics::Quantiles,
    /// Total chunks the server streamed over the whole run (scraped).
    chunks_total: u64,
    knee_rps: f64,
    sweep: Vec<StreamStep>,
}

/// Drive the stateful `/v1/stream` workload and graft the results into
/// the artifact's `stream` section, leaving other sections untouched.
fn drive_stream(addr: &str, opts: &Opts) -> Result<(), GendtError> {
    let cfg = StreamLoadCfg {
        sessions: opts.sessions,
        rate_rps: opts.cfg.rate_rps,
        requests: opts.cfg.requests,
        seed: opts.cfg.seed,
        max_inflight: opts.cfg.max_inflight,
    };
    let open_body = |i: usize| {
        // `max_windows: 1` pauses every session after one window, so
        // the whole population is concurrently resident server-side.
        format!(
            "{{\"model\":\"demo_a\",\"scenario\":\"walk\",\"duration_s\":40.0,\
             \"start_x\":0.0,\"start_y\":0.0,\"traj_seed\":{},\"sample_seed\":{},\
             \"max_windows\":1}}",
            i % 4,
            i
        )
    };
    let report = drive_stream_sessions(addr, &open_body, &cfg)?;
    let sweep_cfg = StreamLoadCfg {
        requests: (cfg.requests / 2).max(96),
        ..cfg.clone()
    };
    let sweep = stream_saturation_sweep(
        addr,
        &open_body,
        &sweep_cfg,
        (cfg.rate_rps / 2.0).max(1.0),
        1.6,
        0.9,
        4,
    )?;
    let knee_rps = stream_knee_of(&sweep)
        .map(|k| k.achieved_rps)
        .unwrap_or(0.0);

    let (text_status, metrics_text) = http_request(addr, "GET", "/v1/metrics", None)
        .map_err(|e| GendtError::unavailable(format!("metrics: {e}")))?;
    if text_status != 200 {
        return Err(GendtError::internal(format!(
            "metrics scrape failed ({text_status})"
        )));
    }
    let chunks_total =
        scrape_counter(&metrics_text, "gendt_serve_stream_chunks_total").unwrap_or(0.0) as u64;

    let out = StreamBenchOut {
        bench_schema: gendt_trace::BENCH_SCHEMA,
        git_rev: gendt_trace::git_rev(),
        config: StreamBenchConfig {
            mode: "open_loop_stream_sessions".to_string(),
            sessions: cfg.sessions,
            rate_rps: cfg.rate_rps,
            requests: cfg.requests,
            max_inflight: cfg.max_inflight,
            seed: cfg.seed,
        },
        opened: report.opened,
        open_failed: report.open_failed,
        offered_rps: report.offered_rps,
        achieved_rps: report.achieved_rps,
        ok: report.ok,
        rejected: report.rejected,
        failed: report.failed,
        client_shed: report.client_shed,
        completed: report.completed,
        wall_s: report.wall_s,
        latency_ms: report.latency_ms,
        chunks_total,
        knee_rps,
        sweep: sweep
            .iter()
            .map(|p| StreamStep {
                offered_rps: p.offered_rps,
                achieved_rps: p.achieved_rps,
                ok: p.report.ok,
                rejected: p.report.rejected,
                failed: p.report.failed,
                completed: p.report.completed,
                p99_ms: p.report.latency_ms.p99,
                p999_ms: p.report.latency_ms.p999,
            })
            .collect(),
    };
    let fresh = serde_json::to_string(&out)
        .map_err(|e| GendtError::internal(format!("encoding stream results: {e}")))?;
    let fresh: serde::Value = serde_json::from_str(&fresh)
        .map_err(|e| GendtError::internal(format!("round-tripping stream results: {e}")))?;
    let json = graft_section(&opts.out, "stream", fresh);
    std::fs::write(&opts.out, &json)
        .map_err(|e| GendtError::from(e).wrap(format!("writing {}", opts.out)))?;
    println!(
        "stream loadgen: {} sessions resident, offered {:.0} rps → achieved {:.1} rps ({} ok / {} rejected / {} failed) in {:.2}s, p50={:.1}ms p99={:.1}ms p99.9={:.1}ms, knee {:.1} rps over {} steps",
        out.opened,
        out.offered_rps,
        out.achieved_rps,
        out.ok,
        out.rejected,
        out.failed,
        out.wall_s,
        out.latency_ms.p50,
        out.latency_ms.p99,
        out.latency_ms.p999,
        out.knee_rps,
        out.sweep.len(),
    );
    println!("wrote {} (stream section)", opts.out);
    Ok(())
}

/// Replace `key` in the artifact at `path` with `fresh`, preserving
/// every other top-level entry (or start a new single-entry artifact
/// when the file is missing or unreadable).
fn graft_section(path: &str, key: &str, fresh: serde::Value) -> String {
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|old| serde_json::from_str::<serde::Value>(&old).ok())
        .filter(|v| matches!(v, serde::Value::Map(_)))
        .unwrap_or_else(|| serde::Value::Map(Vec::new()));
    if let serde::Value::Map(entries) = &mut doc {
        entries.retain(|(k, _)| k != key);
        entries.push((key.to_string(), fresh));
    }
    serde_json::to_string(&doc).unwrap_or_else(|_| "{}".to_string())
}

/// If `path` already holds a bench artifact with sections owned by the
/// other producers (`fleet` from `gendt-fleet bench`, `stream` from
/// `--stream`), graft them onto the fresh single-node results so all
/// producers share one file.
fn merge_preserving_fleet(path: &str, out: &BenchOut) -> Option<String> {
    let old = std::fs::read_to_string(path).ok()?;
    let old: serde::Value = serde_json::from_str(&old).ok()?;
    let kept: Vec<(String, serde::Value)> = old
        .as_map_for("bench artifact")
        .ok()?
        .iter()
        .filter(|(k, _)| k == "fleet" || k == "stream")
        .cloned()
        .collect();
    if kept.is_empty() {
        return None;
    }
    let fresh = serde_json::to_string(out).ok()?;
    let mut doc: serde::Value = serde_json::from_str(&fresh).ok()?;
    if let serde::Value::Map(entries) = &mut doc {
        entries.extend(kept);
    }
    serde_json::to_string(&doc).ok()
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gendt-loadgen: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
