//! `gendt-serve` — the GenDT generation service.
//!
//! ```text
//! gendt-serve --models DIR [--addr HOST:PORT] [--world-seed N]
//!             [--max-batch N] [--max-wait-ms N] [--queue-cap N]
//!             [--cache-cap N] [--workers N] [--deadline-ms N]
//! gendt-serve demo-model PATH [--seed N]
//! ```
//!
//! The `demo-model` subcommand trains a small checkpoint so the
//! quickstart (and CI) can stand up a server without a training run.
//! Failures exit with the taxonomy code of their [`GendtError`] kind
//! (config 2, io 3, not-found 5, ... — DESIGN.md §10).

#![forbid(unsafe_code)]

use gendt_faults::{ErrorKind, GendtError};
use gendt_serve::{serve, ServerCfg};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    "usage: gendt-serve --models DIR [--addr HOST:PORT] [--world-seed N] \
     [--max-batch N] [--max-wait-ms N] [--queue-cap N] [--cache-cap N] [--workers N] \
     [--deadline-ms N]\n\
     \x20      gendt-serve demo-model PATH [--seed N]"
        .to_string()
}

fn parse_num<T: std::str::FromStr>(
    args: &mut std::slice::Iter<String>,
    flag: &str,
) -> Result<T, GendtError> {
    let v = args
        .next()
        .ok_or_else(|| GendtError::config(format!("{flag} needs a value")))?;
    v.parse()
        .map_err(|_| GendtError::config(format!("{flag}: bad value {v:?}")))
}

fn run() -> Result<(), GendtError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("demo-model") {
        let mut seed = 1u64;
        let path = argv
            .get(1)
            .ok_or_else(|| GendtError::config("demo-model needs a PATH"))?;
        let mut it = argv[2..].iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => seed = parse_num(&mut it, "--seed")?,
                other => return Err(GendtError::config(format!("unknown flag {other}"))),
            }
        }
        gendt_serve::demo::write_demo_model(PathBuf::from(path).as_path(), seed)?;
        println!("wrote demo checkpoint to {path}");
        return Ok(());
    }

    let mut models_dir: Option<PathBuf> = None;
    let mut builder = ServerCfg::builder(PathBuf::new()).addr("127.0.0.1:8080");
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--models" => {
                let v = it
                    .next()
                    .ok_or_else(|| GendtError::config("--models needs a value"))?;
                models_dir = Some(PathBuf::from(v));
            }
            "--addr" => {
                let v = it
                    .next()
                    .ok_or_else(|| GendtError::config("--addr needs a value"))?;
                builder = builder.addr(v.clone());
            }
            "--world-seed" => builder = builder.world_seed(parse_num(&mut it, "--world-seed")?),
            "--max-batch" => builder = builder.max_batch(parse_num(&mut it, "--max-batch")?),
            "--max-wait-ms" => builder = builder.max_wait_ms(parse_num(&mut it, "--max-wait-ms")?),
            "--queue-cap" => builder = builder.queue_cap(parse_num(&mut it, "--queue-cap")?),
            "--cache-cap" => builder = builder.cache_cap(parse_num(&mut it, "--cache-cap")?),
            "--workers" => builder = builder.workers(parse_num(&mut it, "--workers")?),
            "--deadline-ms" => {
                builder = builder.default_deadline_ms(parse_num(&mut it, "--deadline-ms")?)
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(GendtError::config(format!("unknown flag {other}"))),
        }
    }
    let models_dir = models_dir.ok_or_else(|| GendtError::config("--models DIR is required"))?;

    let mut cfg = builder.build()?;
    cfg.models_dir = models_dir;
    let handle = serve(cfg)?;
    println!("gendt-serve listening on http://{}", handle.addr);
    handle.join();
    println!("gendt-serve stopped");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gendt-serve: {e}");
            if e.kind() == ErrorKind::Config {
                eprintln!("{}", usage());
            }
            ExitCode::from(e.exit_code())
        }
    }
}
