//! `gendt-serve` — the GenDT generation service.
//!
//! ```text
//! gendt-serve --models DIR [--addr HOST:PORT] [--world-seed N]
//!             [--max-batch N] [--max-wait-ms N] [--queue-cap N]
//!             [--cache-cap N] [--workers N]
//! gendt-serve demo-model PATH [--seed N]
//! ```
//!
//! The `demo-model` subcommand trains a small checkpoint so the
//! quickstart (and CI) can stand up a server without a training run.

#![forbid(unsafe_code)]

use gendt_serve::scheduler::SchedCfg;
use gendt_serve::{serve, ServerCfg};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    "usage: gendt-serve --models DIR [--addr HOST:PORT] [--world-seed N] \
     [--max-batch N] [--max-wait-ms N] [--queue-cap N] [--cache-cap N] [--workers N]\n\
     \x20      gendt-serve demo-model PATH [--seed N]"
        .to_string()
}

fn parse_num<T: std::str::FromStr>(
    args: &mut std::slice::Iter<String>,
    flag: &str,
) -> Result<T, String> {
    let v = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse().map_err(|_| format!("{flag}: bad value {v:?}"))
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("demo-model") {
        let mut seed = 1u64;
        let path = argv.get(1).ok_or_else(usage)?;
        let mut it = argv[2..].iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => seed = parse_num(&mut it, "--seed")?,
                other => return Err(format!("unknown flag {other}\n{}", usage())),
            }
        }
        gendt_serve::demo::write_demo_model(PathBuf::from(path).as_path(), seed)?;
        println!("wrote demo checkpoint to {path}");
        return Ok(());
    }

    let mut models_dir: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:8080".to_string();
    let mut world_seed = 1u64;
    let mut sched = SchedCfg::default();
    let mut cache_cap = 128usize;
    let mut workers = 1usize;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--models" => {
                models_dir = Some(PathBuf::from(it.next().ok_or("--models needs a value")?))
            }
            "--addr" => addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--world-seed" => world_seed = parse_num(&mut it, "--world-seed")?,
            "--max-batch" => sched.max_batch = parse_num(&mut it, "--max-batch")?,
            "--max-wait-ms" => sched.max_wait_ms = parse_num(&mut it, "--max-wait-ms")?,
            "--queue-cap" => sched.queue_cap = parse_num(&mut it, "--queue-cap")?,
            "--cache-cap" => cache_cap = parse_num(&mut it, "--cache-cap")?,
            "--workers" => workers = parse_num(&mut it, "--workers")?,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    let models_dir = models_dir.ok_or_else(usage)?;

    let cfg = ServerCfg {
        addr,
        models_dir,
        world_seed,
        sched,
        cache_cap,
        workers,
    };
    let handle = serve(cfg)?;
    println!("gendt-serve listening on http://{}", handle.addr);
    handle.join();
    println!("gendt-serve stopped");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gendt-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
