//! The versioned wire schema of the `/v1` HTTP API, in one place:
//! request/response bodies, the typed error envelope, and the
//! session/stream chunk + trailer types of `/v1/stream`.
//!
//! Requests describe a trajectory *specification* (scenario, duration,
//! start point, seed) rather than shipping raw coordinates: the server
//! owns the world model, so a short JSON body fully determines the
//! context — and, with the explicit `sample_seed`, the entire response.
//!
//! Every v1 response body is a typed struct here, serialized through
//! [`encode`] so all routes share one envelope discipline (and one
//! fallback on encoder failure). Handlers never hand-build JSON.

use gendt::GeneratedSeries;
use gendt_faults::GendtError;
use gendt_geo::trajectory::Scenario;
use serde::{Deserialize, Serialize};

/// The API surface version all `/v1/*` types in this module describe.
pub const API_VERSION: &str = "v1";

/// Header naming a stream session: echoed on every `/v1/stream`
/// response; sent as a request header by the fleet router, whose
/// minted id wins over the worker's.
pub const SESSION_HEADER: &str = "Gendt-Session-Id";

/// Header on a fleet-affinity 503 naming the worker that now owns the
/// session after a migration-on-evict.
pub const SESSION_OWNER_HEADER: &str = "Gendt-Session-Owner";

/// Serialize a v1 response body. Every route funnels through this so
/// the wire shape is owned by the types in this module, with one shared
/// fallback (`{}`) should encoding ever fail — the same behavior the
/// handlers previously open-coded per route.
pub fn encode<T: Serialize>(body: &T) -> String {
    serde_json::to_string(body).unwrap_or_else(|_| "{}".to_string())
}

/// Body of `POST /generate`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GenerateRequest {
    /// Registry name of the model to generate with.
    pub model: String,
    /// Trajectory scenario: `walk`, `bus`, `tram`, `city_drive`, or
    /// `highway`.
    pub scenario: String,
    /// Trajectory duration in seconds.
    pub duration_s: f64,
    /// Trajectory start, meters east of the world origin.
    pub start_x: f64,
    /// Trajectory start, meters north of the world origin.
    pub start_y: f64,
    /// Trajectory synthesis seed.
    pub traj_seed: u64,
    /// Generation sample seed: the response is bitwise-reproducible
    /// given the same model, trajectory specification, and this seed.
    pub sample_seed: u64,
}

/// Body of a successful `POST /generate` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GenerateResponse {
    /// The model that served the request.
    pub model: String,
    /// The generated multi-KPI series, physical units.
    pub series: GeneratedSeries,
}

/// Body of `GET /models` and of a successful `POST /reload` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelsResponse {
    /// Registry model names, sorted.
    pub models: Vec<String>,
}

/// One advertised model in an `InfoResponse`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Registry model name.
    pub name: String,
    /// Checkpoint content version (FNV-1a of the checkpoint bytes, `0`
    /// for in-memory entries).
    pub version: u64,
    /// KPI channel count.
    pub n_ch: usize,
}

/// Body of `GET /v1/info`: what a worker advertises to the fleet router
/// — loaded models with checkpoint versions, live queue depth, batching
/// capacity, and drain state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InfoResponse {
    /// Loaded models, sorted by name.
    pub models: Vec<ModelInfo>,
    /// Jobs currently queued in the scheduler.
    pub queue_depth: u64,
    /// Scheduler micro-batch capacity.
    pub max_batch: usize,
    /// Whether the worker is draining (will refuse new work).
    pub draining: bool,
}

/// Body of any legacy (unversioned) error response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Human-readable description of what went wrong.
    pub error: String,
}

/// Body of any `/v1/*` error response: the typed envelope of the
/// workspace error taxonomy (DESIGN.md §10).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ErrorEnvelope {
    /// Stable machine-readable error code (`invalid_request`,
    /// `overloaded`, `timeout`, ...).
    pub code: String,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Whether retrying the identical request may succeed.
    pub retryable: bool,
}

impl ErrorEnvelope {
    /// Envelope for a taxonomy error.
    pub fn from_error(err: &GendtError) -> ErrorEnvelope {
        ErrorEnvelope {
            code: err.code().to_string(),
            message: err.context().to_string(),
            retryable: err.retryable(),
        }
    }
}

/// Serialize an optional field, omitting it entirely when `None` (the
/// vendored serde derive has no attribute support, so the stream types
/// hand-roll their impls).
fn put_opt<T: Serialize>(m: &mut Vec<(String, serde::Value)>, key: &str, v: &Option<T>) {
    if let Some(v) = v {
        m.push((key.to_string(), v.to_value()));
    }
}

/// Deserialize an optional field: absent or `null` is `None`.
fn get_opt<T: serde::Deserialize>(
    m: &[(String, serde::Value)],
    key: &str,
) -> Result<Option<T>, serde::Error> {
    match m.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, serde::Value::Null)) => Ok(None),
        Some((_, v)) => Ok(Some(T::from_value(v)?)),
    }
}

/// Body of `POST /v1/stream`: either opens a generation session (the
/// [`GenerateRequest`] fields, `session` absent) or continues one
/// (`session` set, spec fields ignored). Both forms stream NDJSON
/// [`StreamChunk`] lines followed by one [`StreamTrailer`] line over
/// chunked transfer encoding.
#[derive(Clone, Debug, Default)]
pub struct StreamRequest {
    /// Session id to continue; absent to open a new session.
    pub session: Option<String>,
    /// Registry name of the model (open only).
    pub model: Option<String>,
    /// Trajectory scenario (open only).
    pub scenario: Option<String>,
    /// Trajectory duration in seconds (open only).
    pub duration_s: Option<f64>,
    /// Trajectory start, meters east of the world origin (open only).
    pub start_x: Option<f64>,
    /// Trajectory start, meters north of the world origin (open only).
    pub start_y: Option<f64>,
    /// Trajectory synthesis seed (open only; defaults to 0).
    pub traj_seed: Option<u64>,
    /// Generation sample seed (open only; defaults to 0). The
    /// concatenation of every chunk the session ever streams is
    /// bitwise-identical to the one-shot `/v1/generate` series for
    /// the same spec and seed.
    pub sample_seed: Option<u64>,
    /// Windows per streamed chunk (0 or absent → server default).
    pub chunk_windows: Option<usize>,
    /// Most windows to stream in this response; 0 or absent runs to
    /// the end of the series. The session persists between responses
    /// until complete, expired, or evicted.
    pub max_windows: Option<usize>,
}

impl Serialize for StreamRequest {
    fn to_value(&self) -> serde::Value {
        let mut m = Vec::new();
        put_opt(&mut m, "session", &self.session);
        put_opt(&mut m, "model", &self.model);
        put_opt(&mut m, "scenario", &self.scenario);
        put_opt(&mut m, "duration_s", &self.duration_s);
        put_opt(&mut m, "start_x", &self.start_x);
        put_opt(&mut m, "start_y", &self.start_y);
        put_opt(&mut m, "traj_seed", &self.traj_seed);
        put_opt(&mut m, "sample_seed", &self.sample_seed);
        put_opt(&mut m, "chunk_windows", &self.chunk_windows);
        put_opt(&mut m, "max_windows", &self.max_windows);
        serde::Value::Map(m)
    }
}

impl Deserialize for StreamRequest {
    fn from_value(v: &serde::Value) -> Result<StreamRequest, serde::Error> {
        let serde::Value::Map(m) = v else {
            return Err(serde::Error::expected("object", "StreamRequest"));
        };
        Ok(StreamRequest {
            session: get_opt(m, "session")?,
            model: get_opt(m, "model")?,
            scenario: get_opt(m, "scenario")?,
            duration_s: get_opt(m, "duration_s")?,
            start_x: get_opt(m, "start_x")?,
            start_y: get_opt(m, "start_y")?,
            traj_seed: get_opt(m, "traj_seed")?,
            sample_seed: get_opt(m, "sample_seed")?,
            chunk_windows: get_opt(m, "chunk_windows")?,
            max_windows: get_opt(m, "max_windows")?,
        })
    }
}

impl StreamRequest {
    /// The generation spec of an *open* request, or a taxonomy error
    /// naming the missing field.
    pub fn open_spec(&self) -> Result<GenerateRequest, GendtError> {
        let missing = |f: &str| GendtError::invalid(format!("stream open: missing field {f:?}"));
        Ok(GenerateRequest {
            model: self.model.clone().ok_or_else(|| missing("model"))?,
            scenario: self.scenario.clone().ok_or_else(|| missing("scenario"))?,
            duration_s: self.duration_s.ok_or_else(|| missing("duration_s"))?,
            start_x: self.start_x.ok_or_else(|| missing("start_x"))?,
            start_y: self.start_y.ok_or_else(|| missing("start_y"))?,
            traj_seed: self.traj_seed.unwrap_or(0),
            sample_seed: self.sample_seed.unwrap_or(0),
        })
    }
}

/// One NDJSON line of a `/v1/stream` response body: a contiguous span
/// of generated windows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamChunk {
    /// Session id (also echoed in the `Gendt-Session-Id` header).
    pub session: String,
    /// Chunk sequence number within the session, from 0.
    pub seq: u64,
    /// Absolute step offset of this chunk in the full series.
    pub start: usize,
    /// Generation windows this chunk covers.
    pub windows: usize,
    /// The generated span, physical units — same element encoding as
    /// the one-shot [`GenerateResponse`] series.
    pub series: GeneratedSeries,
}

/// Why a `/v1/stream` response stopped streaming.
pub mod stream_reason {
    /// The series is complete; the session is closed.
    pub const COMPLETE: &str = "complete";
    /// The response's `max_windows` budget is spent; the session stays
    /// open for continuation.
    pub const PAUSED: &str = "paused";
    /// The server is draining; the session is closed.
    pub const DRAIN: &str = "drain";
    /// The request deadline expired mid-stream; the session stays open.
    pub const DEADLINE: &str = "deadline";
    /// A generation error ended the response; see `error`.
    pub const ERROR: &str = "error";
}

/// Final NDJSON line of every `/v1/stream` response: the typed
/// end-of-stream trailer. Errors after streaming has started surface
/// here (the 200 status is already on the wire).
#[derive(Clone, Debug)]
pub struct StreamTrailer {
    /// Session id.
    pub session: String,
    /// True when the series is complete and the session closed.
    pub done: bool,
    /// One of the [`stream_reason`] constants.
    pub reason: String,
    /// Resume position: the next window a continuation would generate.
    pub next_window: usize,
    /// Total generation windows in the session's series.
    pub total_windows: usize,
    /// The error that ended the response, when `reason` is `"error"`.
    pub error: Option<ErrorEnvelope>,
}

impl Serialize for StreamTrailer {
    fn to_value(&self) -> serde::Value {
        let mut m = vec![
            ("session".to_string(), self.session.to_value()),
            ("done".to_string(), self.done.to_value()),
            ("reason".to_string(), self.reason.to_value()),
            ("next_window".to_string(), self.next_window.to_value()),
            ("total_windows".to_string(), self.total_windows.to_value()),
        ];
        put_opt(&mut m, "error", &self.error);
        serde::Value::Map(m)
    }
}

impl Deserialize for StreamTrailer {
    fn from_value(v: &serde::Value) -> Result<StreamTrailer, serde::Error> {
        let serde::Value::Map(m) = v else {
            return Err(serde::Error::expected("object", "StreamTrailer"));
        };
        let req = |key| serde::map_field(m, key, "StreamTrailer");
        Ok(StreamTrailer {
            session: Deserialize::from_value(req("session")?)?,
            done: Deserialize::from_value(req("done")?)?,
            reason: Deserialize::from_value(req("reason")?)?,
            next_window: Deserialize::from_value(req("next_window")?)?,
            total_windows: Deserialize::from_value(req("total_windows")?)?,
            error: get_opt(m, "error")?,
        })
    }
}

/// Parse the wire scenario name.
pub fn parse_scenario(s: &str) -> Option<Scenario> {
    match s {
        "walk" => Some(Scenario::Walk),
        "bus" => Some(Scenario::Bus),
        "tram" => Some(Scenario::Tram),
        "city_drive" => Some(Scenario::CityDrive),
        "highway" => Some(Scenario::Highway),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_json_roundtrip() {
        let req = GenerateRequest {
            model: "paper_a".to_string(),
            scenario: "walk".to_string(),
            duration_s: 120.0,
            start_x: 10.5,
            start_y: -3.25,
            traj_seed: 7,
            sample_seed: 99,
        };
        let json = serde_json::to_string(&req).expect("serialize");
        let back: GenerateRequest = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.model, req.model);
        assert_eq!(back.sample_seed, req.sample_seed);
        assert_eq!(back.start_y, req.start_y);
    }

    #[test]
    fn error_envelope_mirrors_the_taxonomy() {
        let err = GendtError::overloaded("generation queue is full");
        let env = ErrorEnvelope::from_error(&err);
        assert_eq!(env.code, "overloaded");
        assert!(env.retryable);
        let json = serde_json::to_string(&env).expect("serialize");
        let back: ErrorEnvelope = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.code, env.code);
        assert_eq!(back.retryable, env.retryable);
        assert_eq!(back.message, "generation queue is full");
    }

    /// Moving `/v1/models` and `/v1/info` onto the shared typed
    /// encoder must not change a single byte on the wire: pin the
    /// [`encode`] output against the exact `serde_json::to_string`
    /// construction the handlers previously open-coded.
    #[test]
    fn encode_is_byte_identical_to_the_ad_hoc_bodies() {
        let models = ModelsResponse {
            models: vec!["demo_a".to_string(), "demo_b".to_string()],
        };
        let ad_hoc = serde_json::to_string(&models).unwrap_or_else(|_| "{}".to_string());
        assert_eq!(encode(&models), ad_hoc);

        let info = InfoResponse {
            models: vec![ModelInfo {
                name: "demo_a".to_string(),
                version: 0xFEED,
                n_ch: 4,
            }],
            queue_depth: 3,
            max_batch: 8,
            draining: false,
        };
        let ad_hoc = serde_json::to_string(&info).unwrap_or_else(|_| "{}".to_string());
        assert_eq!(encode(&info), ad_hoc);

        let err = ErrorEnvelope::from_error(&GendtError::timeout("deadline expired"));
        let ad_hoc = serde_json::to_string(&err).unwrap_or_else(|_| "{}".to_string());
        assert_eq!(encode(&err), ad_hoc);
    }

    #[test]
    fn stream_request_forms_parse() {
        // Open form: the generate spec plus chunking knobs.
        let open: StreamRequest = serde_json::from_str(
            "{\"model\":\"demo_a\",\"scenario\":\"walk\",\"duration_s\":60.0,\
             \"start_x\":0.0,\"start_y\":0.0,\"chunk_windows\":2}",
        )
        .expect("open form parses");
        assert!(open.session.is_none());
        let spec = open.open_spec().expect("spec complete");
        assert_eq!(spec.model, "demo_a");
        assert_eq!(spec.sample_seed, 0, "sample_seed defaults to 0");
        assert_eq!(open.chunk_windows, Some(2));

        // Continuation form: just the session id (+ optional budget).
        let cont: StreamRequest =
            serde_json::from_str("{\"session\":\"s-1\",\"max_windows\":4}").expect("continuation");
        assert_eq!(cont.session.as_deref(), Some("s-1"));
        assert_eq!(cont.max_windows, Some(4));
        assert!(
            cont.open_spec().is_err(),
            "continuation body is not an open spec"
        );
    }

    #[test]
    fn stream_trailer_roundtrip() {
        let t = StreamTrailer {
            session: "s-1".to_string(),
            done: false,
            reason: stream_reason::DEADLINE.to_string(),
            next_window: 3,
            total_windows: 9,
            error: None,
        };
        let json = encode(&t);
        assert!(!json.contains("\"error\""), "absent error is omitted");
        let back: StreamTrailer = serde_json::from_str(&json).expect("trailer roundtrip");
        assert_eq!(back.reason, "deadline");
        assert_eq!(back.next_window, 3);
    }

    #[test]
    fn scenario_names_cover_all_variants() {
        for name in ["walk", "bus", "tram", "city_drive", "highway"] {
            assert!(parse_scenario(name).is_some(), "unknown scenario {name}");
        }
        assert!(parse_scenario("teleport").is_none());
    }
}
