//! Wire types for the HTTP API.
//!
//! Requests describe a trajectory *specification* (scenario, duration,
//! start point, seed) rather than shipping raw coordinates: the server
//! owns the world model, so a short JSON body fully determines the
//! context — and, with the explicit `sample_seed`, the entire response.

use gendt::GeneratedSeries;
use gendt_faults::GendtError;
use gendt_geo::trajectory::Scenario;
use serde::{Deserialize, Serialize};

/// Body of `POST /generate`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GenerateRequest {
    /// Registry name of the model to generate with.
    pub model: String,
    /// Trajectory scenario: `walk`, `bus`, `tram`, `city_drive`, or
    /// `highway`.
    pub scenario: String,
    /// Trajectory duration in seconds.
    pub duration_s: f64,
    /// Trajectory start, meters east of the world origin.
    pub start_x: f64,
    /// Trajectory start, meters north of the world origin.
    pub start_y: f64,
    /// Trajectory synthesis seed.
    pub traj_seed: u64,
    /// Generation sample seed: the response is bitwise-reproducible
    /// given the same model, trajectory specification, and this seed.
    pub sample_seed: u64,
}

/// Body of a successful `POST /generate` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GenerateResponse {
    /// The model that served the request.
    pub model: String,
    /// The generated multi-KPI series, physical units.
    pub series: GeneratedSeries,
}

/// Body of `GET /models` and of a successful `POST /reload` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelsResponse {
    /// Registry model names, sorted.
    pub models: Vec<String>,
}

/// One advertised model in an `InfoResponse`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Registry model name.
    pub name: String,
    /// Checkpoint content version (FNV-1a of the checkpoint bytes, `0`
    /// for in-memory entries).
    pub version: u64,
    /// KPI channel count.
    pub n_ch: usize,
}

/// Body of `GET /v1/info`: what a worker advertises to the fleet router
/// — loaded models with checkpoint versions, live queue depth, batching
/// capacity, and drain state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InfoResponse {
    /// Loaded models, sorted by name.
    pub models: Vec<ModelInfo>,
    /// Jobs currently queued in the scheduler.
    pub queue_depth: u64,
    /// Scheduler micro-batch capacity.
    pub max_batch: usize,
    /// Whether the worker is draining (will refuse new work).
    pub draining: bool,
}

/// Body of any legacy (unversioned) error response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Human-readable description of what went wrong.
    pub error: String,
}

/// Body of any `/v1/*` error response: the typed envelope of the
/// workspace error taxonomy (DESIGN.md §10).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ErrorEnvelope {
    /// Stable machine-readable error code (`invalid_request`,
    /// `overloaded`, `timeout`, ...).
    pub code: String,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Whether retrying the identical request may succeed.
    pub retryable: bool,
}

impl ErrorEnvelope {
    /// Envelope for a taxonomy error.
    pub fn from_error(err: &GendtError) -> ErrorEnvelope {
        ErrorEnvelope {
            code: err.code().to_string(),
            message: err.context().to_string(),
            retryable: err.retryable(),
        }
    }
}

/// Parse the wire scenario name.
pub fn parse_scenario(s: &str) -> Option<Scenario> {
    match s {
        "walk" => Some(Scenario::Walk),
        "bus" => Some(Scenario::Bus),
        "tram" => Some(Scenario::Tram),
        "city_drive" => Some(Scenario::CityDrive),
        "highway" => Some(Scenario::Highway),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_json_roundtrip() {
        let req = GenerateRequest {
            model: "paper_a".to_string(),
            scenario: "walk".to_string(),
            duration_s: 120.0,
            start_x: 10.5,
            start_y: -3.25,
            traj_seed: 7,
            sample_seed: 99,
        };
        let json = serde_json::to_string(&req).expect("serialize");
        let back: GenerateRequest = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.model, req.model);
        assert_eq!(back.sample_seed, req.sample_seed);
        assert_eq!(back.start_y, req.start_y);
    }

    #[test]
    fn error_envelope_mirrors_the_taxonomy() {
        let err = GendtError::overloaded("generation queue is full");
        let env = ErrorEnvelope::from_error(&err);
        assert_eq!(env.code, "overloaded");
        assert!(env.retryable);
        let json = serde_json::to_string(&env).expect("serialize");
        let back: ErrorEnvelope = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.code, env.code);
        assert_eq!(back.retryable, env.retryable);
        assert_eq!(back.message, "generation queue is full");
    }

    #[test]
    fn scenario_names_cover_all_variants() {
        for name in ["walk", "bus", "tram", "city_drive", "highway"] {
            assert!(parse_scenario(name).is_some(), "unknown scenario {name}");
        }
        assert!(parse_scenario("teleport").is_none());
    }
}
