//! `/v1/stream` end to end: stateful sessions over chunked transfer
//! encoding. Pins the parity contract (concatenated chunks bitwise
//! equal to the one-shot series), pause/continue semantics, session
//! errors, and the legacy surface's sunset.

use gendt_serve::api::{
    stream_reason, ErrorEnvelope, GenerateRequest, GenerateResponse, StreamChunk, StreamTrailer,
    SESSION_HEADER,
};
use gendt_serve::http::{http_request_full, HttpResponse};
use gendt_serve::{serve, ServerCfg, ServerCfgBuilder, ServerHandle};
use std::path::PathBuf;
use std::sync::OnceLock;

fn demo_ckpt_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = std::env::temp_dir().join("gendt-stream-test-demo.json");
        gendt_serve::demo::write_demo_model(&path, 1).expect("train demo model");
        std::fs::read(&path).expect("read demo checkpoint")
    })
}

fn fresh_model_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gendt-stream-test-{test}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create model dir");
    std::fs::write(dir.join("demo.json"), demo_ckpt_bytes()).expect("write checkpoint");
    dir
}

fn start_server(
    test: &str,
    tweak: impl Fn(ServerCfgBuilder) -> ServerCfgBuilder,
) -> (ServerHandle, String) {
    let cfg = tweak(ServerCfg::builder(fresh_model_dir(test)).workers(1))
        .build()
        .expect("valid server config");
    let handle = serve(cfg).expect("server starts");
    let addr = handle.addr.to_string();
    (handle, addr)
}

fn one_shot(addr: &str, sample_seed: u64) -> GenerateResponse {
    let body = serde_json::to_string(&GenerateRequest {
        model: "demo".to_string(),
        scenario: "walk".to_string(),
        duration_s: 30.0,
        start_x: 0.0,
        start_y: 0.0,
        traj_seed: 3,
        sample_seed,
    })
    .expect("encode request");
    let resp = http_request_full(addr, "POST", "/v1/generate", &[], Some(&body)).expect("one-shot");
    assert_eq!(resp.status, 200, "one-shot failed: {}", resp.body);
    serde_json::from_str(&resp.body).expect("decode one-shot")
}

/// Split an NDJSON stream body into its chunk lines and final trailer.
fn parse_stream(resp: &HttpResponse) -> (Vec<StreamChunk>, StreamTrailer) {
    assert_eq!(resp.status, 200, "stream failed: {}", resp.body);
    assert_eq!(
        resp.header("transfer-encoding"),
        Some("chunked"),
        "stream responses must use chunked transfer encoding"
    );
    let lines: Vec<&str> = resp.body.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "empty stream body");
    let trailer: StreamTrailer =
        serde_json::from_str(lines[lines.len() - 1]).expect("last line is the trailer");
    let chunks = lines[..lines.len() - 1]
        .iter()
        .map(|l| serde_json::from_str::<StreamChunk>(l).expect("chunk line"))
        .collect();
    (chunks, trailer)
}

fn concat_into(acc: &mut Vec<Vec<f64>>, chunks: &[StreamChunk]) {
    for c in chunks {
        if acc.is_empty() {
            acc.resize(c.series.series.len(), Vec::new());
        }
        for (dst, src) in acc.iter_mut().zip(c.series.series.iter()) {
            dst.extend_from_slice(src);
        }
    }
}

#[test]
fn streamed_chunks_concatenate_to_one_shot_bitwise() {
    let (handle, addr) = start_server("parity", |b| b);
    let reference = one_shot(&addr, 11);

    let open = "{\"model\":\"demo\",\"scenario\":\"walk\",\"duration_s\":30.0,\
                \"start_x\":0.0,\"start_y\":0.0,\"traj_seed\":3,\"sample_seed\":11,\
                \"chunk_windows\":1}";
    let resp = http_request_full(&addr, "POST", "/v1/stream", &[], Some(open)).expect("stream");
    let sid = resp
        .header(SESSION_HEADER)
        .expect("stream responses carry the session id header")
        .to_string();
    let (chunks, trailer) = parse_stream(&resp);

    assert!(trailer.done, "unbudgeted stream must run to completion");
    assert_eq!(trailer.reason, stream_reason::COMPLETE);
    assert_eq!(trailer.session, sid);
    assert_eq!(trailer.next_window, trailer.total_windows);
    assert!(
        chunks.len() >= 2,
        "chunk_windows=1 must yield several chunks"
    );
    for (i, c) in chunks.iter().enumerate() {
        assert_eq!(c.seq, i as u64, "chunk seq must be dense from 0");
        assert_eq!(c.session, sid);
        assert_eq!(c.windows, 1);
    }
    // Chunks start at increasing absolute step offsets.
    let step = chunks[1].start - chunks[0].start;
    assert!(step > 0);
    for (i, c) in chunks.iter().enumerate() {
        assert_eq!(c.start, i * step);
    }

    let mut cat: Vec<Vec<f64>> = Vec::new();
    concat_into(&mut cat, &chunks);
    assert_eq!(
        cat, reference.series.series,
        "streamed concat must be bitwise-identical to the one-shot series"
    );

    // The completed session is gone: continuing it is a typed 404.
    let cont = format!("{{\"session\":{sid:?}}}");
    let resp =
        http_request_full(&addr, "POST", "/v1/stream", &[], Some(&cont)).expect("continuation");
    assert_eq!(resp.status, 404, "{}", resp.body);
    let env: ErrorEnvelope = serde_json::from_str(&resp.body).expect("typed envelope");
    assert_eq!(env.code, "not_found");

    assert!(
        handle
            .metrics()
            .stream_chunks
            .load(std::sync::atomic::Ordering::Relaxed)
            >= chunks.len() as u64
    );
    handle.shutdown();
}

#[test]
fn budgeted_stream_pauses_then_continuation_completes() {
    let (handle, addr) = start_server("resume", |b| b.chunk_windows(1));
    let reference = one_shot(&addr, 21);

    let open = "{\"model\":\"demo\",\"scenario\":\"walk\",\"duration_s\":30.0,\
                \"start_x\":0.0,\"start_y\":0.0,\"traj_seed\":3,\"sample_seed\":21,\
                \"max_windows\":2}";
    let resp = http_request_full(&addr, "POST", "/v1/stream", &[], Some(open)).expect("open");
    let sid = resp.header(SESSION_HEADER).expect("session id").to_string();
    let (first, trailer) = parse_stream(&resp);
    assert!(!trailer.done);
    assert_eq!(trailer.reason, stream_reason::PAUSED);
    assert_eq!(trailer.next_window, 2, "budget of 2 windows spent");
    let mut cat: Vec<Vec<f64>> = Vec::new();
    concat_into(&mut cat, &first);

    // Continue to the end over a second connection.
    let cont = format!("{{\"session\":{sid:?}}}");
    let resp =
        http_request_full(&addr, "POST", "/v1/stream", &[], Some(&cont)).expect("continuation");
    assert_eq!(
        resp.header(SESSION_HEADER),
        Some(sid.as_str()),
        "continuation echoes the session id"
    );
    let (rest, trailer) = parse_stream(&resp);
    assert!(trailer.done, "unbudgeted continuation runs to completion");
    assert_eq!(trailer.reason, stream_reason::COMPLETE);
    assert_eq!(
        rest[0].seq,
        first.len() as u64,
        "seq continues across responses"
    );
    concat_into(&mut cat, &rest);

    assert_eq!(
        cat, reference.series.series,
        "open + continuation concat must equal the one-shot series"
    );
    handle.shutdown();
}

#[test]
fn stream_open_validates_like_generate() {
    let (handle, addr) = start_server("validate", |b| b);

    // Missing spec fields → invalid_request naming the field.
    let resp = http_request_full(
        &addr,
        "POST",
        "/v1/stream",
        &[],
        Some("{\"model\":\"demo\"}"),
    )
    .expect("bad open");
    assert_eq!(resp.status, 400, "{}", resp.body);
    let env: ErrorEnvelope = serde_json::from_str(&resp.body).expect("typed envelope");
    assert_eq!(env.code, "invalid_request");
    assert!(env.message.contains("scenario"), "{}", env.message);

    // Unknown model → 404, same as /v1/generate.
    let open = "{\"model\":\"nope\",\"scenario\":\"walk\",\"duration_s\":30.0,\
                \"start_x\":0.0,\"start_y\":0.0}";
    let resp = http_request_full(&addr, "POST", "/v1/stream", &[], Some(open)).expect("open");
    assert_eq!(resp.status, 404, "{}", resp.body);

    // The stream route does not exist on the legacy surface.
    let resp = http_request_full(&addr, "POST", "/stream", &[], Some(open)).expect("legacy");
    assert_eq!(resp.status, 404, "{}", resp.body);

    handle.shutdown();
}

#[test]
fn legacy_surface_carries_sunset_and_v1_only_removes_it() {
    let (handle, addr) = start_server("sunset", |b| b);

    let legacy = http_request_full(&addr, "GET", "/models", &[], None).expect("legacy models");
    assert_eq!(legacy.status, 200);
    assert_eq!(legacy.header("deprecation"), Some("true"));
    assert!(
        legacy.header("sunset").is_some(),
        "legacy routes must announce their sunset date"
    );
    let v1 = http_request_full(&addr, "GET", "/v1/models", &[], None).expect("v1 models");
    assert_eq!(v1.header("sunset"), None, "v1 never sunsets");
    assert_eq!(
        handle
            .metrics()
            .legacy_requests
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "exactly the one legacy request is counted"
    );
    handle.shutdown();

    // With the removal flag on, the legacy surface answers 410 Gone and
    // v1 is unaffected.
    let (handle, addr) = start_server("v1only", |b| b.v1_only(true));
    let legacy = http_request_full(&addr, "GET", "/models", &[], None).expect("legacy models");
    assert_eq!(legacy.status, 410, "{}", legacy.body);
    assert!(legacy.body.contains("/v1/models"), "{}", legacy.body);
    assert!(legacy.header("sunset").is_some());
    let v1 = http_request_full(&addr, "GET", "/v1/models", &[], None).expect("v1 models");
    assert_eq!(v1.status, 200);
    // Operational endpoints stay up for supervisors either way.
    let health = http_request_full(&addr, "GET", "/healthz", &[], None).expect("healthz");
    assert_eq!(health.status, 200);
    handle.shutdown();
}
