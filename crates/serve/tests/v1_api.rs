//! The versioned `/v1/*` API surface: typed error envelopes, deprecated
//! legacy aliases, `Retry-After` headers, per-request deadlines, and
//! graceful drain. Pins both surfaces so neither can silently regress.

use gendt_serve::api::{ErrorEnvelope, GenerateRequest, GenerateResponse, ModelsResponse};
use gendt_serve::http::{http_request, http_request_full};
use gendt_serve::{serve, ServerCfg, ServerHandle};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Demo checkpoints are expensive to train in debug builds; train once
/// per test binary and copy the bytes into per-test dirs.
fn demo_ckpt_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = std::env::temp_dir().join("gendt-v1-test-demo.json");
        gendt_serve::demo::write_demo_model(&path, 1).expect("train demo model");
        std::fs::read(&path).expect("read demo checkpoint")
    })
}

fn fresh_model_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gendt-v1-test-{test}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create model dir");
    std::fs::write(dir.join("demo.json"), demo_ckpt_bytes()).expect("write checkpoint");
    dir
}

fn start_server(test: &str) -> (ServerHandle, String) {
    let dir = fresh_model_dir(test);
    let cfg = ServerCfg::builder(dir)
        .workers(1)
        .build()
        .expect("valid server config");
    let handle = serve(cfg).expect("server starts");
    let addr = handle.addr.to_string();
    (handle, addr)
}

fn request_json(model: &str, sample_seed: u64) -> String {
    serde_json::to_string(&GenerateRequest {
        model: model.to_string(),
        scenario: "walk".to_string(),
        duration_s: 30.0,
        start_x: 0.0,
        start_y: 0.0,
        traj_seed: 3,
        sample_seed,
    })
    .expect("encode request")
}

#[test]
fn v1_routes_answer_and_legacy_aliases_are_deprecated() {
    let (handle, addr) = start_server("v1-routes");

    // Same request on both surfaces: bitwise-identical bodies.
    let body = request_json("demo", 11);
    let v1 =
        http_request_full(&addr, "POST", "/v1/generate", &[], Some(&body)).expect("v1 generate");
    assert_eq!(v1.status, 200, "v1 generate failed: {}", v1.body);
    assert_eq!(v1.header("deprecation"), None, "v1 must not be deprecated");
    let legacy =
        http_request_full(&addr, "POST", "/generate", &[], Some(&body)).expect("legacy generate");
    assert_eq!(
        legacy.status, 200,
        "legacy generate failed: {}",
        legacy.body
    );
    assert_eq!(
        legacy.header("deprecation"),
        Some("true"),
        "legacy routes must carry Deprecation: true"
    );
    assert_eq!(
        v1.body, legacy.body,
        "surfaces must serve identical results"
    );
    let parsed: GenerateResponse = serde_json::from_str(&v1.body).expect("decode response");
    assert_eq!(parsed.model, "demo");

    // The read-only routes answer on both surfaces too.
    for path in ["/v1/models", "/models"] {
        let (status, body) = http_request(&addr, "GET", path, None).expect(path);
        assert_eq!(status, 200, "{path} failed: {body}");
        let models: ModelsResponse = serde_json::from_str(&body).expect("models body");
        assert_eq!(models.models, vec!["demo".to_string()]);
    }
    for path in ["/v1/healthz", "/healthz"] {
        let (status, body) = http_request(&addr, "GET", path, None).expect(path);
        assert_eq!((status, body.as_str()), (200, "ok\n"), "{path}");
    }
    for path in ["/v1/metrics", "/metrics"] {
        let (status, body) = http_request(&addr, "GET", path, None).expect(path);
        assert_eq!(status, 200);
        assert!(body.contains("gendt_serve_http_requests_total"), "{path}");
    }
    for path in ["/v1/reload", "/reload"] {
        let (status, _) = http_request(&addr, "POST", path, None).expect(path);
        assert_eq!(status, 200, "{path}");
    }
    for path in ["/v1/debug/trace", "/debug/trace"] {
        let (status, body) = http_request(&addr, "GET", path, None).expect(path);
        assert_eq!(status, 200);
        assert!(body.contains("\"spans\""), "{path}: {body}");
    }

    handle.shutdown();
}

#[test]
fn v1_errors_are_typed_envelopes_and_legacy_errors_stay_flat() {
    let (handle, addr) = start_server("v1-errors");

    // Unknown model → 404 not_found, not retryable.
    let body = request_json("nope", 1);
    let v1 =
        http_request_full(&addr, "POST", "/v1/generate", &[], Some(&body)).expect("v1 generate");
    assert_eq!(v1.status, 404);
    let env: ErrorEnvelope = serde_json::from_str(&v1.body).expect("typed envelope");
    assert_eq!(env.code, "not_found");
    assert!(!env.retryable);
    assert!(env.message.contains("nope"), "{}", env.message);

    // Same failure on the legacy surface keeps the flat shape.
    let legacy =
        http_request_full(&addr, "POST", "/generate", &[], Some(&body)).expect("legacy generate");
    assert_eq!(legacy.status, 404);
    assert!(
        legacy.body.contains("\"error\""),
        "legacy error shape changed: {}",
        legacy.body
    );
    assert!(
        !legacy.body.contains("\"code\""),
        "legacy must not grow the envelope: {}",
        legacy.body
    );

    // Bad body → invalid_request; unknown route → not_found envelope.
    let v1 =
        http_request_full(&addr, "POST", "/v1/generate", &[], Some("not json")).expect("bad body");
    assert_eq!(v1.status, 400);
    let env: ErrorEnvelope = serde_json::from_str(&v1.body).expect("typed envelope");
    assert_eq!(env.code, "invalid_request");
    let v1 = http_request_full(&addr, "GET", "/v1/no-such-route", &[], None).expect("404");
    assert_eq!(v1.status, 404);

    handle.shutdown();
}

#[test]
fn expired_deadline_times_out_with_retryable_envelope() {
    let (handle, addr) = start_server("v1-deadline");

    // 1 ms deadline: with GenDT generation taking tens of milliseconds
    // the job is still queued (or the batch not yet run) when it
    // expires, so the scheduler answers Timeout → 504.
    let body = request_json("demo", 5);
    let resp = http_request_full(
        &addr,
        "POST",
        "/v1/generate",
        &[("Deadline-Ms", "1")],
        Some(&body),
    )
    .expect("deadline request");
    assert_eq!(resp.status, 504, "expected timeout, got: {}", resp.body);
    let env: ErrorEnvelope = serde_json::from_str(&resp.body).expect("typed envelope");
    assert_eq!(env.code, "timeout");
    assert!(env.retryable, "timeouts are retryable");

    // A malformed deadline header is an invalid_request, not a 500.
    let resp = http_request_full(
        &addr,
        "POST",
        "/v1/generate",
        &[("Deadline-Ms", "soon")],
        Some(&body),
    )
    .expect("bad deadline header");
    assert_eq!(resp.status, 400);
    let env: ErrorEnvelope = serde_json::from_str(&resp.body).expect("typed envelope");
    assert_eq!(env.code, "invalid_request");

    // A generous deadline still succeeds.
    let resp = http_request_full(
        &addr,
        "POST",
        "/v1/generate",
        &[("Deadline-Ms", "60000")],
        Some(&body),
    )
    .expect("generous deadline");
    assert_eq!(resp.status, 200, "{}", resp.body);

    let expired = handle
        .metrics()
        .deadline_expired
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(expired >= 1, "deadline_expired metric never moved");
    handle.shutdown();
}

#[test]
fn draining_server_sheds_with_retry_after_and_unhealthy_healthz() {
    let (handle, addr) = start_server("v1-drain");

    // Begin the drain over HTTP, as a supervisor would.
    let (status, body) = http_request(&addr, "POST", "/v1/shutdown", None).expect("shutdown");
    assert_eq!((status, body.as_str()), (200, "draining\n"));

    // In-flight window: the acceptor may briefly keep answering; any
    // generate submitted now must be shed 503 + Retry-After with the
    // `unavailable` code, and healthz must report draining. The accept
    // loop closes for good shortly after, so tolerate refused connects.
    let body = request_json("demo", 9);
    if let Ok(resp) = http_request_full(&addr, "POST", "/v1/generate", &[], Some(&body)) {
        assert_eq!(resp.status, 503, "draining server must shed: {}", resp.body);
        assert_eq!(resp.header("retry-after"), Some("1"));
        let env: ErrorEnvelope = serde_json::from_str(&resp.body).expect("typed envelope");
        assert_eq!(env.code, "unavailable");
        assert!(env.retryable);
    }
    if let Ok(resp) = http_request_full(&addr, "GET", "/v1/healthz", &[], None) {
        assert_eq!(resp.status, 503);
        assert_eq!(resp.body, "draining\n");
        assert_eq!(resp.header("retry-after"), Some("1"));
    }

    // Graceful exit: join() returns once workers flushed and in-flight
    // connections finished.
    handle.join();
}

#[test]
fn server_config_builder_rejects_degenerate_values() {
    let dir = fresh_model_dir("v1-cfg");
    for bad in [
        ServerCfg::builder(dir.clone()).addr("localhost").build(),
        ServerCfg::builder(dir.clone())
            .addr("host:notaport")
            .build(),
        ServerCfg::builder(dir.clone()).workers(0).build(),
        ServerCfg::builder(dir.clone()).queue_cap(0).build(),
        ServerCfg::builder(dir.clone()).max_batch(0).build(),
        ServerCfg::builder(dir.clone()).cache_cap(0).build(),
        ServerCfg::builder(dir.clone())
            .default_deadline_ms(-5)
            .build(),
    ] {
        let err = bad.expect_err("degenerate server config must be rejected");
        assert_eq!(err.kind(), gendt_faults::ErrorKind::Config);
        assert!(err.context().contains("ServerCfg"), "{err}");
    }
    let cfg = ServerCfg::builder(dir)
        .addr("127.0.0.1:0")
        .workers(2)
        .default_deadline_ms(5_000)
        .build()
        .expect("valid config");
    assert_eq!(cfg.default_deadline_ms, 5_000);
}
