//! End-to-end tests of the serving path: a real server on port 0, real
//! TCP clients, and bitwise comparison against direct `generate_series`.

use gendt::checkpoint::load_model_from_file;
use gendt::generate_series;
use gendt_data::context::{extract, ContextCfg, RunContext};
use gendt_data::kpi_types::Kpi;
use gendt_geo::{trajectory, World, WorldCfg, XY};
use gendt_radio::Deployment;
use gendt_serve::api::{GenerateRequest, GenerateResponse};
use gendt_serve::http::http_request;
use gendt_serve::scheduler::SchedCfg;
use gendt_serve::{serve, ServerCfg};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Demo checkpoints are expensive to train in debug builds; train each
/// seed once per test binary and copy the bytes into per-test dirs.
fn demo_ckpt_bytes(seed: u64) -> &'static [u8] {
    static V1: OnceLock<Vec<u8>> = OnceLock::new();
    static V2: OnceLock<Vec<u8>> = OnceLock::new();
    let slot = match seed {
        1 => &V1,
        2 => &V2,
        _ => panic!("only seeds 1 and 2 are pre-trained"),
    };
    slot.get_or_init(|| {
        let path = std::env::temp_dir().join(format!("gendt-serve-test-demo-{seed}.json"));
        gendt_serve::demo::write_demo_model(&path, seed).expect("train demo model");
        std::fs::read(&path).expect("read demo checkpoint")
    })
}

fn fresh_model_dir(test: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gendt-serve-test-{test}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create model dir");
    std::fs::write(dir.join("demo.json"), demo_ckpt_bytes(seed)).expect("write checkpoint");
    dir
}

const WORLD_SEED: u64 = 1;

fn request_json(traj_seed: u64, sample_seed: u64, duration_s: f64) -> String {
    serde_json::to_string(&GenerateRequest {
        model: "demo".to_string(),
        scenario: "walk".to_string(),
        duration_s,
        start_x: 0.0,
        start_y: 0.0,
        traj_seed,
        sample_seed,
    })
    .expect("encode request")
}

/// What the server should produce, computed directly against the same
/// checkpoint, world, and seeds.
fn direct_series(ckpt: &Path, traj_seed: u64, sample_seed: u64, duration_s: f64) -> Vec<Vec<f64>> {
    let mut model = load_model_from_file(ckpt).expect("load checkpoint");
    let world = World::generate(WorldCfg::city(WORLD_SEED));
    let deployment = Deployment::from_world(&world);
    let cfg = trajectory::TrajectoryCfg::new(
        trajectory::Scenario::Walk,
        duration_s,
        XY { x: 0.0, y: 0.0 },
        traj_seed,
    );
    let traj = trajectory::generate(&world, &cfg);
    let ctx: RunContext = extract(
        &world,
        &deployment,
        &traj,
        &ContextCfg {
            max_cells: model.cfg().window.max_cells,
            ..ContextCfg::default()
        },
    );
    generate_series(&mut model, &ctx, &Kpi::DATASET_A, false, sample_seed).series
}

#[test]
fn concurrent_batched_responses_are_bitwise_equal_to_direct() {
    let dir = fresh_model_dir("bitwise", 1);
    let ckpt = dir.join("demo.json");
    let handle = serve(ServerCfg {
        sched: SchedCfg {
            max_batch: 6,
            max_wait_ms: 300,
            queue_cap: 64,
        },
        world_seed: WORLD_SEED,
        ..ServerCfg::new(dir)
    })
    .expect("start server");
    let addr = handle.addr.to_string();

    // Six concurrent requests: distinct sample seeds, two distinct
    // trajectories (so the coalesced batch is heterogeneous).
    let specs: Vec<(u64, u64)> = (0..6u64).map(|i| (i % 2, 100 + i)).collect();
    let responses: Vec<GenerateResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|&(traj_seed, sample_seed)| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let body = request_json(traj_seed, sample_seed, 40.0);
                    let (status, resp) = http_request(&addr, "POST", "/generate", Some(&body))
                        .expect("request failed");
                    assert_eq!(status, 200, "unexpected status: {resp}");
                    serde_json::from_str::<GenerateResponse>(&resp).expect("decode response")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    // Batching must actually have happened: fewer forward passes than
    // requests (the 300ms window is generous next to connect latency).
    let (status, metrics) = http_request(&addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    let batches: f64 = metrics
        .lines()
        .find(|l| l.starts_with("gendt_serve_batches_total "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("batches counter");
    assert!(batches < 6.0, "no coalescing happened ({batches} batches)");

    handle.shutdown();

    for (&(traj_seed, sample_seed), resp) in specs.iter().zip(responses.iter()) {
        let want = direct_series(&ckpt, traj_seed, sample_seed, 40.0);
        assert!(
            !want.is_empty() && !want[0].is_empty(),
            "empty direct series"
        );
        assert_eq!(
            resp.series.series, want,
            "batched response diverges from direct generate_series \
             (traj_seed {traj_seed}, sample_seed {sample_seed})"
        );
    }
}

#[test]
fn debug_trace_endpoint_reports_serve_spans() {
    gendt_trace::set_trace(true);
    let dir = fresh_model_dir("trace", 1);
    let handle = serve(ServerCfg {
        world_seed: WORLD_SEED,
        ..ServerCfg::new(dir)
    })
    .expect("start server");
    let addr = handle.addr.to_string();

    let body = request_json(0, 7, 40.0);
    let (status, resp) =
        http_request(&addr, "POST", "/generate", Some(&body)).expect("request failed");
    assert_eq!(status, 200, "generate failed: {resp}");

    let (status, trace) = http_request(&addr, "GET", "/debug/trace", None).expect("trace failed");
    handle.shutdown();
    assert_eq!(status, 200, "debug endpoint failed: {trace}");
    assert!(trace.contains("\"enabled\":true"), "flag missing: {trace}");
    assert!(
        trace.contains("\"traceEvents\""),
        "not a Chrome-trace payload: {trace}"
    );
    // The worker records its batch span before replying to the handler,
    // so by the time /generate returned it must be visible.
    assert!(
        trace.contains("\"serve_batch\""),
        "serve batch span missing: {trace}"
    );
    assert!(
        trace.contains("\"serve_batch_assemble\""),
        "assembly span missing: {trace}"
    );
}

#[test]
fn full_queue_sheds_load_with_429() {
    let dir = fresh_model_dir("overload", 1);
    let handle = serve(ServerCfg {
        sched: SchedCfg {
            max_batch: 1,
            max_wait_ms: 0,
            queue_cap: 1,
        },
        world_seed: WORLD_SEED,
        ..ServerCfg::new(dir)
    })
    .expect("start server");
    let addr = handle.addr.to_string();

    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12u64)
            .map(|i| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let body = request_json(0, i, 120.0);
                    http_request(&addr, "POST", "/generate", Some(&body))
                        .expect("request failed")
                        .0
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    handle.shutdown();

    assert!(
        statuses.iter().all(|&s| s == 200 || s == 429),
        "unexpected statuses: {statuses:?}"
    );
    assert!(statuses.contains(&200), "nothing succeeded: {statuses:?}");
    assert!(
        statuses.contains(&429),
        "queue never filled — overload not exercised: {statuses:?}"
    );
}

#[test]
fn reload_mid_traffic_never_serves_a_half_swapped_model() {
    let dir = fresh_model_dir("reload", 1);
    // Precompute both model versions' direct outputs for every seed.
    let v1 = std::env::temp_dir().join("gendt-serve-test-reload-v1.json");
    let v2 = std::env::temp_dir().join("gendt-serve-test-reload-v2.json");
    std::fs::write(&v1, demo_ckpt_bytes(1)).expect("write v1");
    std::fs::write(&v2, demo_ckpt_bytes(2)).expect("write v2");
    let seeds: Vec<u64> = (0..10).collect();
    let want_v1: Vec<Vec<Vec<f64>>> = seeds
        .iter()
        .map(|&s| direct_series(&v1, 0, s, 40.0))
        .collect();
    let want_v2: Vec<Vec<Vec<f64>>> = seeds
        .iter()
        .map(|&s| direct_series(&v2, 0, s, 40.0))
        .collect();
    // The two versions must actually differ, or the test proves nothing.
    assert_ne!(want_v1[0], want_v2[0], "v1 and v2 models are identical");

    let handle = serve(ServerCfg {
        world_seed: WORLD_SEED,
        ..ServerCfg::new(dir.clone())
    })
    .expect("start server");
    let addr = handle.addr.to_string();

    let mut got: Vec<Vec<Vec<f64>>> = Vec::new();
    for (i, &s) in seeds.iter().enumerate() {
        if i == 4 {
            // Swap the checkpoint and hot-reload mid-traffic.
            std::fs::write(dir.join("demo.json"), demo_ckpt_bytes(2)).expect("swap checkpoint");
            let (status, body) =
                http_request(&addr, "POST", "/reload", None).expect("reload failed");
            assert_eq!(status, 200, "reload rejected: {body}");
        }
        let body = request_json(0, s, 40.0);
        let (status, resp) =
            http_request(&addr, "POST", "/generate", Some(&body)).expect("request failed");
        assert_eq!(status, 200, "generate failed: {resp}");
        let resp: GenerateResponse = serde_json::from_str(&resp).expect("decode response");
        got.push(resp.series.series);
    }
    handle.shutdown();

    // Every response must be exactly one model version's output — a mix
    // (or anything else) would mean a half-swapped model served.
    let mut swaps = 0;
    let mut last_was_v2 = false;
    for (i, series) in got.iter().enumerate() {
        let is_v1 = *series == want_v1[i];
        let is_v2 = *series == want_v2[i];
        assert!(
            is_v1 ^ is_v2,
            "response {i} matches neither (or both) model versions"
        );
        if is_v2 != last_was_v2 {
            swaps += 1;
            last_was_v2 = is_v2;
        }
    }
    assert!(swaps <= 1, "served versions interleaved: {swaps} swaps");
    assert!(last_was_v2, "reload never took effect");
}
