//! Scoped spans, per-thread ring buffers, and the Chrome-trace exporter.
//!
//! Every recording thread owns a small ring buffer behind its own mutex;
//! the thread-local fast path locks an uncontended mutex, pushes one
//! event, and unlocks — no global lock is ever taken while recording.
//! A collector ([`drain_spans`] / [`snapshot_spans`]) walks the registry
//! of all rings. Rings wrap: when full, the oldest event is evicted and
//! counted, so a long traced run keeps the most recent window of
//! activity instead of growing without bound.

use gendt_sync::Mutex;
use std::sync::{Arc, OnceLock};

/// Events kept per thread before the ring starts evicting the oldest.
const RING_CAP: usize = 16_384;

/// One completed span, ready for export.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Span name (`train_step`, an op kind, ...).
    pub name: &'static str,
    /// Category: `"span"` for scoped spans, `"op"` for tape ops.
    pub cat: &'static str,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Recording thread, as a small registry-assigned index.
    pub tid: u32,
    /// Optional argument rendered into the event's `args` object
    /// (e.g. `("batch", 7)` on a serve batch span).
    pub arg: Option<(&'static str, i64)>,
    /// Distributed trace id stamped from the thread's current
    /// [`trace_scope`], or 0 when the span ran outside any request
    /// context. Rendered into the event's `args` object so a
    /// cross-process assembler can correlate router and worker spans.
    pub trace: u64,
}

thread_local! {
    /// The trace id of the request this thread is currently working on
    /// (0 = none). Set by [`trace_scope`] around request handling and
    /// around batch execution, read by every span constructor.
    static CURRENT_TRACE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The trace id of the request the current thread is working on
/// (0 when outside any [`trace_scope`]).
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(|c| c.get())
}

/// RAII guard restoring the thread's previous trace id on drop.
pub struct TraceScope {
    prev: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

/// Enter a per-request trace context: spans recorded on this thread
/// while the guard lives are stamped with `id`. Unconditional (one
/// thread-local store) so the flight recorder can attribute records
/// even when tracing is off; nesting restores the outer id on drop.
pub fn trace_scope(id: u64) -> TraceScope {
    let prev = CURRENT_TRACE.with(|c| c.replace(id));
    TraceScope { prev }
}

struct Ring {
    events: std::collections::VecDeque<SpanEvent>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: SpanEvent) {
        if self.events.len() >= RING_CAP {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

/// Registry of every thread's ring. Rings are kept alive after their
/// thread exits so a drain still sees the final events of short-lived
/// workers (rayon shards, serve handlers).
static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: std::cell::OnceCell<(Arc<Mutex<Ring>>, u32)> =
        const { std::cell::OnceCell::new() };
}

fn record_event(ev: SpanEvent) {
    LOCAL_RING.with(|cell| {
        let (ring, tid) = cell.get_or_init(|| {
            let ring = Arc::new(Mutex::new(Ring {
                events: std::collections::VecDeque::with_capacity(64),
                dropped: 0,
            }));
            let mut reg = registry().lock();
            let tid = reg.len() as u32;
            reg.push(ring.clone());
            (ring, tid)
        });
        let mut ev = ev;
        ev.tid = *tid;
        ring.lock().push(ev);
    });
}

/// RAII guard for a scoped span; records one [`SpanEvent`] on drop.
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    arg: Option<(&'static str, i64)>,
    start_ns: u64,
    trace: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = crate::now_ns();
        record_event(SpanEvent {
            name: self.name,
            cat: self.cat,
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            tid: 0,
            arg: self.arg,
            trace: self.trace,
        });
    }
}

/// Open a scoped span; `None` (and no work at all beyond one atomic
/// load) when tracing is disabled. Prefer the [`crate::span!`] macro.
pub fn span(name: &'static str) -> Option<SpanGuard> {
    if !crate::trace_enabled() {
        return None;
    }
    Some(SpanGuard {
        name,
        cat: "span",
        arg: None,
        start_ns: crate::now_ns(),
        trace: current_trace(),
    })
}

/// Like [`span`], with one integer argument attached to the event.
pub fn span_arg(name: &'static str, key: &'static str, val: i64) -> Option<SpanGuard> {
    if !crate::trace_enabled() {
        return None;
    }
    Some(SpanGuard {
        name,
        cat: "span",
        arg: Some((key, val)),
        start_ns: crate::now_ns(),
        trace: current_trace(),
    })
}

/// Record an instantaneous marker event (zero duration) on the span
/// timeline. Used by the fault-injection harness to stamp each injected
/// fault so chaos runs can be correlated with latency spikes in the
/// Chrome-trace view. No-op (one relaxed atomic load) when tracing is off.
pub fn mark(name: &'static str, cat: &'static str) {
    if !crate::trace_enabled() {
        return;
    }
    record_event(SpanEvent {
        name,
        cat,
        start_ns: crate::now_ns(),
        dur_ns: 0,
        tid: 0,
        arg: None,
        trace: current_trace(),
    });
}

/// Record a completed interval directly (used by the op profiler, which
/// measures its own durations instead of holding guards).
pub(crate) fn record_interval(
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    dur_ns: u64,
    arg: Option<(&'static str, i64)>,
) {
    record_event(SpanEvent {
        name,
        cat,
        start_ns,
        dur_ns,
        tid: 0,
        arg,
        trace: current_trace(),
    });
}

/// Drain every thread's ring: returns all buffered events sorted by
/// start time, plus the total number of events evicted by wraparound
/// since the last drain.
pub fn drain_spans() -> (Vec<SpanEvent>, u64) {
    collect(true, usize::MAX)
}

/// Non-destructive snapshot of up to `limit` most recent events (sorted
/// by start time) plus the cumulative eviction count. Serves
/// `/debug/trace` without disturbing a concurrent exporter.
pub fn snapshot_spans(limit: usize) -> (Vec<SpanEvent>, u64) {
    collect(false, limit)
}

fn collect(drain: bool, limit: usize) -> (Vec<SpanEvent>, u64) {
    let rings: Vec<Arc<Mutex<Ring>>> = registry().lock().clone();
    let mut events = Vec::new();
    let mut dropped = 0;
    for ring in rings {
        let mut r = ring.lock();
        if drain {
            events.extend(r.events.drain(..));
            dropped += r.dropped;
            r.dropped = 0;
        } else {
            events.extend(r.events.iter().cloned());
            dropped += r.dropped;
        }
    }
    events.sort_by_key(|e| (e.start_ns, e.tid));
    if events.len() > limit {
        events.drain(..events.len() - limit);
    }
    (events, dropped)
}

/// Render events as Chrome Trace Event Format JSON
/// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` and
/// Perfetto. Timestamps are microseconds with sub-µs precision kept as
/// fractions, per the format.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        crate::json_escape_into(e.name, &mut out);
        out.push_str(",\"cat\":");
        crate::json_escape_into(e.cat, &mut out);
        out.push_str(&format!(
            ",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}",
            e.start_ns as f64 / 1000.0,
            e.dur_ns as f64 / 1000.0,
            e.tid
        ));
        if e.arg.is_some() || e.trace != 0 {
            out.push_str(",\"args\":{");
            let mut first = true;
            if let Some((k, v)) = e.arg {
                crate::json_escape_into(k, &mut out);
                out.push_str(&format!(":{v}"));
                first = false;
            }
            if e.trace != 0 {
                if !first {
                    out.push(',');
                }
                out.push_str(&format!("\"trace\":{}", e.trace));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Drain all spans and write them as Chrome-trace JSON to `path`.
/// Returns the number of events written.
pub fn export_chrome_trace(path: &std::path::Path) -> std::io::Result<usize> {
    let (events, _dropped) = drain_spans();
    std::fs::write(path, chrome_trace_json(&events))?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = crate::TEST_FLAG_LOCK.lock();
        crate::set_trace(false);
        assert!(span("never").is_none());
    }

    #[test]
    fn chrome_json_escapes_and_renders_args() {
        let ev = SpanEvent {
            name: "a\"b",
            cat: "span",
            start_ns: 1500,
            dur_ns: 2500,
            tid: 3,
            arg: Some(("batch", 7)),
            trace: 0,
        };
        let json = chrome_trace_json(&[ev]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"a\\\"b\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.contains("\"args\":{\"batch\":7}"));
    }

    #[test]
    fn chrome_json_renders_trace_context() {
        let ev = SpanEvent {
            name: "fwd",
            cat: "span",
            start_ns: 1000,
            dur_ns: 500,
            tid: 0,
            arg: Some(("attempt", 1)),
            trace: 0xABCD,
        };
        let bare = SpanEvent {
            arg: None,
            ..ev.clone()
        };
        let json = chrome_trace_json(&[ev]);
        assert!(json.contains("\"args\":{\"attempt\":1,\"trace\":43981}"));
        let json = chrome_trace_json(&[bare]);
        assert!(json.contains("\"args\":{\"trace\":43981}"));
    }

    #[test]
    fn trace_scope_nests_and_restores() {
        assert_eq!(current_trace(), 0);
        {
            let _outer = trace_scope(7);
            assert_eq!(current_trace(), 7);
            {
                let _inner = trace_scope(9);
                assert_eq!(current_trace(), 9);
            }
            assert_eq!(current_trace(), 7);
        }
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn spans_inherit_the_current_trace_id() {
        let _guard = crate::TEST_FLAG_LOCK.lock();
        crate::set_trace(true);
        {
            let _scope = trace_scope(0x5151);
            let _s = span("traced_here");
        }
        crate::set_trace(false);
        let (events, _) = drain_spans();
        let ev = events
            .iter()
            .find(|e| e.name == "traced_here")
            .expect("span recorded");
        assert_eq!(ev.trace, 0x5151);
    }
}
