//! Per-op tape profiler: wall time and estimated FLOPs/bytes attributed
//! to every autograd op kind, aggregated into a ranked hot-op table.
//!
//! The autograd layer calls [`record_op`] once per recorded forward node
//! and once per backward op visit (only while tracing is enabled). Each
//! call feeds two sinks: the global per-op aggregate read back by
//! [`op_table`], and the span ring (category `"op"`) so per-op tape
//! execution shows up on the Chrome-trace timeline next to the scoped
//! spans.

use gendt_sync::Mutex;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Which half of autodiff an op timing belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Tape recording (the op's forward compute).
    Forward,
    /// Reverse sweep (the op's gradient compute).
    Backward,
}

/// Aggregated cost of one op kind.
#[derive(Clone, Debug, Default)]
pub struct OpStat {
    /// Op kind (`MatMul`, `LstmCell`, ...).
    pub name: &'static str,
    /// Forward executions.
    pub fwd_count: u64,
    /// Forward wall time, nanoseconds.
    pub fwd_ns: u64,
    /// Backward executions.
    pub bwd_count: u64,
    /// Backward wall time, nanoseconds.
    pub bwd_ns: u64,
    /// Estimated floating-point operations (forward + backward).
    pub flops: u64,
    /// Estimated bytes moved (forward + backward).
    pub bytes: u64,
}

impl OpStat {
    /// Total wall time across both phases, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.fwd_ns + self.bwd_ns
    }
}

static OPS: OnceLock<Mutex<BTreeMap<&'static str, OpStat>>> = OnceLock::new();

fn ops() -> &'static Mutex<BTreeMap<&'static str, OpStat>> {
    OPS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Record one op execution. `dur_ns` is the measured wall time;
/// `flops`/`bytes` are the caller's estimates from the op's shapes.
/// Only call while [`crate::trace_enabled`] — the autograd hooks guard
/// the call so disabled runs never reach this function.
pub fn record_op(name: &'static str, phase: Phase, dur_ns: u64, flops: u64, bytes: u64) {
    {
        let mut map = ops().lock();
        let stat = map.entry(name).or_insert_with(|| OpStat {
            name,
            ..OpStat::default()
        });
        match phase {
            Phase::Forward => {
                stat.fwd_count += 1;
                stat.fwd_ns += dur_ns;
            }
            Phase::Backward => {
                stat.bwd_count += 1;
                stat.bwd_ns += dur_ns;
            }
        }
        stat.flops += flops;
        stat.bytes += bytes;
    }
    let cat = match phase {
        Phase::Forward => "op",
        Phase::Backward => "op.bwd",
    };
    let end = crate::now_ns();
    crate::span::record_interval(
        name,
        cat,
        end.saturating_sub(dur_ns),
        dur_ns,
        Some(("flops", flops as i64)),
    );
}

/// The aggregate table, ranked by total wall time (hottest first).
pub fn op_table() -> Vec<OpStat> {
    let map = ops().lock();
    let mut rows: Vec<OpStat> = map.values().cloned().collect();
    rows.sort_by(|a, b| b.total_ns().cmp(&a.total_ns()).then(a.name.cmp(b.name)));
    rows
}

/// Clear the aggregate table (between profiled sections).
pub fn reset_ops() {
    ops().lock().clear();
}

/// Render the ranked hot-op table as aligned text for terminals/logs.
pub fn render_op_table(rows: &[OpStat]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>8} {:>10} {:>8} {:>10} {:>12} {:>12}\n",
        "op", "fwd#", "fwd_ms", "bwd#", "bwd_ms", "~MFLOP", "~MB"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>8} {:>10.3} {:>8} {:>10.3} {:>12.2} {:>12.2}\n",
            r.name,
            r.fwd_count,
            r.fwd_ns as f64 / 1e6,
            r.bwd_count,
            r.bwd_ns as f64 / 1e6,
            r.flops as f64 / 1e6,
            r.bytes as f64 / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_and_ranks_by_total_time() {
        reset_ops();
        record_op("TestCold", Phase::Forward, 10, 5, 5);
        record_op("TestHot", Phase::Forward, 500, 100, 100);
        record_op("TestHot", Phase::Backward, 700, 200, 200);
        let rows = op_table();
        let hot = rows.iter().find(|r| r.name == "TestHot").expect("TestHot");
        let cold = rows
            .iter()
            .find(|r| r.name == "TestCold")
            .expect("TestCold");
        assert_eq!(hot.fwd_count, 1);
        assert_eq!(hot.bwd_count, 1);
        assert_eq!(hot.total_ns(), 1200);
        assert_eq!(hot.flops, 300);
        let hot_pos = rows.iter().position(|r| r.name == "TestHot");
        let cold_pos = rows.iter().position(|r| r.name == "TestCold");
        assert!(hot_pos < cold_pos, "hotter op must rank first");
        assert_eq!(cold.total_ns(), 10);
        let table = render_op_table(&rows);
        assert!(table.contains("TestHot"));
        reset_ops();
    }
}
