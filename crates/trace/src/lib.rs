//! # gendt-trace — observability substrate for the GenDT workspace
//!
//! A zero-dependency tracing layer threaded through training, generation,
//! benchmarking, and serving:
//!
//! * [`span`] / [`span_arg`] and the [`span!`] macro — lock-cheap scoped
//!   spans recorded into per-thread ring buffers and drained by a
//!   collector; [`chrome_trace_json`] renders them as Chrome Trace Event
//!   Format JSON loadable in `chrome://tracing` / Perfetto.
//! * [`record_op`] / [`op_table`] — the per-op tape profiler: wall time
//!   plus estimated FLOPs/bytes attributed to every autograd `Op` kind,
//!   aggregated into a ranked hot-op table.
//! * [`Record`] — structured training telemetry as JSONL (one record per
//!   step/epoch), buffered in memory and optionally mirrored to the file
//!   named by `GENDT_TELEMETRY`.
//! * [`out!`], [`error!`], [`info!`], [`debug!`] — the workspace's
//!   logging macros: program output and errors always print; progress
//!   chatter is quiet by default and enabled with `GENDT_LOG=1|2`.
//!
//! Everything is gated on `GENDT_TRACE=1` (or [`set_trace`]); when the
//! gate is off every instrumentation site costs one relaxed atomic load
//! and never touches values, RNG streams, or control flow — traced and
//! untraced runs are bitwise-identical.
//!
//! Synchronization goes through `gendt-sync`, the workspace's std-only
//! threading substrate: in production builds the facade is plain
//! `std::sync`, and under `gendt-audit sync-check` the same rings and
//! sinks become model-checkable (DESIGN.md §12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod oplog;
mod span;
mod stamp;
mod telemetry;

pub use oplog::{op_table, record_op, render_op_table, reset_ops, OpStat, Phase};
pub use span::{
    chrome_trace_json, current_trace, drain_spans, export_chrome_trace, mark, snapshot_spans, span,
    span_arg, trace_scope, SpanEvent, SpanGuard, TraceScope,
};
pub use stamp::{git_rev, BENCH_SCHEMA};
pub use telemetry::{set_telemetry_path, take_telemetry, Record};

use gendt_sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

const UNRESOLVED: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Tri-state so the environment is consulted exactly once.
static STATE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// True when tracing is active.
///
/// First call resolves `GENDT_TRACE` (`1`, `true`, or `on` enable it);
/// later calls are a single relaxed atomic load — that load is the whole
/// cost of a disabled instrumentation site. [`set_trace`] overrides the
/// environment in-process.
pub fn trace_enabled() -> bool {
    // sync: the flag is an isolated gate; nothing is published through
    // it, so the hot-path load can stay relaxed.
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => {
            let on = matches!(
                std::env::var("GENDT_TRACE").ok().as_deref().map(str::trim),
                Some("1") | Some("true") | Some("on")
            );
            // sync: CAS instead of a blind store so a racing resolver
            // (or an interleaved set_trace) wins exactly once — a store
            // here could clobber a concurrent override.
            let _ = STATE.compare_exchange(
                UNRESOLVED,
                if on { ON } else { OFF },
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            matches!(STATE.load(Ordering::Relaxed), ON)
        }
    }
}

/// Force tracing on or off in-process (wins over `GENDT_TRACE`).
/// Intended for tests and for embedders that trace selected phases.
pub fn set_trace(on: bool) {
    // sync: explicit override; last writer wins by design.
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Log-level state, resolved once from `GENDT_LOG` (same tri-state
/// trick, with the level stored as `value + 2`).
static LOG_STATE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// Current log verbosity: 0 quiet (default), 1 info, 2 debug.
///
/// Resolved once from `GENDT_LOG` (`0`/`1`/`2`, or `info`/`debug`);
/// [`set_log_level`] overrides the environment in-process.
pub fn log_level() -> u8 {
    // sync: isolated verbosity gate, same reasoning as trace_enabled.
    match LOG_STATE.load(Ordering::Relaxed) {
        UNRESOLVED => {
            let level = match std::env::var("GENDT_LOG").ok().as_deref().map(str::trim) {
                Some("1") | Some("info") => 1,
                Some("2") | Some("debug") => 2,
                _ => 0,
            };
            // sync: CAS so a concurrent set_log_level is not clobbered
            // by the lazy env resolution.
            let _ = LOG_STATE.compare_exchange(
                UNRESOLVED,
                level + 2,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            LOG_STATE.load(Ordering::Relaxed).saturating_sub(2)
        }
        stored => stored - 2,
    }
}

/// Force the log verbosity in-process (wins over `GENDT_LOG`).
pub fn set_log_level(level: u8) {
    // sync: explicit override; last writer wins by design.
    LOG_STATE.store(level.min(2) + 2, Ordering::Relaxed);
}

/// Monotonic process clock anchored at first use.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (first call anchors it).
///
/// This is the only clock the workspace's instrumented paths use: the
/// determinism lint bans `Instant::now` in training files, and routing
/// every read through here keeps timing observations out of any code
/// that could feed them back into computation.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Print program output (results, tables) to stdout. Unconditional:
/// this is the layer's explicit "deliverable output" channel, as opposed
/// to progress chatter ([`info!`]) which is quiet by default.
#[macro_export]
macro_rules! out {
    ($($t:tt)*) => { ::std::println!($($t)*) };
}

/// Print an error to stderr. Unconditional: failures must never be
/// silenced by the verbosity gate.
#[macro_export]
macro_rules! error {
    ($($t:tt)*) => { ::std::eprintln!($($t)*) };
}

/// Print progress chatter to stderr when `GENDT_LOG >= 1`.
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => {
        if $crate::log_level() >= 1 {
            ::std::eprintln!($($t)*)
        }
    };
}

/// Print debug detail to stderr when `GENDT_LOG >= 2`.
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => {
        if $crate::log_level() >= 2 {
            ::std::eprintln!($($t)*)
        }
    };
}

/// Open a scoped span that records on drop. Expands to a `let` binding
/// of the guard, so the span covers the rest of the enclosing block.
///
/// ```
/// gendt_trace::set_trace(true);
/// {
///     gendt_trace::span!("train_step");
///     // ... work ...
/// }
/// let (events, _) = gendt_trace::drain_spans();
/// assert!(events.iter().any(|e| e.name == "train_step"));
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _gendt_trace_span = $crate::span($name);
    };
    ($name:expr, $key:expr => $val:expr) => {
        let _gendt_trace_span = $crate::span_arg($name, $key, $val as i64);
    };
}

/// Escape a string for inclusion in a JSON document. Shared by the
/// Chrome-trace exporter and the telemetry record builder.
pub(crate) fn json_escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes unit tests that flip the global trace flag.
#[cfg(test)]
pub(crate) static TEST_FLAG_LOCK: gendt_sync::Mutex<()> = gendt_sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_and_sticks() {
        let _guard = TEST_FLAG_LOCK.lock();
        set_trace(true);
        assert!(trace_enabled());
        set_trace(false);
        assert!(!trace_enabled());
    }

    #[test]
    fn log_level_override() {
        set_log_level(2);
        assert_eq!(log_level(), 2);
        set_log_level(0);
        assert_eq!(log_level(), 0);
        set_log_level(9);
        assert_eq!(log_level(), 2, "level clamps to debug");
        set_log_level(0);
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
