//! Bench-artifact stamping: a versioned schema number and the git
//! revision, so `BENCH_*.json` files are comparable across PRs.

use std::path::Path;

/// Version of the bench-output schema. Bump when a field in
/// `BENCH_serve.json` / `BENCH_kernels.json` changes meaning, so the
/// cross-PR bench trajectory can tell layouts apart.
///
/// v2: serve bench moved from fixed-concurrency closed loop to
/// open-loop Poisson arrivals (`offered_rps`/`achieved_rps`), latency
/// quantiles gained `p999`, and `BENCH_serve.json` gained a `fleet`
/// scaling section.
///
/// v3: the fleet section gained a `config` header carrying the
/// `GENDT_FLEET_SEED` value and the worker-count ladder, so fleet
/// numbers are reproducible from the stamp alone.
pub const BENCH_SCHEMA: u32 = 3;

/// The current git revision, resolved by reading `.git/HEAD` (and the
/// ref file it points at) from the working directory or any ancestor.
/// Returns `"unknown"` outside a git checkout — never an error, since
/// bench stamping must not fail a run.
pub fn git_rev() -> String {
    std::env::current_dir()
        .ok()
        .and_then(|dir| rev_from(&dir))
        .unwrap_or_else(|| "unknown".to_string())
}

fn rev_from(start: &Path) -> Option<String> {
    let mut dir: Option<&Path> = Some(start);
    while let Some(d) = dir {
        let git = d.join(".git");
        if git.is_dir() {
            return read_head(&git);
        }
        dir = d.parent();
    }
    None
}

fn read_head(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(rf) = head.strip_prefix("ref: ") {
        let direct = git.join(rf);
        if let Ok(rev) = std::fs::read_to_string(direct) {
            return Some(rev.trim().to_string());
        }
        // Packed refs: "HASH refs/heads/branch" lines.
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        packed.lines().find_map(|l| {
            let (hash, name) = l.split_once(' ')?;
            (name.trim() == rf).then(|| hash.trim().to_string())
        })
    } else {
        // Detached HEAD holds the hash directly.
        Some(head.to_string())
    }
}

/// `rev_from` starting at an explicit directory (tests use a fixture
/// tree instead of the process working directory).
#[cfg(test)]
fn git_rev_in(dir: &Path) -> String {
    rev_from(dir).unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn resolves_symbolic_and_detached_heads() {
        let root = std::env::temp_dir().join(format!("gendt-trace-gitrev-{}", std::process::id()));
        let tmp = TempDir(root.clone());
        let git = root.join("sub").join(".git");
        std::fs::create_dir_all(git.join("refs/heads")).expect("mkdir");
        std::fs::write(git.join("HEAD"), "ref: refs/heads/main\n").expect("write HEAD");
        std::fs::write(git.join("refs/heads/main"), "abc123\n").expect("write ref");
        // Resolution walks up from a nested directory to the .git root.
        let nested = root.join("sub").join("deep");
        std::fs::create_dir_all(&nested).expect("mkdir nested");
        assert_eq!(git_rev_in(&nested), "abc123");

        std::fs::write(git.join("HEAD"), "def456\n").expect("write detached HEAD");
        assert_eq!(git_rev_in(&nested), "def456");
        drop(tmp);
    }

    #[test]
    fn missing_repo_is_unknown() {
        let root = std::env::temp_dir().join(format!("gendt-trace-norepo-{}", std::process::id()));
        let tmp = TempDir(root.clone());
        std::fs::create_dir_all(&root).expect("mkdir");
        // temp_dir ancestors hold no .git on the build container.
        assert_eq!(git_rev_in(&root), "unknown");
        drop(tmp);
    }
}
