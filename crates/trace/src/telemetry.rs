//! Structured training telemetry: JSONL records, one per training
//! step/epoch, built with [`Record`] and collected in a bounded
//! in-memory buffer. When `GENDT_TELEMETRY=path` is set (or
//! [`set_telemetry_path`] is called) every record is also appended to
//! that file as it is emitted, so a long run can be tailed live.
//!
//! The builder renders JSON by hand — this crate must stay
//! zero-dependency — and maps non-finite floats to `null` (JSON has no
//! NaN), so a diverging run produces parseable telemetry all the way to
//! the blowup.

use gendt_sync::Mutex;
use std::io::Write;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Most records kept in memory before the oldest are evicted.
const MEM_CAP: usize = 65_536;

struct Sink {
    /// Explicit path override (None until set; env is consulted lazily).
    path: Option<PathBuf>,
    env_resolved: bool,
    lines: std::collections::VecDeque<String>,
    dropped: u64,
}

static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();

fn sink() -> &'static Mutex<Sink> {
    SINK.get_or_init(|| {
        Mutex::new(Sink {
            path: None,
            env_resolved: false,
            lines: std::collections::VecDeque::new(),
            dropped: 0,
        })
    })
}

/// Route telemetry records to a file (appended as JSONL), or `None` to
/// keep them in memory only. Overrides `GENDT_TELEMETRY`.
pub fn set_telemetry_path(path: Option<PathBuf>) {
    let mut s = sink().lock();
    s.path = path;
    s.env_resolved = true;
}

/// Drain the in-memory telemetry buffer: all buffered JSONL lines in
/// emission order, plus how many older lines were evicted by the cap.
pub fn take_telemetry() -> (Vec<String>, u64) {
    let mut s = sink().lock();
    let lines = s.lines.drain(..).collect();
    let dropped = s.dropped;
    s.dropped = 0;
    (lines, dropped)
}

/// Builder for one telemetry record (one JSONL line).
///
/// ```
/// gendt_trace::Record::new("train_step")
///     .int("step", 3)
///     .num("l_mse", 0.25)
///     .emit();
/// let (lines, _) = gendt_trace::take_telemetry();
/// assert!(lines.last().unwrap().contains("\"l_mse\":0.25"));
/// ```
pub struct Record {
    buf: String,
}

impl Record {
    /// Start a record of the given kind (`{"kind":"train_step",...}`).
    pub fn new(kind: &str) -> Record {
        let mut buf = String::with_capacity(160);
        buf.push_str("{\"kind\":");
        crate::json_escape_into(kind, &mut buf);
        Record { buf }
    }

    fn key(&mut self, key: &str) {
        self.buf.push(',');
        crate::json_escape_into(key, &mut self.buf);
        self.buf.push(':');
    }

    /// Add a float field; non-finite values render as `null`.
    pub fn num(mut self, key: &str, v: f64) -> Record {
        self.key(key);
        if v.is_finite() {
            let s = v.to_string();
            self.buf.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                self.buf.push_str(".0");
            }
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add an integer field.
    pub fn int(mut self, key: &str, v: i64) -> Record {
        self.key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, v: &str) -> Record {
        self.key(key);
        crate::json_escape_into(v, &mut self.buf);
        self
    }

    /// Finish the record: buffer it in memory and append it to the
    /// telemetry file when one is configured.
    pub fn emit(mut self) {
        self.buf.push('}');
        let line = self.buf;
        let mut s = sink().lock();
        if !s.env_resolved {
            s.path = std::env::var("GENDT_TELEMETRY").ok().map(PathBuf::from);
            s.env_resolved = true;
        }
        if let Some(path) = s.path.clone() {
            // Append per record so a live run can be tailed; errors are
            // reported once per failing emit but never panic a trainer.
            let res = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| writeln!(f, "{line}"));
            if let Err(e) = res {
                crate::error!(
                    "gendt-trace: telemetry write to {} failed: {e}",
                    path.display()
                );
            }
        }
        if s.lines.len() >= MEM_CAP {
            s.lines.pop_front();
            s.dropped += 1;
        }
        s.lines.push_back(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_renders_all_field_kinds_and_nan_as_null() {
        Record::new("unit\"test")
            .int("step", 42)
            .num("loss", 0.5)
            .num("bad", f64::NAN)
            .str("note", "a\nb")
            .emit();
        let (lines, _) = take_telemetry();
        // Tests share the global buffer; find our record instead of
        // assuming it is the newest line.
        let line = lines
            .iter()
            .find(|l| l.contains("unit\\\"test"))
            .expect("one record");
        assert!(line.starts_with("{\"kind\":\"unit\\\"test\""));
        assert!(line.contains("\"step\":42"));
        assert!(line.contains("\"loss\":0.5"));
        assert!(line.contains("\"bad\":null"));
        assert!(line.contains("\"note\":\"a\\nb\""));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn integral_floats_keep_a_fraction_marker() {
        Record::new("fraction_marker").num("v", 2.0).emit();
        let (lines, _) = take_telemetry();
        assert!(lines
            .iter()
            .any(|l| l.contains("fraction_marker") && l.contains("\"v\":2.0")));
    }
}
