//! Integration tests for the span ring buffers: wraparound accounting
//! and draining while other threads are still recording.

use std::sync::Mutex;

/// The tests share one global collector, so they must not interleave.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Must match `RING_CAP` in `span.rs`.
const RING_CAP: usize = 16_384;

#[test]
fn ring_wraparound_keeps_newest_and_counts_drops() {
    let _guard = TRACE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    gendt_trace::set_trace(true);
    gendt_trace::drain_spans();

    let total = RING_CAP + 1000;
    for _ in 0..total {
        let _span = gendt_trace::span("wrap");
    }
    let (events, dropped) = gendt_trace::drain_spans();
    assert_eq!(
        events.len() + dropped as usize,
        total,
        "every recorded span is either kept or counted as dropped"
    );
    assert_eq!(events.len(), RING_CAP, "ring keeps exactly its capacity");
    assert_eq!(dropped, 1000, "overflow evicts the oldest, one per push");
    // The survivors are the newest: sorted drain must end at the last
    // span's start time, which is >= every evicted span's.
    assert!(events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    gendt_trace::set_trace(false);
}

#[test]
fn drain_under_concurrent_recording_loses_nothing() {
    let _guard = TRACE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    gendt_trace::set_trace(true);
    gendt_trace::drain_spans();

    const THREADS: usize = 8;
    const PER_THREAD: usize = 1000;
    let mut harvested = 0usize;
    let mut dropped_total = 0u64;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    let _span = gendt_trace::span_arg("concurrent", "i", 1);
                }
            });
        }
        // Drain repeatedly while recorders run: a drain mid-flight must
        // never corrupt a ring or double-count an event.
        for _ in 0..50 {
            let (events, dropped) = gendt_trace::drain_spans();
            harvested += events.len();
            dropped_total += dropped;
            std::thread::yield_now();
        }
    });
    let (events, dropped) = gendt_trace::drain_spans();
    harvested += events.len();
    dropped_total += dropped;
    assert_eq!(
        harvested + dropped_total as usize,
        THREADS * PER_THREAD,
        "events harvested across drains plus evictions must equal events recorded"
    );
    gendt_trace::set_trace(false);
}

#[test]
fn snapshot_is_non_destructive() {
    let _guard = TRACE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    gendt_trace::set_trace(true);
    gendt_trace::drain_spans();

    for _ in 0..10 {
        let _span = gendt_trace::span("peek");
    }
    let (snap, _) = gendt_trace::snapshot_spans(5);
    assert_eq!(snap.len(), 5, "snapshot honors its limit");
    let (all, _) = gendt_trace::drain_spans();
    assert_eq!(all.len(), 10, "snapshot left the rings untouched");
    gendt_trace::set_trace(false);
}
