//! Dense row-major `f32` matrix used as the value type of the autograd
//! engine.
//!
//! The whole neural-network substrate is built on 2-D matrices: the row
//! dimension carries the mini-batch, the column dimension carries features.
//! Time is handled by the layers (e.g. [`crate::layers::Lstm`]) looping over
//! per-step matrices, which keeps the engine small and the memory layout
//! obvious — in the spirit of smoltcp's "simplicity and robustness" design
//! goals.

use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Number of rows (usually the mini-batch size).
    pub rows: usize,
    /// Number of columns (feature dimension).
    pub cols: usize,
    /// Row-major storage; `data.len() == rows * cols`.
    pub data: Vec<f32>,
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix with no storage. Used as the placeholder
    /// when buffers are temporarily moved out of the plan arena.
    fn default() -> Self {
        Matrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

impl Matrix {
    /// An all-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build a `1 x n` row vector.
    pub fn row(data: Vec<f32>) -> Self {
        Matrix {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Matrix product `self * rhs`.
    ///
    /// Dispatches to the register-tiled, cache-blocked kernel in
    /// [`crate::kernels`], which goes row-parallel above a fixed size
    /// threshold. Accumulation order per output element is `k`-ascending
    /// — identical to [`Matrix::matmul_naive`] and independent of the
    /// thread count, so results are bitwise reproducible.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if crate::kernels::reference_kernels() {
            return self.matmul_naive(rhs);
        }
        crate::kernels::gemm_nn(self, rhs)
    }

    /// `self^T * rhs` without materializing the transpose.
    ///
    /// Blocked kernel; see [`Matrix::matmul`] for the determinism
    /// contract (accumulation is `r`-ascending, matching
    /// [`Matrix::matmul_tn_naive`]).
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if crate::kernels::reference_kernels() {
            return self.matmul_tn_naive(rhs);
        }
        crate::kernels::gemm_tn(self, rhs)
    }

    /// `self * rhs^T` without materializing the transpose.
    ///
    /// Blocked kernel using eight-lane partial-sum dot products: run-to-
    /// run deterministic and thread-count independent, but reassociated
    /// relative to [`Matrix::matmul_nt_naive`] (agreement ~1e-5
    /// relative).
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if crate::kernels::reference_kernels() {
            return self.matmul_nt_naive(rhs);
        }
        crate::kernels::gemm_nt(self, rhs)
    }

    /// Reference `self * rhs`: the original i-k-j scalar loop. Retained
    /// as the ground truth for property tests and as the benchmark
    /// baseline; not used on hot paths.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Reference `self^T * rhs` (original scalar loop); see
    /// [`Matrix::matmul_naive`].
    pub fn matmul_tn_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let arow = &self.data[r * self.cols..(r + 1) * self.cols];
            let brow = &rhs.data[r * rhs.cols..(r + 1) * rhs.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Reference `self * rhs^T` (original scalar loop); see
    /// [`Matrix::matmul_naive`].
    pub fn matmul_nt_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let brow = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow.iter()) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// In-place `self += rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self *= s`.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Elementwise map to a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Horizontal concatenation `[self | rhs]`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn concat_cols(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "concat_cols row mismatch");
        let cols = self.cols + rhs.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row_slice(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(rhs.row_slice(r));
        }
        out
    }

    /// Copy of columns `c0..c1`.
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Matrix {
        assert!(c0 <= c1 && c1 <= self.cols, "slice_cols out of range");
        let cols = c1 - c0;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..(r + 1) * cols]
                .copy_from_slice(&self.data[r * self.cols + c0..r * self.cols + c1]);
        }
        out
    }

    /// Mean of all elements. Returns 0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Frobenius-norm squared.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![58., 64., 139., 154.]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|v| v as f32).collect());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 1, vec![5., 6.]);
        let c = a.concat_cols(&b);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);
    }

    #[test]
    fn mean_and_norms() {
        let a = Matrix::from_vec(1, 4, vec![1., 2., 3., 4.]);
        assert!((a.mean() - 2.5).abs() < 1e-6);
        assert!((a.norm_sq() - 30.0).abs() < 1e-6);
        assert!(!a.has_non_finite());
        let b = Matrix::from_vec(1, 1, vec![f32::NAN]);
        assert!(b.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
