//! Cache-blocked, autovectorization-friendly matrix-product kernels.
//!
//! Three product shapes back the autograd engine: `A·B` (forward),
//! `Aᵀ·B` and `A·Bᵀ` (backward). All three share the same design:
//!
//! * **Register tiling.** The inner loops compute an `MR x NR` output
//!   tile held in a local accumulator array, so each loaded element of
//!   `A` and `B` is reused `NR`- resp. `MR`-fold before going back to
//!   memory. The tile loops have constant trip counts over plain `f32`
//!   arrays, which LLVM autovectorizes to the full SIMD width of the
//!   target — no `unsafe`, no explicit intrinsics (this crate forbids
//!   `unsafe_code`).
//! * **Column-block packing.** `B` columns are packed `NR` at a time
//!   into a contiguous `K x NR` scratch buffer, so the hot loop streams
//!   exactly one cache line per `k` regardless of the parent matrix
//!   stride.
//! * **Deterministic accumulation.** Every output element accumulates
//!   its `k` (resp. `r`) terms in ascending order, the same order the
//!   naive reference uses, so the blocked kernels are bit-for-bit
//!   reproducible run to run. `A·Bᵀ` reassociates its dot products into
//!   eight fixed partial-sum lanes — still a fixed order, just not the
//!   naive one, hence the documented 1e-5 agreement tolerance.
//! * **Shape-only parallel partitioning.** Large products split their
//!   *output rows* into fixed [`CHUNK_ROWS`]-row chunks dispatched via
//!   [`threads::par_chunks_mut`]. Chunks are derived from the problem
//!   shape alone and write disjoint rows, so results are bitwise
//!   identical for any `GENDT_THREADS` value (see [`crate::threads`]).
//!
//! The naive seed kernels are retained as `*_naive` methods on
//! [`Matrix`] and serve as the reference in property tests and
//! benchmarks.

use crate::matrix::Matrix;
use crate::threads;
use std::sync::atomic::{AtomicBool, Ordering};

/// When set, [`Matrix::matmul`] and the activation helpers fall back to
/// the seed implementations (naive triple loop, libm transcendentals).
static REFERENCE_KERNELS: AtomicBool = AtomicBool::new(false);

/// Route matrix products and activations through the seed reference
/// implementations instead of the optimized kernels.
///
/// Before/after benchmarks flip this to time the pre-kernel-layer code
/// path inside one build; it is not intended for production use. Note
/// the reference path still enjoys this build's compiler flags, so
/// speedups measured against it are conservative.
pub fn set_reference_kernels(on: bool) {
    REFERENCE_KERNELS.store(on, Ordering::Relaxed);
}

/// True when the seed reference implementations are selected.
pub(crate) fn reference_kernels() -> bool {
    REFERENCE_KERNELS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Elementwise transcendentals
//
// `f32::exp` / `f32::tanh` are scalar libm calls, and the LSTM gate
// activations make ~L * B * 8H of them per generator forward — they
// rival the matrix products once those are blocked. The polynomial
// versions below are branchless straight-line arithmetic, so the
// activation loops autovectorize like the matmul microkernels. They are
// pure f32 arithmetic: bitwise reproducible on every run, build, and
// thread count.
// ---------------------------------------------------------------------

/// Branchless `e^x` via Cephes-style range reduction: `x = n·ln2 + r`
/// with `|r| <= ln2/2`, a degree-6 minimax polynomial for `e^r`, and a
/// `2^n` scale built from exponent bits. Relative error ≤ ~2 ulp across
/// the clamped range; inputs are clamped to `[-87, 88]` where f32 `e^x`
/// is finite and normal.
pub(crate) fn fast_exp(x: f32) -> f32 {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    // Written out in full: these are the exact hi/lo split of ln 2.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // 1.5 * 2^23: adding then subtracting rounds to the nearest integer
    // (magic-number trick, valid for |value| < 2^22) without a libm call.
    const ROUND: f32 = 12_582_912.0;
    let x = x.clamp(-87.0, 88.0);
    let n = (x * LOG2_E + ROUND) - ROUND;
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // Cephes expf minimax coefficients.
    let mut p = 1.987_569_2e-4;
    p = p * r + 1.398_2e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_5e-1;
    p = p * r + 0.5;
    let poly = (p * r * r + r) + 1.0;
    let scale = f32::from_bits(((n as i32 + 127) << 23) as u32);
    poly * scale
}

/// Numerically stable sigmoid on top of [`fast_exp`]: `1/(1 + e^-x)`.
/// The clamp inside `fast_exp` makes both tails well-behaved.
///
/// Callers dispatch between this and the libm reference once per
/// matrix, not per element — a per-element [`reference_kernels`] check
/// would put an atomic load in the hot loop and defeat vectorization.
pub(crate) fn fast_sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + fast_exp(-x))
}

/// `tanh(x) = (e^2x - 1) / (e^2x + 1)` on top of [`fast_exp`].
/// Absolute error stays below ~1e-6; near zero the subtraction costs
/// relative precision but the absolute error is what training sees.
pub(crate) fn fast_tanh(x: f32) -> f32 {
    let t = fast_exp(2.0 * x);
    (t - 1.0) / (t + 1.0)
}

/// Output-tile rows held in registers by the microkernels.
const MR: usize = 4;
/// Output-tile columns held in registers by the microkernels.
///
/// The microkernels keep `MR` separate `[f32; NR]` accumulators as
/// distinct local variables (not a 2-D array indexed by a runtime row
/// number — LLVM demotes that to memory) so the constant-length column
/// loops vectorize to full SIMD width.
const NR: usize = 32;
/// Output rows per parallel task. Fixed by shape, never by thread count.
const CHUNK_ROWS: usize = 64;
/// Minimum multiply-add count before parallel dispatch pays for itself.
const PAR_FLOPS: usize = 1 << 21;

/// View a `chunks_exact(NR)` chunk as a fixed-size array reference.
/// The length is guaranteed by `chunks_exact`, so the fallback arm is
/// genuinely unreachable (kept panic-free for the repo lint on this file).
#[inline]
fn as_nr(chunk: &[f32]) -> &[f32; NR] {
    match chunk.try_into() {
        Ok(arr) => arr,
        Err(_) => unreachable!("chunks_exact yields NR-length chunks"),
    }
}

/// `A (m x k) · B (k x n)`; shapes pre-validated by the caller.
pub(crate) fn gemm_nn(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, kdim, n) = (a.rows, a.cols, b.cols);
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    if m > CHUNK_ROWS && m * kdim * n >= PAR_FLOPS {
        threads::par_chunks_mut(&mut out.data, CHUNK_ROWS * n, |ci, chunk| {
            let i0 = ci * CHUNK_ROWS;
            let rows = chunk.len() / n;
            nn_block(
                &a.data[i0 * kdim..(i0 + rows) * kdim],
                kdim,
                &b.data,
                n,
                chunk,
            );
        });
    } else {
        nn_block(&a.data, kdim, &b.data, n, &mut out.data);
    }
    out
}

/// `Aᵀ (m x r)ᵀ=(r x m) · B (r x n)` without materializing the
/// transpose; shapes pre-validated by the caller.
pub(crate) fn gemm_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let (rdim, m, n) = (a.rows, a.cols, b.cols);
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    if m > CHUNK_ROWS && m * rdim * n >= PAR_FLOPS {
        threads::par_chunks_mut(&mut out.data, CHUNK_ROWS * n, |ci, chunk| {
            tn_block(&a.data, m, rdim, ci * CHUNK_ROWS, &b.data, n, chunk);
        });
    } else {
        tn_block(&a.data, m, rdim, 0, &b.data, n, &mut out.data);
    }
    out
}

/// `A (m x k) · Bᵀ (n x k)ᵀ` without materializing the transpose;
/// shapes pre-validated by the caller.
pub(crate) fn gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, kdim, n) = (a.rows, a.cols, b.rows);
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    if m > CHUNK_ROWS && m * kdim * n >= PAR_FLOPS {
        threads::par_chunks_mut(&mut out.data, CHUNK_ROWS * n, |ci, chunk| {
            let i0 = ci * CHUNK_ROWS;
            let rows = chunk.len() / n;
            nt_block(
                &a.data[i0 * kdim..(i0 + rows) * kdim],
                kdim,
                &b.data,
                n,
                chunk,
            );
        });
    } else {
        nt_block(&a.data, kdim, &b.data, n, &mut out.data);
    }
    out
}

/// Pack columns `j0..j0+jw` of row-major `b` (`n` columns wide) into a
/// `K x NR` buffer, zero-padding the last partial column block.
fn pack_b(b: &[f32], n: usize, kdim: usize, j0: usize, jw: usize, packed: &mut [f32]) {
    if jw == NR {
        for kk in 0..kdim {
            packed[kk * NR..kk * NR + NR].copy_from_slice(&b[kk * n + j0..kk * n + j0 + NR]);
        }
    } else {
        for kk in 0..kdim {
            let dst = &mut packed[kk * NR..(kk + 1) * NR];
            dst[..jw].copy_from_slice(&b[kk * n + j0..kk * n + j0 + jw]);
            dst[jw..].fill(0.0);
        }
    }
}

/// Four-row microkernel: `c_r += a_r[kk] * bp[kk * NR..]` for all `kk`,
/// accumulators held as four distinct register-resident arrays.
#[inline]
fn micro_4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], packed: &[f32]) -> [[f32; NR]; MR] {
    let mut c0 = [0.0f32; NR];
    let mut c1 = [0.0f32; NR];
    let mut c2 = [0.0f32; NR];
    let mut c3 = [0.0f32; NR];
    for (kk, bk) in packed.chunks_exact(NR).enumerate() {
        let bk = as_nr(bk);
        let x0 = a0[kk];
        let x1 = a1[kk];
        let x2 = a2[kk];
        let x3 = a3[kk];
        for j in 0..NR {
            c0[j] += x0 * bk[j];
            c1[j] += x1 * bk[j];
            c2[j] += x2 * bk[j];
            c3[j] += x3 * bk[j];
        }
    }
    [c0, c1, c2, c3]
}

/// Single-row microkernel for the `rows % MR` remainder.
#[inline]
fn micro_1(ar: &[f32], packed: &[f32]) -> [f32; NR] {
    let mut c = [0.0f32; NR];
    for (kk, bk) in packed.chunks_exact(NR).enumerate() {
        let bk = as_nr(bk);
        let x = ar[kk];
        for j in 0..NR {
            c[j] += x * bk[j];
        }
    }
    c
}

/// Blocked `A·B` over one horizontal slab of output rows.
fn nn_block(a: &[f32], kdim: usize, b: &[f32], n: usize, out: &mut [f32]) {
    let rows = out.len() / n;
    let mut packed = vec![0.0f32; kdim * NR];
    let mut j0 = 0;
    while j0 < n {
        let jw = NR.min(n - j0);
        pack_b(b, n, kdim, j0, jw, &mut packed);
        let mut i0 = 0;
        while i0 + MR <= rows {
            let acc = micro_4(
                &a[i0 * kdim..(i0 + 1) * kdim],
                &a[(i0 + 1) * kdim..(i0 + 2) * kdim],
                &a[(i0 + 2) * kdim..(i0 + 3) * kdim],
                &a[(i0 + 3) * kdim..(i0 + 4) * kdim],
                &packed,
            );
            for (r, cr) in acc.iter().enumerate() {
                let o0 = (i0 + r) * n + j0;
                out[o0..o0 + jw].copy_from_slice(&cr[..jw]);
            }
            i0 += MR;
        }
        for r in i0..rows {
            let c = micro_1(&a[r * kdim..(r + 1) * kdim], &packed);
            let o0 = r * n + j0;
            out[o0..o0 + jw].copy_from_slice(&c[..jw]);
        }
        j0 += NR;
    }
}

/// Blocked `Aᵀ·B` over output rows `i0_glob..` of the full product.
/// Output rows are columns of `a`, so `a` cannot be pre-sliced; the
/// global row offset indexes into it instead.
fn tn_block(
    a: &[f32],
    m: usize,
    rdim: usize,
    i0_glob: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
) {
    let rows = out.len() / n;
    let mut packed = vec![0.0f32; rdim * NR];
    let mut j0 = 0;
    while j0 < n {
        let jw = NR.min(n - j0);
        pack_b(b, n, rdim, j0, jw, &mut packed);
        let mut i0 = 0;
        while i0 + MR <= rows {
            let col0 = i0_glob + i0;
            let mut c0 = [0.0f32; NR];
            let mut c1 = [0.0f32; NR];
            let mut c2 = [0.0f32; NR];
            let mut c3 = [0.0f32; NR];
            for (rr, bk) in packed.chunks_exact(NR).enumerate() {
                let bk = as_nr(bk);
                let av = &a[rr * m + col0..rr * m + col0 + MR];
                let x0 = av[0];
                let x1 = av[1];
                let x2 = av[2];
                let x3 = av[3];
                for j in 0..NR {
                    c0[j] += x0 * bk[j];
                    c1[j] += x1 * bk[j];
                    c2[j] += x2 * bk[j];
                    c3[j] += x3 * bk[j];
                }
            }
            for (r, cr) in [c0, c1, c2, c3].iter().enumerate() {
                let o0 = (i0 + r) * n + j0;
                out[o0..o0 + jw].copy_from_slice(&cr[..jw]);
            }
            i0 += MR;
        }
        for r in i0..rows {
            let col = i0_glob + r;
            let mut c = [0.0f32; NR];
            for (rr, bk) in packed.chunks_exact(NR).enumerate() {
                let bk = as_nr(bk);
                let x = a[rr * m + col];
                for j in 0..NR {
                    c[j] += x * bk[j];
                }
            }
            let o0 = r * n + j0;
            out[o0..o0 + jw].copy_from_slice(&c[..jw]);
        }
        j0 += NR;
    }
}

/// `A·Bᵀ` over one horizontal slab of output rows: row-row dot products
/// with eight fixed partial-sum lanes.
fn nt_block(a: &[f32], kdim: usize, b: &[f32], n: usize, out: &mut [f32]) {
    let rows = out.len() / n;
    for i in 0..rows {
        let arow = &a[i * kdim..(i + 1) * kdim];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            *o = dot8(arow, &b[j * kdim..(j + 1) * kdim]);
        }
    }
}

/// Dot product with eight independent partial sums and a fixed
/// reduction tree: deterministic run-to-run, reassociated relative to a
/// left-to-right sum (agreement with the naive kernel is ~1e-5
/// relative).
#[inline]
fn dot8(x: &[f32], y: &[f32]) -> f32 {
    let mut p = [0.0f32; 8];
    let xc = x.chunks_exact(8);
    let yc = y.chunks_exact(8);
    let tail_x = xc.remainder();
    let tail_y = yc.remainder();
    for (xs, ys) in xc.zip(yc) {
        for l in 0..8 {
            p[l] += xs[l] * ys[l];
        }
    }
    let mut tail = 0.0f32;
    for (a, b) in tail_x.iter().zip(tail_y.iter()) {
        tail += a * b;
    }
    (((p[0] + p[1]) + (p[2] + p[3])) + ((p[4] + p[5]) + (p[6] + p[7]))) + tail
}

#[cfg(test)]
mod tests {
    use crate::matrix::Matrix;
    use crate::threads;
    use gendt_rng::Rng;

    #[test]
    fn fast_transcendentals_match_libm() {
        let mut x = -87.0f32;
        while x <= 88.0 {
            let rel = (super::fast_exp(x) - x.exp()).abs() / x.exp();
            assert!(rel <= 5e-7, "fast_exp({x}) off by {rel:e} relative");
            x += 0.137;
        }
        let mut x = -20.0f32;
        while x <= 20.0 {
            let ds = (super::fast_sigmoid(x) - (1.0 / (1.0 + (-x as f64).exp())) as f32).abs();
            assert!(ds <= 2e-6, "fast_sigmoid({x}) off by {ds:e}");
            let dt = (super::fast_tanh(x) - x.tanh()).abs();
            assert!(dt <= 2e-6, "fast_tanh({x}) off by {dt:e}");
            x += 0.0173;
        }
        // Saturation behaves: no NaN/inf at the extremes.
        for x in [-1e9f32, -100.0, 100.0, 1e9] {
            assert!(super::fast_exp(x).is_finite());
            assert!((0.0..=1.0).contains(&super::fast_sigmoid(x)));
            assert!((-1.0..=1.0).contains(&super::fast_tanh(x)));
        }
    }

    fn rand_mat(rng: &mut Rng, r: usize, c: usize) -> Matrix {
        Matrix::from_vec(
            r,
            c,
            (0..r * c).map(|_| rng.uniform(-2.0, 2.0) as f32).collect(),
        )
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32, ctx: &str) {
        assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
        for (i, (x, y)) in a.data.iter().zip(b.data.iter()).enumerate() {
            let scale = 1.0f32.max(x.abs()).max(y.abs());
            assert!((x - y).abs() <= tol * scale, "{ctx}: elem {i}: {x} vs {y}");
        }
    }

    /// Shapes covering empty, 1-row/1-col, sub-tile, exact-tile, and
    /// beyond-tile cases for every dimension.
    const DIMS: [usize; 6] = [0, 1, 3, 16, 17, 33];

    #[test]
    fn blocked_kernels_match_naive_across_shape_grid() {
        let mut rng = Rng::seed_from(42);
        for &m in &DIMS {
            for &k in &DIMS {
                for &n in &DIMS {
                    let a = rand_mat(&mut rng, m, k);
                    let b = rand_mat(&mut rng, k, n);
                    assert_close(
                        &a.matmul(&b),
                        &a.matmul_naive(&b),
                        1e-5,
                        &format!("nn {m}x{k}x{n}"),
                    );
                    let at = rand_mat(&mut rng, k, m);
                    assert_close(
                        &at.matmul_tn(&b),
                        &at.matmul_tn_naive(&b),
                        1e-5,
                        &format!("tn {m}x{k}x{n}"),
                    );
                    let bt = rand_mat(&mut rng, n, k);
                    assert_close(
                        &a.matmul_nt(&bt),
                        &a.matmul_nt_naive(&bt),
                        1e-5,
                        &format!("nt {m}x{k}x{n}"),
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_nn_and_tn_are_bitwise_equal_to_naive() {
        // Same per-element accumulation order as the reference: results
        // must agree exactly, not just to tolerance (no zeros in the
        // inputs, so the reference's skip-zero branch never fires).
        let mut rng = Rng::seed_from(7);
        for (m, k, n) in [(5, 9, 13), (64, 100, 32), (130, 67, 70)] {
            let a = rand_mat(&mut rng, m, k);
            let b = rand_mat(&mut rng, k, n);
            assert_eq!(a.matmul(&b).data, a.matmul_naive(&b).data, "nn {m}x{k}x{n}");
            let at = rand_mat(&mut rng, k, m);
            assert_eq!(
                at.matmul_tn(&b).data,
                at.matmul_tn_naive(&b).data,
                "tn {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn parallel_dispatch_is_bitwise_identical_to_single_thread() {
        // All three products sized to cross the parallel threshold
        // (output rows > 64 and > 2^21 multiply-adds).
        let mut rng = Rng::seed_from(11);
        let a = rand_mat(&mut rng, 200, 128);
        let b = rand_mat(&mut rng, 128, 120);
        let at = rand_mat(&mut rng, 300, 128);
        let bt2 = rand_mat(&mut rng, 300, 100);
        let bt = rand_mat(&mut rng, 120, 128);
        threads::set_num_threads(1);
        let nn1 = a.matmul(&b);
        let tn1 = at.matmul_tn(&bt2);
        let nt1 = a.matmul_nt(&bt);
        threads::set_num_threads(4);
        let nn4 = a.matmul(&b);
        let tn4 = at.matmul_tn(&bt2);
        let nt4 = a.matmul_nt(&bt);
        threads::set_num_threads(1);
        assert_eq!(nn1.data, nn4.data);
        assert_eq!(tn1.data, tn4.data);
        assert_eq!(nt1.data, nt4.data);
    }
}
