//! Cache-blocked, autovectorization-friendly matrix-product kernels.
//!
//! Three product shapes back the autograd engine: `A·B` (forward),
//! `Aᵀ·B` and `A·Bᵀ` (backward). All three share the same design:
//!
//! * **Register tiling.** The inner loops compute an `MR x NR` output
//!   tile held in a local accumulator array, so each loaded element of
//!   `A` and `B` is reused `NR`- resp. `MR`-fold before going back to
//!   memory. The tile loops have constant trip counts over plain `f32`
//!   arrays, which LLVM autovectorizes to the full SIMD width of the
//!   target — no `unsafe`, no explicit intrinsics (this crate forbids
//!   `unsafe_code`).
//! * **Column-block packing.** `B` columns are packed `NR` at a time
//!   into a contiguous `K x NR` scratch buffer, so the hot loop streams
//!   exactly one cache line per `k` regardless of the parent matrix
//!   stride.
//! * **Deterministic accumulation.** Every output element accumulates
//!   its `k` (resp. `r`) terms in ascending order, the same order the
//!   naive reference uses, so the blocked kernels are bit-for-bit
//!   reproducible run to run. `A·Bᵀ` reassociates its dot products into
//!   eight fixed partial-sum lanes — still a fixed order, just not the
//!   naive one, hence the documented 1e-5 agreement tolerance.
//! * **Shape-only parallel partitioning.** Large products split their
//!   *output rows* into fixed [`CHUNK_ROWS`]-row chunks dispatched via
//!   [`threads::par_chunks_mut`]. Chunks are derived from the problem
//!   shape alone and write disjoint rows, so results are bitwise
//!   identical for any `GENDT_THREADS` value (see [`crate::threads`]).
//!
//! The naive seed kernels are retained as `*_naive` methods on
//! [`Matrix`] and serve as the reference in property tests and
//! benchmarks.

use crate::matrix::Matrix;
use crate::threads;
use gendt_sync::atomic::{AtomicBool, Ordering};

/// When set, [`Matrix::matmul`] and the activation helpers fall back to
/// the seed implementations (naive triple loop, libm transcendentals).
static REFERENCE_KERNELS: AtomicBool = AtomicBool::new(false);

/// Route matrix products and activations through the seed reference
/// implementations instead of the optimized kernels.
///
/// Before/after benchmarks flip this to time the pre-kernel-layer code
/// path inside one build; it is not intended for production use. Note
/// the reference path still enjoys this build's compiler flags, so
/// speedups measured against it are conservative.
pub fn set_reference_kernels(on: bool) {
    // sync: benchmark toggle flipped between timed sections, never
    // concurrently with kernel execution.
    REFERENCE_KERNELS.store(on, Ordering::Relaxed);
}

/// True when the seed reference implementations are selected.
pub(crate) fn reference_kernels() -> bool {
    // sync: see set_reference_kernels.
    REFERENCE_KERNELS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Elementwise transcendentals
//
// `f32::exp` / `f32::tanh` are scalar libm calls, and the LSTM gate
// activations make ~L * B * 8H of them per generator forward — they
// rival the matrix products once those are blocked. The polynomial
// versions below are branchless straight-line arithmetic, so the
// activation loops autovectorize like the matmul microkernels. They are
// pure f32 arithmetic: bitwise reproducible on every run, build, and
// thread count.
// ---------------------------------------------------------------------

/// Branchless `e^x` via Cephes-style range reduction: `x = n·ln2 + r`
/// with `|r| <= ln2/2`, a degree-6 minimax polynomial for `e^r`, and a
/// `2^n` scale built from exponent bits. Relative error ≤ ~2 ulp across
/// the clamped range; inputs are clamped to `[-87, 88]` where f32 `e^x`
/// is finite and normal.
pub(crate) fn fast_exp(x: f32) -> f32 {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    // Written out in full: these are the exact hi/lo split of ln 2.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // 1.5 * 2^23: adding then subtracting rounds to the nearest integer
    // (magic-number trick, valid for |value| < 2^22) without a libm call.
    const ROUND: f32 = 12_582_912.0;
    let x = x.clamp(-87.0, 88.0);
    let n = (x * LOG2_E + ROUND) - ROUND;
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // Cephes expf minimax coefficients.
    let mut p = 1.987_569_2e-4;
    p = p * r + 1.398_2e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_5e-1;
    p = p * r + 0.5;
    let poly = (p * r * r + r) + 1.0;
    let scale = f32::from_bits(((n as i32 + 127) << 23) as u32);
    poly * scale
}

/// Numerically stable sigmoid on top of [`fast_exp`]: `1/(1 + e^-x)`.
/// The clamp inside `fast_exp` makes both tails well-behaved.
///
/// Callers dispatch between this and the libm reference once per
/// matrix, not per element — a per-element [`reference_kernels`] check
/// would put an atomic load in the hot loop and defeat vectorization.
pub(crate) fn fast_sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + fast_exp(-x))
}

/// `tanh(x) = (e^2x - 1) / (e^2x + 1)` on top of [`fast_exp`].
/// Absolute error stays below ~1e-6; near zero the subtraction costs
/// relative precision but the absolute error is what training sees.
pub(crate) fn fast_tanh(x: f32) -> f32 {
    let t = fast_exp(2.0 * x);
    (t - 1.0) / (t + 1.0)
}

/// Output-tile rows held in registers by the microkernels.
pub(crate) const MR: usize = 4;
/// Output-tile columns held in registers by the microkernels.
///
/// The microkernels keep `MR` separate `[f32; NR]` accumulators as
/// distinct local variables (not a 2-D array indexed by a runtime row
/// number — LLVM demotes that to memory) so the constant-length column
/// loops vectorize to full SIMD width.
pub(crate) const NR: usize = 32;
/// Output rows per parallel task. Fixed by shape, never by thread count.
const CHUNK_ROWS: usize = 64;
/// Minimum multiply-add count before parallel dispatch pays for itself.
const PAR_FLOPS: usize = 1 << 21;

/// View a `chunks_exact(NR)` chunk as a fixed-size array reference.
/// The length is guaranteed by `chunks_exact`, so the fallback arm is
/// genuinely unreachable (kept panic-free for the repo lint on this file).
#[inline]
fn as_nr(chunk: &[f32]) -> &[f32; NR] {
    match chunk.try_into() {
        Ok(arr) => arr,
        Err(_) => unreachable!("chunks_exact yields NR-length chunks"),
    }
}

/// `A (m x k) · B (k x n)`; shapes pre-validated by the caller.
pub(crate) fn gemm_nn(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, kdim, n) = (a.rows, a.cols, b.cols);
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    if m > CHUNK_ROWS && m * kdim * n >= PAR_FLOPS {
        threads::par_chunks_mut(&mut out.data, CHUNK_ROWS * n, |ci, chunk| {
            let i0 = ci * CHUNK_ROWS;
            let rows = chunk.len() / n;
            nn_block(
                &a.data[i0 * kdim..(i0 + rows) * kdim],
                kdim,
                &b.data,
                n,
                chunk,
            );
        });
    } else {
        nn_block(&a.data, kdim, &b.data, n, &mut out.data);
    }
    out
}

/// `Aᵀ (m x r)ᵀ=(r x m) · B (r x n)` without materializing the
/// transpose; shapes pre-validated by the caller.
pub(crate) fn gemm_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let (rdim, m, n) = (a.rows, a.cols, b.cols);
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    if m > CHUNK_ROWS && m * rdim * n >= PAR_FLOPS {
        threads::par_chunks_mut(&mut out.data, CHUNK_ROWS * n, |ci, chunk| {
            tn_block(&a.data, m, rdim, ci * CHUNK_ROWS, &b.data, n, chunk);
        });
    } else {
        tn_block(&a.data, m, rdim, 0, &b.data, n, &mut out.data);
    }
    out
}

/// `A (m x k) · Bᵀ (n x k)ᵀ` without materializing the transpose;
/// shapes pre-validated by the caller.
pub(crate) fn gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, kdim, n) = (a.rows, a.cols, b.rows);
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    if m > CHUNK_ROWS && m * kdim * n >= PAR_FLOPS {
        threads::par_chunks_mut(&mut out.data, CHUNK_ROWS * n, |ci, chunk| {
            let i0 = ci * CHUNK_ROWS;
            let rows = chunk.len() / n;
            nt_block(
                &a.data[i0 * kdim..(i0 + rows) * kdim],
                kdim,
                &b.data,
                n,
                chunk,
            );
        });
    } else {
        nt_block(&a.data, kdim, &b.data, n, &mut out.data);
    }
    out
}

/// Pack columns `j0..j0+jw` of row-major `b` (`n` columns wide) into a
/// `K x NR` buffer, zero-padding the last partial column block.
fn pack_b(b: &[f32], n: usize, kdim: usize, j0: usize, jw: usize, packed: &mut [f32]) {
    if jw == NR {
        for kk in 0..kdim {
            packed[kk * NR..kk * NR + NR].copy_from_slice(&b[kk * n + j0..kk * n + j0 + NR]);
        }
    } else {
        for kk in 0..kdim {
            let dst = &mut packed[kk * NR..(kk + 1) * NR];
            dst[..jw].copy_from_slice(&b[kk * n + j0..kk * n + j0 + jw]);
            dst[jw..].fill(0.0);
        }
    }
}

/// Four-row microkernel: `c_r += a_r[kk] * bp[kk * NR..]` for all `kk`,
/// accumulators held as four distinct register-resident arrays.
#[inline]
fn micro_4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], packed: &[f32]) -> [[f32; NR]; MR] {
    let mut c0 = [0.0f32; NR];
    let mut c1 = [0.0f32; NR];
    let mut c2 = [0.0f32; NR];
    let mut c3 = [0.0f32; NR];
    for (kk, bk) in packed.chunks_exact(NR).enumerate() {
        let bk = as_nr(bk);
        let x0 = a0[kk];
        let x1 = a1[kk];
        let x2 = a2[kk];
        let x3 = a3[kk];
        for j in 0..NR {
            c0[j] += x0 * bk[j];
            c1[j] += x1 * bk[j];
            c2[j] += x2 * bk[j];
            c3[j] += x3 * bk[j];
        }
    }
    [c0, c1, c2, c3]
}

/// Single-row microkernel for the `rows % MR` remainder.
#[inline]
fn micro_1(ar: &[f32], packed: &[f32]) -> [f32; NR] {
    let mut c = [0.0f32; NR];
    for (kk, bk) in packed.chunks_exact(NR).enumerate() {
        let bk = as_nr(bk);
        let x = ar[kk];
        for j in 0..NR {
            c[j] += x * bk[j];
        }
    }
    c
}

/// Write one fully accumulated output-tile row: plain store, or a
/// single `+=` per element when `acc` is set. The accumulate form is
/// bitwise identical to materializing the product and adding it
/// elementwise afterwards, because each element's dot product is
/// complete before the one addition happens.
#[inline]
fn store_row(dst: &mut [f32], src: &[f32], acc: bool) {
    if acc {
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d += *s;
        }
    } else {
        dst.copy_from_slice(src);
    }
}

/// Blocked `A·B` over one horizontal slab of output rows. `packed` is
/// caller scratch of at least `kdim * NR` elements.
fn nn_block_ws(
    a: &[f32],
    kdim: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
    packed: &mut [f32],
    acc: bool,
) {
    let packed = &mut packed[..kdim * NR];
    let mut j0 = 0;
    while j0 < n {
        let jw = NR.min(n - j0);
        pack_b(b, n, kdim, j0, jw, packed);
        nn_tiles(a, kdim, packed, n, j0, jw, out, acc);
        j0 += NR;
    }
}

/// Run the `MR x NR` microkernels for one packed column block against
/// every output row of the slab. Shared by the packing loop above and
/// the pre-packed kernel below, so the two are bitwise identical by
/// construction.
#[allow(clippy::too_many_arguments)]
fn nn_tiles(
    a: &[f32],
    kdim: usize,
    packed: &[f32],
    n: usize,
    j0: usize,
    jw: usize,
    out: &mut [f32],
    acc: bool,
) {
    let rows = out.len() / n;
    let mut i0 = 0;
    while i0 + MR <= rows {
        let tile = micro_4(
            &a[i0 * kdim..(i0 + 1) * kdim],
            &a[(i0 + 1) * kdim..(i0 + 2) * kdim],
            &a[(i0 + 2) * kdim..(i0 + 3) * kdim],
            &a[(i0 + 3) * kdim..(i0 + 4) * kdim],
            packed,
        );
        for (r, cr) in tile.iter().enumerate() {
            let o0 = (i0 + r) * n + j0;
            store_row(&mut out[o0..o0 + jw], &cr[..jw], acc);
        }
        i0 += MR;
    }
    for r in i0..rows {
        let c = micro_1(&a[r * kdim..(r + 1) * kdim], packed);
        let o0 = r * n + j0;
        store_row(&mut out[o0..o0 + jw], &c[..jw], acc);
    }
}

/// Blocked `A·B` with self-owned scratch (gemm_nn dispatch target).
fn nn_block(a: &[f32], kdim: usize, b: &[f32], n: usize, out: &mut [f32]) {
    let mut packed = vec![0.0f32; kdim * NR];
    nn_block_ws(a, kdim, b, n, out, &mut packed, false);
}

/// Blocked `Aᵀ·B` over output rows `i0_glob..` of the full product.
/// Output rows are columns of `a`, so `a` cannot be pre-sliced; the
/// global row offset indexes into it instead.
///
/// `ws` is caller scratch of at least [`tn_ws_len`]`(rows, rdim)`
/// elements, split into the `B` column pack and a contiguous transpose
/// of this slab's `A` columns. Packing `A` once up front replaces the
/// strided column gather that used to sit inside the tile loops and was
/// this kernel's bottleneck; the microkernels then run on contiguous
/// rows exactly as in the `nn` case. Accumulation order per element is
/// unchanged (`rr` ascending), so results stay bit-for-bit identical.
#[allow(clippy::too_many_arguments)]
fn tn_block_ws(
    a: &[f32],
    m: usize,
    rdim: usize,
    i0_glob: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
    ws: &mut [f32],
    acc: bool,
) {
    let rows = out.len() / n;
    if rdim == 0 {
        if acc {
            for o in out.iter_mut() {
                *o += 0.0;
            }
        } else {
            out.fill(0.0);
        }
        return;
    }
    let (packed_b, packed_a) = ws[..rdim * NR + rows * rdim].split_at_mut(rdim * NR);
    for (r, dst) in packed_a.chunks_exact_mut(rdim).enumerate() {
        let col = i0_glob + r;
        for (rr, d) in dst.iter_mut().enumerate() {
            *d = a[rr * m + col];
        }
    }
    let mut j0 = 0;
    while j0 < n {
        let jw = NR.min(n - j0);
        pack_b(b, n, rdim, j0, jw, packed_b);
        let mut i0 = 0;
        while i0 + MR <= rows {
            let tile = micro_4(
                &packed_a[i0 * rdim..(i0 + 1) * rdim],
                &packed_a[(i0 + 1) * rdim..(i0 + 2) * rdim],
                &packed_a[(i0 + 2) * rdim..(i0 + 3) * rdim],
                &packed_a[(i0 + 3) * rdim..(i0 + 4) * rdim],
                packed_b,
            );
            for (r, cr) in tile.iter().enumerate() {
                let o0 = (i0 + r) * n + j0;
                store_row(&mut out[o0..o0 + jw], &cr[..jw], acc);
            }
            i0 += MR;
        }
        for r in i0..rows {
            let c = micro_1(&packed_a[r * rdim..(r + 1) * rdim], packed_b);
            let o0 = r * n + j0;
            store_row(&mut out[o0..o0 + jw], &c[..jw], acc);
        }
        j0 += NR;
    }
}

/// Blocked `Aᵀ·B` with self-owned scratch (gemm_tn dispatch target).
fn tn_block(
    a: &[f32],
    m: usize,
    rdim: usize,
    i0_glob: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
) {
    let rows = out.len() / n;
    let mut ws = vec![0.0f32; tn_ws_len(rows, rdim)];
    tn_block_ws(a, m, rdim, i0_glob, b, n, out, &mut ws, false);
}

/// `A·Bᵀ` over one horizontal slab of output rows: row-row dot products
/// with eight fixed partial-sum lanes.
fn nt_block_ws(a: &[f32], kdim: usize, b: &[f32], n: usize, out: &mut [f32], acc: bool) {
    let rows = out.len() / n;
    for i in 0..rows {
        let arow = &a[i * kdim..(i + 1) * kdim];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let v = dot8(arow, &b[j * kdim..(j + 1) * kdim]);
            if acc {
                *o += v;
            } else {
                *o = v;
            }
        }
    }
}

/// `A·Bᵀ` slab kernel (gemm_nt dispatch target).
fn nt_block(a: &[f32], kdim: usize, b: &[f32], n: usize, out: &mut [f32]) {
    nt_block_ws(a, kdim, b, n, out, false);
}

/// Scratch length `gemm_nn_into` needs for `A (m x k) · B (k x n)`.
pub(crate) fn nn_ws_len(kdim: usize) -> usize {
    kdim * NR
}

/// Length of the whole-matrix column pack of a `kdim x n` `B`:
/// `ceil(n/NR)` consecutive `kdim x NR` blocks (last one zero-padded),
/// each exactly what [`pack_b`] produces for its column range.
pub(crate) fn packed_b_len(kdim: usize, n: usize) -> usize {
    n.div_ceil(NR) * kdim * NR
}

/// Pack every `NR`-column block of `b` into `dst` (length
/// [`packed_b_len`]). The plan executor caches this per parameter and
/// refreshes it once per store version, hoisting the per-call pack out
/// of every GEMM that reads the parameter as its right operand.
pub(crate) fn pack_b_full(b: &Matrix, dst: &mut [f32]) {
    let (kdim, n) = (b.rows, b.cols);
    debug_assert_eq!(dst.len(), packed_b_len(kdim, n), "pack_b_full length");
    if kdim == 0 {
        return;
    }
    let mut j0 = 0;
    for block in dst.chunks_exact_mut(kdim * NR) {
        let jw = NR.min(n - j0);
        pack_b(&b.data, n, kdim, j0, jw, block);
        j0 += NR;
    }
}

/// `A·B` into a pre-shaped output where `b_packed` is the whole-matrix
/// column pack from [`pack_b_full`] of a `a.cols x n` matrix. Bitwise
/// identical to [`gemm_nn_into`]: the microkernels consume exactly the
/// bytes [`pack_b`] would produce, in the same order, via the shared
/// [`nn_tiles`] slab loop. Never allocates, at any thread count.
pub(crate) fn gemm_nn_packed_into(
    a: &Matrix,
    b_packed: &[f32],
    n: usize,
    out: &mut Matrix,
    acc: bool,
) {
    let (m, kdim) = (a.rows, a.cols);
    debug_assert_eq!((out.rows, out.cols), (m, n), "gemm_nn_packed_into shape");
    debug_assert_eq!(b_packed.len(), packed_b_len(kdim, n), "packed B length");
    if m == 0 || n == 0 {
        return;
    }
    if kdim == 0 {
        // k = 0 product is all zeros; `acc` adds 0.0 per element, which
        // matches the microkernels' zero-accumulator stores bitwise.
        if acc {
            for o in out.data.iter_mut() {
                *o += 0.0;
            }
        } else {
            out.data.fill(0.0);
        }
        return;
    }
    if m > CHUNK_ROWS && m * kdim * n >= PAR_FLOPS && threads::num_threads() > 1 {
        threads::par_chunks_mut(&mut out.data, CHUNK_ROWS * n, |ci, chunk| {
            let i0 = ci * CHUNK_ROWS;
            let rows = chunk.len() / n;
            packed_slab(
                &a.data[i0 * kdim..(i0 + rows) * kdim],
                kdim,
                b_packed,
                n,
                chunk,
                acc,
            );
        });
    } else {
        packed_slab(&a.data, kdim, b_packed, n, &mut out.data, acc);
    }
}

/// One horizontal output slab of the pre-packed product: walk the packed
/// column blocks, reusing [`nn_tiles`].
fn packed_slab(a: &[f32], kdim: usize, b_packed: &[f32], n: usize, out: &mut [f32], acc: bool) {
    let mut j0 = 0;
    for block in b_packed.chunks_exact(kdim * NR) {
        let jw = NR.min(n - j0);
        nn_tiles(a, kdim, block, n, j0, jw, out, acc);
        j0 += NR;
    }
}

/// Scratch length `gemm_tn_into` needs for `Aᵀ (r x m)ᵀ · B (r x n)`:
/// the `B` column pack plus the contiguous transpose of `A`'s columns.
pub(crate) fn tn_ws_len(m: usize, rdim: usize) -> usize {
    rdim * NR + m * rdim
}

/// Fold a fully materialized product into `out` (multi-thread fallback
/// for the `_into` kernels): plain copy, or one `+=` per element.
fn fold(out: &mut Matrix, res: &Matrix, acc: bool) {
    if acc {
        for (o, r) in out.data.iter_mut().zip(res.data.iter()) {
            *o += *r;
        }
    } else {
        out.data.copy_from_slice(&res.data);
    }
}

/// `A·B` into a pre-shaped output using caller scratch (`ws` at least
/// [`nn_ws_len`]`(a.cols)`); with `acc`, adds the product elementwise.
///
/// Bitwise identical to [`gemm_nn`] (+ `add_assign` when `acc`). At one
/// worker this never allocates; the multi-thread dispatch falls back to
/// the allocating kernel, whose chunked result is bitwise identical by
/// the determinism contract.
pub(crate) fn gemm_nn_into(a: &Matrix, b: &Matrix, out: &mut Matrix, ws: &mut [f32], acc: bool) {
    let (m, kdim, n) = (a.rows, a.cols, b.cols);
    debug_assert_eq!((out.rows, out.cols), (m, n), "gemm_nn_into shape");
    if m == 0 || n == 0 {
        return;
    }
    if m > CHUNK_ROWS && m * kdim * n >= PAR_FLOPS && threads::num_threads() > 1 {
        let res = gemm_nn(a, b); // plan-lint: allow-alloc (multi-thread fallback)
        fold(out, &res, acc);
        return;
    }
    nn_block_ws(&a.data, kdim, &b.data, n, &mut out.data, ws, acc);
}

/// `Aᵀ·B` into a pre-shaped output using caller scratch (`ws` at least
/// [`tn_ws_len`]`(a.cols, a.rows)`); with `acc`, adds the product.
pub(crate) fn gemm_tn_into(a: &Matrix, b: &Matrix, out: &mut Matrix, ws: &mut [f32], acc: bool) {
    let (rdim, m, n) = (a.rows, a.cols, b.cols);
    debug_assert_eq!((out.rows, out.cols), (m, n), "gemm_tn_into shape");
    if m == 0 || n == 0 {
        return;
    }
    if m > CHUNK_ROWS && m * rdim * n >= PAR_FLOPS && threads::num_threads() > 1 {
        let res = gemm_tn(a, b); // plan-lint: allow-alloc (multi-thread fallback)
        fold(out, &res, acc);
        return;
    }
    tn_block_ws(&a.data, m, rdim, 0, &b.data, n, &mut out.data, ws, acc);
}

/// `A·Bᵀ` into a pre-shaped output (no scratch needed); with `acc`,
/// adds the product elementwise.
pub(crate) fn gemm_nt_into(a: &Matrix, b: &Matrix, out: &mut Matrix, acc: bool) {
    let (m, kdim, n) = (a.rows, a.cols, b.rows);
    debug_assert_eq!((out.rows, out.cols), (m, n), "gemm_nt_into shape");
    if m == 0 || n == 0 {
        return;
    }
    if m > CHUNK_ROWS && m * kdim * n >= PAR_FLOPS && threads::num_threads() > 1 {
        let res = gemm_nt(a, b); // plan-lint: allow-alloc (multi-thread fallback)
        fold(out, &res, acc);
        return;
    }
    nt_block_ws(&a.data, kdim, &b.data, n, &mut out.data, acc);
}

/// Dot product with eight independent partial sums and a fixed
/// reduction tree: deterministic run-to-run, reassociated relative to a
/// left-to-right sum (agreement with the naive kernel is ~1e-5
/// relative).
#[inline]
fn dot8(x: &[f32], y: &[f32]) -> f32 {
    let mut p = [0.0f32; 8];
    let xc = x.chunks_exact(8);
    let yc = y.chunks_exact(8);
    let tail_x = xc.remainder();
    let tail_y = yc.remainder();
    for (xs, ys) in xc.zip(yc) {
        for l in 0..8 {
            p[l] += xs[l] * ys[l];
        }
    }
    let mut tail = 0.0f32;
    for (a, b) in tail_x.iter().zip(tail_y.iter()) {
        tail += a * b;
    }
    (((p[0] + p[1]) + (p[2] + p[3])) + ((p[4] + p[5]) + (p[6] + p[7]))) + tail
}

#[cfg(test)]
mod tests {
    use crate::matrix::Matrix;
    use crate::threads;
    use gendt_rng::Rng;

    #[test]
    fn fast_transcendentals_match_libm() {
        let mut x = -87.0f32;
        while x <= 88.0 {
            let rel = (super::fast_exp(x) - x.exp()).abs() / x.exp();
            assert!(rel <= 5e-7, "fast_exp({x}) off by {rel:e} relative");
            x += 0.137;
        }
        let mut x = -20.0f32;
        while x <= 20.0 {
            let ds = (super::fast_sigmoid(x) - (1.0 / (1.0 + (-x as f64).exp())) as f32).abs();
            assert!(ds <= 2e-6, "fast_sigmoid({x}) off by {ds:e}");
            let dt = (super::fast_tanh(x) - x.tanh()).abs();
            assert!(dt <= 2e-6, "fast_tanh({x}) off by {dt:e}");
            x += 0.0173;
        }
        // Saturation behaves: no NaN/inf at the extremes.
        for x in [-1e9f32, -100.0, 100.0, 1e9] {
            assert!(super::fast_exp(x).is_finite());
            assert!((0.0..=1.0).contains(&super::fast_sigmoid(x)));
            assert!((-1.0..=1.0).contains(&super::fast_tanh(x)));
        }
    }

    fn rand_mat(rng: &mut Rng, r: usize, c: usize) -> Matrix {
        Matrix::from_vec(
            r,
            c,
            (0..r * c).map(|_| rng.uniform(-2.0, 2.0) as f32).collect(),
        )
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32, ctx: &str) {
        assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
        for (i, (x, y)) in a.data.iter().zip(b.data.iter()).enumerate() {
            let scale = 1.0f32.max(x.abs()).max(y.abs());
            assert!((x - y).abs() <= tol * scale, "{ctx}: elem {i}: {x} vs {y}");
        }
    }

    /// Shapes covering empty, 1-row/1-col, sub-tile, exact-tile, and
    /// beyond-tile cases for every dimension.
    const DIMS: [usize; 6] = [0, 1, 3, 16, 17, 33];

    #[test]
    fn blocked_kernels_match_naive_across_shape_grid() {
        let mut rng = Rng::seed_from(42);
        for &m in &DIMS {
            for &k in &DIMS {
                for &n in &DIMS {
                    let a = rand_mat(&mut rng, m, k);
                    let b = rand_mat(&mut rng, k, n);
                    assert_close(
                        &a.matmul(&b),
                        &a.matmul_naive(&b),
                        1e-5,
                        &format!("nn {m}x{k}x{n}"),
                    );
                    let at = rand_mat(&mut rng, k, m);
                    assert_close(
                        &at.matmul_tn(&b),
                        &at.matmul_tn_naive(&b),
                        1e-5,
                        &format!("tn {m}x{k}x{n}"),
                    );
                    let bt = rand_mat(&mut rng, n, k);
                    assert_close(
                        &a.matmul_nt(&bt),
                        &a.matmul_nt_naive(&bt),
                        1e-5,
                        &format!("nt {m}x{k}x{n}"),
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_nn_and_tn_are_bitwise_equal_to_naive() {
        // Same per-element accumulation order as the reference: results
        // must agree exactly, not just to tolerance (no zeros in the
        // inputs, so the reference's skip-zero branch never fires).
        let mut rng = Rng::seed_from(7);
        for (m, k, n) in [(5, 9, 13), (64, 100, 32), (130, 67, 70)] {
            let a = rand_mat(&mut rng, m, k);
            let b = rand_mat(&mut rng, k, n);
            assert_eq!(a.matmul(&b).data, a.matmul_naive(&b).data, "nn {m}x{k}x{n}");
            let at = rand_mat(&mut rng, k, m);
            assert_eq!(
                at.matmul_tn(&b).data,
                at.matmul_tn_naive(&b).data,
                "tn {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn into_variants_match_allocating_kernels_bitwise() {
        // Both store and accumulate forms, against gemm + add_assign.
        // Thread count is irrelevant: every path is bitwise identical
        // by the determinism contract, including the multi-thread
        // fallback inside the _into kernels.
        let mut rng = Rng::seed_from(23);
        for (m, k, n) in [(5, 9, 13), (64, 100, 32), (130, 67, 70)] {
            let a = rand_mat(&mut rng, m, k);
            let b = rand_mat(&mut rng, k, n);
            let at = rand_mat(&mut rng, k, m);
            let bt = rand_mat(&mut rng, n, k);
            let base = rand_mat(&mut rng, m, n);
            let mut ws = vec![0.0f32; super::nn_ws_len(k).max(super::tn_ws_len(m, k))];

            let mut out = Matrix::zeros(m, n);
            super::gemm_nn_into(&a, &b, &mut out, &mut ws, false);
            assert_eq!(out.data, super::gemm_nn(&a, &b).data, "nn into {m}x{k}x{n}");
            let mut acc = base.clone();
            super::gemm_nn_into(&a, &b, &mut acc, &mut ws, true);
            let mut refr = base.clone();
            refr.add_assign(&super::gemm_nn(&a, &b));
            assert_eq!(acc.data, refr.data, "nn acc {m}x{k}x{n}");

            let mut out = Matrix::zeros(m, n);
            super::gemm_tn_into(&at, &b, &mut out, &mut ws, false);
            assert_eq!(
                out.data,
                super::gemm_tn(&at, &b).data,
                "tn into {m}x{k}x{n}"
            );
            let mut acc = base.clone();
            super::gemm_tn_into(&at, &b, &mut acc, &mut ws, true);
            let mut refr = base.clone();
            refr.add_assign(&super::gemm_tn(&at, &b));
            assert_eq!(acc.data, refr.data, "tn acc {m}x{k}x{n}");

            let mut out = Matrix::zeros(m, n);
            super::gemm_nt_into(&a, &bt, &mut out, false);
            assert_eq!(
                out.data,
                super::gemm_nt(&a, &bt).data,
                "nt into {m}x{k}x{n}"
            );
            let mut acc = base.clone();
            super::gemm_nt_into(&a, &bt, &mut acc, true);
            let mut refr = base.clone();
            refr.add_assign(&super::gemm_nt(&a, &bt));
            assert_eq!(acc.data, refr.data, "nt acc {m}x{k}x{n}");
        }
    }

    #[test]
    fn parallel_dispatch_is_bitwise_identical_to_single_thread() {
        // All three products sized to cross the parallel threshold
        // (output rows > 64 and > 2^21 multiply-adds).
        let mut rng = Rng::seed_from(11);
        let a = rand_mat(&mut rng, 200, 128);
        let b = rand_mat(&mut rng, 128, 120);
        let at = rand_mat(&mut rng, 300, 128);
        let bt2 = rand_mat(&mut rng, 300, 100);
        let bt = rand_mat(&mut rng, 120, 128);
        threads::set_num_threads(1);
        let nn1 = a.matmul(&b);
        let tn1 = at.matmul_tn(&bt2);
        let nt1 = a.matmul_nt(&bt);
        threads::set_num_threads(4);
        let nn4 = a.matmul(&b);
        let tn4 = at.matmul_tn(&bt2);
        let nt4 = a.matmul_nt(&bt);
        threads::set_num_threads(1);
        assert_eq!(nn1.data, nn4.data);
        assert_eq!(tn1.data, tn4.data);
        assert_eq!(nt1.data, nt4.data);
    }
}
