//! Neural-network layers built on the autograd [`Graph`].
//!
//! Layers own [`ParamId`]s inside a shared [`ParamStore`] and expose a
//! `forward` that records ops onto a caller-supplied graph. This keeps one
//! training step = one graph, with parameters persisting across steps.

use crate::graph::{Graph, NodeId};
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use crate::rng::Rng;
use serde::{Deserialize, Serialize};

/// Fully-connected layer `y = x W + b`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    /// Weight `in_dim x out_dim`.
    pub w: ParamId,
    /// Bias `1 x out_dim`.
    pub b: ParamId,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Output feature dimension.
    pub out_dim: usize,
}

impl Linear {
    /// Register a new layer's parameters in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let w = store.add_xavier(&format!("{name}.w"), in_dim, out_dim, rng);
        let b = store.add_zeros(&format!("{name}.b"), 1, out_dim);
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Record `x W + b` on `g`. `x` is `batch x in_dim`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        self.forward_mode(g, store, x, false)
    }

    /// Like [`Linear::forward`], but with `frozen = true` the weights enter
    /// as constants (no gradient to the parameters; gradients still flow
    /// through to `x`).
    pub fn forward_mode(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        frozen: bool,
    ) -> NodeId {
        let (w, b) = if frozen {
            (g.param_frozen(store, self.w), g.param_frozen(store, self.b))
        } else {
            (g.param(store, self.w), g.param(store, self.b))
        };
        let xw = g.matmul(x, w);
        g.add_row(xw, b)
    }
}

/// State carried by an LSTM across time steps (and across generation
/// batches, for long-series coherence).
#[derive(Clone, Debug)]
pub struct LstmState {
    /// Hidden state `batch x hidden`.
    pub h: Matrix,
    /// Cell memory `batch x hidden`.
    pub c: Matrix,
}

impl LstmState {
    /// Zero state for the given batch size and hidden dimension.
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        LstmState {
            h: Matrix::zeros(batch, hidden),
            c: Matrix::zeros(batch, hidden),
        }
    }
}

/// LSTM state expressed as graph nodes (used while unrolling).
#[derive(Clone, Copy, Debug)]
pub struct LstmNodeState {
    /// Hidden-state node.
    pub h: NodeId,
    /// Cell-memory node.
    pub c: NodeId,
}

/// Configuration of the SRNN stochastic layer (paper §4.3.4, appendix A.2):
/// uniform noise added to the LSTM hidden state and memory each step, then
/// renormalized so the per-row total stays unchanged.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StochasticCfg {
    /// Noise intensity on the hidden state (`a_h`, paper default 2).
    pub a_h: f32,
    /// Noise intensity on the memory (`a_c`, paper default 2).
    pub a_c: f32,
}

impl StochasticCfg {
    /// Paper default `a_h = a_c = 2`.
    pub fn paper_default() -> Self {
        StochasticCfg { a_h: 2.0, a_c: 2.0 }
    }
}

/// A single-layer LSTM with optional SRNN stochastic layers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Lstm {
    /// Input-to-gates weight `in_dim x 4*hidden`, gate order `[i, f, g, o]`.
    pub w_ih: ParamId,
    /// Hidden-to-gates weight `hidden x 4*hidden`.
    pub w_hh: ParamId,
    /// Gate bias `1 x 4*hidden` (forget-gate slice initialized to 1).
    pub b: ParamId,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Hidden dimension.
    pub hidden: usize,
}

impl Lstm {
    /// Register a new LSTM's parameters. The forget-gate bias is set to 1,
    /// the standard trick for gradient flow on long sequences.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> Self {
        let w_ih = store.add_xavier(&format!("{name}.w_ih"), in_dim, 4 * hidden, rng);
        let w_hh = store.add_xavier(&format!("{name}.w_hh"), hidden, 4 * hidden, rng);
        let mut bias = Matrix::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            bias.data[c] = 1.0;
        }
        let b = store.add(&format!("{name}.b"), bias);
        Lstm {
            w_ih,
            w_hh,
            b,
            in_dim,
            hidden,
        }
    }

    /// One LSTM step: consumes `x_t` (`batch x in_dim`) and the previous
    /// state, returns the next state.
    pub fn step(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        state: LstmNodeState,
    ) -> LstmNodeState {
        self.step_mode(g, store, x, state, false)
    }

    /// Like [`Lstm::step`], but with `frozen = true` the weights enter as
    /// constants (gradients still flow through to `x` and the state).
    pub fn step_mode(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        state: LstmNodeState,
        frozen: bool,
    ) -> LstmNodeState {
        let (w_ih, w_hh, b) = if frozen {
            (
                g.param_frozen(store, self.w_ih),
                g.param_frozen(store, self.w_hh),
                g.param_frozen(store, self.b),
            )
        } else {
            (
                g.param(store, self.w_ih),
                g.param(store, self.w_hh),
                g.param(store, self.b),
            )
        };
        let xi = g.matmul(x, w_ih);
        let hh = g.matmul(state.h, w_hh);
        let h = self.hidden;
        if crate::kernels::reference_kernels() {
            // Seed-era op-by-op composition, kept as the timing and
            // numeric reference for the fused cell below.
            let pre = g.add(xi, hh);
            let gates = g.add_row(pre, b);
            let i_g = g.slice_cols(gates, 0, h);
            let f_g = g.slice_cols(gates, h, 2 * h);
            let g_g = g.slice_cols(gates, 2 * h, 3 * h);
            let o_g = g.slice_cols(gates, 3 * h, 4 * h);
            let i = g.sigmoid(i_g);
            let f = g.sigmoid(f_g);
            let cand = g.tanh(g_g);
            let o = g.sigmoid(o_g);
            let fc = g.mul(f, state.c);
            let ig = g.mul(i, cand);
            let c_new = g.add(fc, ig);
            let c_tanh = g.tanh(c_new);
            let h_new = g.mul(o, c_tanh);
            LstmNodeState { h: h_new, c: c_new }
        } else {
            let gates = g.add_add_row(xi, hh, b);
            let hc = g.lstm_cell(gates, state.c, h);
            let h_new = g.slice_cols(hc, 0, h);
            let c_new = g.slice_cols(hc, h, 2 * h);
            LstmNodeState { h: h_new, c: c_new }
        }
    }

    /// Apply the SRNN stochastic layer to a state: `h' = (h + a*n) *
    /// sum(h)/sum(h + a*n)` per row, and likewise for `c` (appendix A.2).
    ///
    /// The noise `n` is uniform in `[0, mean(|h_t|)]`, adapting to the
    /// hidden-state magnitude; it enters the graph as a constant so the
    /// renormalization is differentiable with respect to the state.
    pub fn stochastic(
        &self,
        g: &mut Graph,
        cfg: StochasticCfg,
        state: LstmNodeState,
        rng: &mut Rng,
    ) -> LstmNodeState {
        let h = Self::noisy_renorm(g, state.h, cfg.a_h, rng);
        let c = Self::noisy_renorm(g, state.c, cfg.a_c, rng);
        LstmNodeState { h, c }
    }

    /// [`Lstm::stochastic`] with the raw uniform draws supplied by the
    /// caller instead of drawn here.
    ///
    /// `u_h` / `u_c` hold one `uniform01` draw per state element (same
    /// shape as the state); they are consumed only when the matching
    /// noise scale is non-zero, mirroring `stochastic`'s early return.
    /// The cell-packed generator forward uses this to pre-draw noise for
    /// all cell slots in the legacy per-cell order, keeping the RNG
    /// stream — and therefore every output — identical to the unpacked
    /// path.
    pub fn stochastic_with_noise(
        &self,
        g: &mut Graph,
        cfg: StochasticCfg,
        state: LstmNodeState,
        u_h: &Matrix,
        u_c: &Matrix,
    ) -> LstmNodeState {
        let h = Self::noisy_renorm_with(g, state.h, cfg.a_h, u_h);
        let c = Self::noisy_renorm_with(g, state.c, cfg.a_c, u_c);
        LstmNodeState { h, c }
    }

    fn noisy_renorm(g: &mut Graph, x: NodeId, a: f32, rng: &mut Rng) -> NodeId {
        if a == 0.0 {
            return x;
        }
        let (rows, cols) = g.value(x).shape();
        let mut u = Matrix::zeros(rows, cols);
        for v in u.data.iter_mut() {
            *v = rng.uniform01() as f32;
        }
        Self::noisy_renorm_with(g, x, a, &u)
    }

    fn noisy_renorm_with(g: &mut Graph, x: NodeId, a: f32, u: &Matrix) -> NodeId {
        if a == 0.0 {
            return x;
        }
        if !crate::kernels::reference_kernels() {
            return g.noisy_renorm(x, a, u);
        }
        // Seed-era op-by-op composition, kept as the timing and numeric
        // reference for the fused node above.
        let v = g.value(x).clone();
        assert_eq!(u.shape(), v.shape(), "noise shape must match state shape");
        // Per-row noise scale: the (signed) mean of the row — the paper's
        // `ĥ_t`, "the average value of h_t of all hidden dimensions" — so
        // the noise adapts to the hidden-state level and stays small when
        // activations cancel out.
        let mut noise = Matrix::zeros(v.rows, v.cols);
        for r in 0..v.rows {
            let row = v.row_slice(r);
            let mean = row.iter().sum::<f32>() / v.cols.max(1) as f32;
            for c in 0..v.cols {
                noise.data[r * v.cols + c] = u.data[r * v.cols + c] * mean;
            }
        }
        let n = g.input(noise);
        let an = g.scale(n, a);
        let pert = g.add(x, an);
        // ratio = row_sum(x) / row_sum(pert); guard near-zero denominators
        // by offsetting both sums (cancels in the stable regime).
        let sx = g.row_sum(x);
        let sp = g.row_sum(pert);
        let sx_off = g.offset(sx, 1e-3);
        let sp_off = g.offset(sp, 1e-3);
        // ratio = sx_off * 1/sp_off; reciprocal via exp(-ln) is not in the
        // op set, so compute it with a constant-value division trick:
        // treat ratio = sx_off ⊙ recip(sp_off) where recip is built from a
        // constant snapshot. Gradient flows through sx_off only; the
        // denominator is treated as locally constant, which empirically
        // stabilizes training (it only rescales noise).
        let recip_vals = g.value(sp_off).map(|x| 1.0 / x);
        let recip = g.input(recip_vals);
        let ratio = g.mul(sx_off, recip);
        g.mul_col(pert, ratio)
    }
}

/// Multi-layer perceptron with LeakyReLU activations.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    /// The stacked linear layers.
    pub layers: Vec<Linear>,
    /// LeakyReLU negative slope applied between layers (not after the last).
    pub slope: f32,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[in, h1, h2, out]`.
    pub fn new(store: &mut ParamStore, name: &str, sizes: &[usize], rng: &mut Rng) -> Self {
        assert!(
            sizes.len() >= 2,
            "MLP needs at least input and output sizes"
        );
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.fc{i}"), w[0], w[1], rng))
            .collect();
        Mlp { layers, slope: 0.2 }
    }

    /// Forward pass; activation between layers, linear output.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let mut cur = x;
        for (i, layer) in self.layers.iter().enumerate() {
            cur = layer.forward(g, store, cur);
            if i + 1 < self.layers.len() {
                cur = g.leaky_relu(cur, self.slope);
            }
        }
        cur
    }

    /// Forward pass with inverted dropout (keep-prob `1 - p`) before the
    /// final layer, as in the paper's ResGen. Pass `train = false` to
    /// disable the mask (deterministic inference) or `true` to sample it —
    /// MC-dropout uncertainty estimation keeps it on at generation time.
    pub fn forward_dropout(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        p: f32,
        train: bool,
        rng: &mut Rng,
    ) -> NodeId {
        let mut cur = x;
        for (i, layer) in self.layers.iter().enumerate() {
            let last = i + 1 == self.layers.len();
            if last && train && p > 0.0 {
                cur = dropout(g, cur, p, rng);
            }
            cur = layer.forward(g, store, cur);
            if !last {
                cur = g.leaky_relu(cur, self.slope);
            }
        }
        cur
    }
}

/// Inverted dropout: zero each element with probability `p` and scale the
/// survivors by `1/(1-p)` so the expectation is unchanged.
pub fn dropout(g: &mut Graph, x: NodeId, p: f32, rng: &mut Rng) -> NodeId {
    assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
    if p == 0.0 {
        return x;
    }
    let shape = g.value(x).shape();
    let keep = 1.0 - p;
    let mut mask = Matrix::zeros(shape.0, shape.1);
    for m in mask.data.iter_mut() {
        *m = if rng.bernoulli(keep as f64) {
            1.0 / keep
        } else {
            0.0
        };
    }
    let m = g.input(mask);
    g.mul(x, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Adam;

    #[test]
    fn linear_forward_shape() {
        let mut rng = Rng::seed_from(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 5, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(4, 3));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (4, 5));
    }

    #[test]
    fn mlp_learns_xor() {
        let mut rng = Rng::seed_from(2);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[2, 8, 1], &mut rng);
        let mut opt = Adam::new(0.05);
        let xs = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let ys = Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]);
        let mut final_loss = f32::MAX;
        for _ in 0..800 {
            store.zero_grad();
            let mut g = Graph::new();
            let x = g.input(xs.clone());
            let logits = mlp.forward(&mut g, &store, x);
            let pred = g.sigmoid(logits);
            let t = g.input(ys.clone());
            let loss = g.mse_loss(pred, t);
            final_loss = g.value(loss).data[0];
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(final_loss < 0.02, "XOR loss {final_loss}");
    }

    #[test]
    fn lstm_step_shapes_and_state_flow() {
        let mut rng = Rng::seed_from(3);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "lstm", 4, 6, &mut rng);
        let mut g = Graph::new();
        let s0 = LstmState::zeros(2, 6);
        let h0 = g.input(s0.h);
        let c0 = g.input(s0.c);
        let mut st = LstmNodeState { h: h0, c: c0 };
        for _ in 0..3 {
            let x = g.input(Matrix::full(2, 4, 0.5));
            st = lstm.step(&mut g, &store, x, st);
        }
        assert_eq!(g.value(st.h).shape(), (2, 6));
        assert_eq!(g.value(st.c).shape(), (2, 6));
        // Hidden state should have moved away from zero.
        assert!(g.value(st.h).norm_sq() > 0.0);
    }

    #[test]
    fn lstm_learns_to_sum_sequence() {
        // Task: after seeing a sequence of scalars, output their sum / 4.
        let mut rng = Rng::seed_from(4);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "lstm", 1, 8, &mut rng);
        let head = Linear::new(&mut store, "head", 8, 1, &mut rng);
        let mut opt = Adam::new(0.02);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            let batch = 8;
            let tlen = 4;
            let mut seqs = vec![vec![0f32; tlen]; batch];
            let mut targets = vec![0f32; batch];
            for bi in 0..batch {
                for s in seqs[bi].iter_mut() {
                    let v = rng.uniform(-1.0, 1.0) as f32;
                    *s = v;
                    targets[bi] += v / 4.0;
                }
            }
            store.zero_grad();
            let mut g = Graph::new();
            let h0 = g.input(Matrix::zeros(batch, 8));
            let c0 = g.input(Matrix::zeros(batch, 8));
            let mut st = LstmNodeState { h: h0, c: c0 };
            for t in 0..tlen {
                let xt: Vec<f32> = seqs.iter().map(|s| s[t]).collect();
                let x = g.input(Matrix::from_vec(batch, 1, xt));
                st = lstm.step(&mut g, &store, x, st);
            }
            let pred = head.forward(&mut g, &store, st.h);
            let t = g.input(Matrix::from_vec(batch, 1, targets));
            let loss = g.mse_loss(pred, t);
            final_loss = g.value(loss).data[0];
            g.backward(loss, &mut store);
            store.clip_grad_norm(5.0);
            opt.step(&mut store);
        }
        assert!(final_loss < 0.02, "sequence-sum loss {final_loss}");
    }

    #[test]
    fn dropout_scales_survivors() {
        let mut rng = Rng::seed_from(5);
        let mut g = Graph::new();
        let x = g.input(Matrix::full(1, 1000, 1.0));
        let y = dropout(&mut g, x, 0.5, &mut rng);
        let vals = &g.value(y).data;
        // Survivors are exactly 2.0, dropped are 0.0; mean near 1.
        assert!(vals.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        let mean: f32 = vals.iter().sum::<f32>() / 1000.0;
        assert!((mean - 1.0).abs() < 0.15, "dropout mean {mean}");
    }

    #[test]
    fn stochastic_layer_preserves_row_mass_approximately() {
        let mut rng = Rng::seed_from(6);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "l", 2, 16, &mut rng);
        let mut g = Graph::new();
        let h = g.input(Matrix::full(3, 16, 0.5));
        let c = g.input(Matrix::full(3, 16, -0.25));
        let st = LstmNodeState { h, c };
        let noisy = lstm.stochastic(&mut g, StochasticCfg::paper_default(), st, &mut rng);
        // Row sums should be (approximately) preserved by the renorm.
        let hv = g.value(noisy.h);
        for r in 0..3 {
            let s: f32 = hv.row_slice(r).iter().sum();
            assert!((s - 8.0).abs() < 0.05, "row {r} mass {s}");
        }
        // But the values themselves must have changed (noise was injected).
        assert!(hv.data.iter().any(|&v| (v - 0.5).abs() > 1e-4));
    }

    #[test]
    fn stochastic_zero_intensity_is_identity() {
        let mut rng = Rng::seed_from(7);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "l", 2, 4, &mut rng);
        let mut g = Graph::new();
        let h = g.input(Matrix::full(1, 4, 0.3));
        let c = g.input(Matrix::full(1, 4, 0.1));
        let st = LstmNodeState { h, c };
        let out = lstm.stochastic(&mut g, StochasticCfg { a_h: 0.0, a_c: 0.0 }, st, &mut rng);
        assert_eq!(out.h, st.h);
        assert_eq!(out.c, st.c);
    }
}
