//! Opt-in runtime sanitizer for the autograd engine.
//!
//! When enabled — via `GENDT_SANITIZE=1` in the environment or
//! [`set_sanitize`] in-process — every value recorded on a
//! [`crate::graph::Graph`] tape and every gradient produced by the
//! backward pass is checked for NaN/Inf and inconsistent shape metadata
//! at op granularity. A violation panics with the offending op, its
//! attributes, and the state of its inputs, so corruption is caught
//! where it is *born* (e.g. a Gaussian head blowing up) instead of
//! surfacing steps later as a silently wrong fidelity table.
//!
//! The checks cost one linear scan per recorded node and per gradient,
//! so the mode is off by default; `scripts/ci.sh` runs one sanitized
//! smoke train step, and any training run can be sanitized by exporting
//! the environment variable — no rebuild needed.

use gendt_sync::atomic::{AtomicU8, Ordering};

const UNRESOLVED: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Tri-state so the environment is consulted exactly once.
static STATE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// True when sanitizer mode is active.
///
/// First call resolves `GENDT_SANITIZE` (`1`, `true`, or `on` enable it);
/// later calls are a single atomic load. [`set_sanitize`] overrides the
/// environment in-process.
pub fn sanitize_enabled() -> bool {
    // sync: isolated gate; nothing is published through it.
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => {
            let on = matches!(
                std::env::var("GENDT_SANITIZE")
                    .ok()
                    .as_deref()
                    .map(str::trim),
                Some("1") | Some("true") | Some("on")
            );
            // sync: CAS so a racing resolver or an interleaved
            // set_sanitize override wins exactly once.
            let _ = STATE.compare_exchange(
                UNRESOLVED,
                if on { ON } else { OFF },
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            matches!(STATE.load(Ordering::Relaxed), ON)
        }
    }
}

/// Force sanitizer mode on or off in-process (wins over `GENDT_SANITIZE`).
/// Intended for tests and for embedders that sanitize selected phases.
pub fn set_sanitize(on: bool) {
    // sync: explicit override; last writer wins by design.
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_and_sticks() {
        set_sanitize(true);
        assert!(sanitize_enabled());
        set_sanitize(false);
        assert!(!sanitize_enabled());
    }
}
