//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Graph`] is a single-use tape: every op records its inputs and cached
//! forward value; [`Graph::backward`] walks the tape in reverse and pushes
//! gradients to inputs and, for parameter leaves, into the owning
//! [`ParamStore`]. One training step = one graph.
//!
//! The op set is deliberately small — exactly what the GenDT architecture
//! (LSTM + FC + stochastic layers + Gaussian head + GAN losses) needs.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use crate::plan::{Mode, Plan};

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeId(usize);

impl NodeId {
    /// Position of the node on the tape (nodes are numbered in recording
    /// order starting at 0). Used by external tape auditors.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One recorded tape operation.
///
/// The enum is public so external verification tooling (the `gendt-audit`
/// crate) can walk a recorded tape and re-derive every node's shape and
/// inputs with an *exhaustive* `match` — adding a variant without
/// updating the audit rules is a compile error, which is the point.
/// Graphs can only be built through the checked [`Graph`] constructors;
/// the variants carry no invariants of their own beyond what those
/// constructors established.
#[derive(Clone, Debug)]
pub enum Op {
    /// Constant input (no gradient).
    Input,
    /// Parameter leaf; backward accumulates into the store.
    Param(ParamId),
    /// `a * b` (matrix product).
    MatMul(NodeId, NodeId),
    /// `a + b`, elementwise, same shape.
    Add(NodeId, NodeId),
    /// `a - b`, elementwise, same shape.
    Sub(NodeId, NodeId),
    /// `a * b`, elementwise (Hadamard), same shape.
    Mul(NodeId, NodeId),
    /// `a + row_broadcast(b)` where `b` is `1 x cols` (bias add).
    AddRow(NodeId, NodeId),
    /// `a * col_broadcast(b)` where `b` is `rows x 1`.
    MulCol(NodeId, NodeId),
    /// `a * s` for scalar `s`.
    Scale(NodeId, f32),
    /// `a + s` for scalar `s` (the offset shows up in [`Op::describe`]).
    Offset(NodeId, f32),
    /// Elementwise sigmoid.
    Sigmoid(NodeId),
    /// Elementwise tanh.
    Tanh(NodeId),
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(NodeId, f32),
    /// Elementwise exp.
    Exp(NodeId),
    /// Elementwise softplus `ln(1 + e^x)`.
    Softplus(NodeId),
    /// Horizontal concat `[a | b]`.
    ConcatCols(NodeId, NodeId),
    /// Columns `c0..c1` of `a`.
    SliceCols(NodeId, usize, usize),
    /// Rows `r0..r1` of `a`.
    SliceRows(NodeId, usize, usize),
    /// Row-wise sum -> `rows x 1`.
    RowSum(NodeId),
    /// Sum each consecutive group of `group` rows -> `rows/group x cols`.
    SumRowGroups(NodeId, usize),
    /// Fused LSTM cell update: pre-activation `gates` (`rows x 4*hidden`,
    /// ordered `[i | f | g | o]`) plus previous cell state -> `[h | c]`
    /// (`rows x 2*hidden`).
    LstmCell {
        /// Pre-activation gate block, `rows x 4*hidden`, ordered `[i | f | g | o]`.
        gates: NodeId,
        /// Previous cell state, `rows x hidden`.
        c_prev: NodeId,
        /// LSTM hidden size.
        hidden: usize,
    },
    /// Fused SRNN noisy renormalization `(x + a*n) * rowsum(x)/rowsum(x+a*n)`
    /// with the stored noise `n` entering as a constant and the denominator
    /// treated as locally constant (matching the op-by-op composition).
    NoisyRenorm {
        /// Input activations.
        x: NodeId,
        /// Noise amplitude.
        a: f32,
        /// Sampled standard-normal noise, same shape as `x` (constant).
        noise: Matrix,
    },
    /// `(a + b) + row_broadcast(bias)` in one pass (LSTM gate assembly).
    AddAddRow(NodeId, NodeId, NodeId),
    /// Masked group mean: rows of `x` are scaled by the constant column
    /// `mask`, summed in consecutive groups of `group`, and the reduced
    /// rows scaled by the constant column `scale`.
    MaskedGroupMean {
        /// Input rows, `rows x cols` with `rows % group == 0`.
        x: NodeId,
        /// Per-row weight column, `rows x 1` (constant).
        mask: Matrix,
        /// Per-group normalizer column, `rows/group x 1` (constant).
        scale: Matrix,
        /// Consecutive rows reduced per output row.
        group: usize,
    },
    /// Mean of all elements -> `1 x 1`.
    Mean(NodeId),
    /// Mean of squared difference `mean((a-b)^2)` -> `1 x 1`.
    MseLoss(NodeId, NodeId),
    /// Binary cross-entropy with logits against constant targets -> `1 x 1`.
    BceWithLogits(NodeId, Matrix),
    /// Sum of several `1 x 1` scalars with weights.
    WeightedSum(Vec<(NodeId, f32)>),
    /// Gaussian negative log-likelihood of constant targets given
    /// `(mu, sigma)` nodes -> `1 x 1`. Sigma must be positive.
    GaussianNll {
        /// Predicted mean, same shape as `target`.
        mu: NodeId,
        /// Predicted standard deviation (positive), same shape as `target`.
        sigma: NodeId,
        /// Observed values (constant).
        target: Matrix,
    },
}

impl Op {
    /// The variant name, for diagnostics and audit reports.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Input => "Input",
            Op::Param(_) => "Param",
            Op::MatMul(..) => "MatMul",
            Op::Add(..) => "Add",
            Op::Sub(..) => "Sub",
            Op::Mul(..) => "Mul",
            Op::AddRow(..) => "AddRow",
            Op::MulCol(..) => "MulCol",
            Op::Scale(..) => "Scale",
            Op::Offset(..) => "Offset",
            Op::Sigmoid(_) => "Sigmoid",
            Op::Tanh(_) => "Tanh",
            Op::LeakyRelu(..) => "LeakyRelu",
            Op::Exp(_) => "Exp",
            Op::Softplus(_) => "Softplus",
            Op::ConcatCols(..) => "ConcatCols",
            Op::SliceCols(..) => "SliceCols",
            Op::SliceRows(..) => "SliceRows",
            Op::RowSum(_) => "RowSum",
            Op::SumRowGroups(..) => "SumRowGroups",
            Op::LstmCell { .. } => "LstmCell",
            Op::NoisyRenorm { .. } => "NoisyRenorm",
            Op::AddAddRow(..) => "AddAddRow",
            Op::MaskedGroupMean { .. } => "MaskedGroupMean",
            Op::Mean(_) => "Mean",
            Op::MseLoss(..) => "MseLoss",
            Op::BceWithLogits(..) => "BceWithLogits",
            Op::WeightedSum(_) => "WeightedSum",
            Op::GaussianNll { .. } => "GaussianNll",
        }
    }

    /// Human-readable description including the scalar attributes that
    /// change the op's semantics (scale factor, offset, slice bounds,
    /// group size, …). Used by sanitizer panics and verifier reports.
    pub fn describe(&self) -> String {
        match self {
            Op::Scale(_, s) => format!("Scale(*{s})"),
            Op::Offset(_, s) => format!("Offset(+{s})"),
            Op::LeakyRelu(_, slope) => format!("LeakyRelu(slope={slope})"),
            Op::SliceCols(_, c0, c1) => format!("SliceCols({c0}..{c1})"),
            Op::SliceRows(_, r0, r1) => format!("SliceRows({r0}..{r1})"),
            Op::SumRowGroups(_, group) => format!("SumRowGroups(group={group})"),
            Op::LstmCell { hidden, .. } => format!("LstmCell(hidden={hidden})"),
            Op::NoisyRenorm { a, .. } => format!("NoisyRenorm(a={a})"),
            Op::MaskedGroupMean { group, .. } => format!("MaskedGroupMean(group={group})"),
            Op::WeightedSum(terms) => format!("WeightedSum({} terms)", terms.len()),
            other => other.name().to_string(),
        }
    }

    /// The tape nodes this op reads, in argument order. Leaves (inputs,
    /// parameters) have none; constant matrices stored inside an op (noise,
    /// masks, targets) are not nodes and do not appear here.
    pub fn inputs(&self) -> Vec<NodeId> {
        match self {
            Op::Input | Op::Param(_) => Vec::new(),
            Op::MatMul(a, b)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::AddRow(a, b)
            | Op::MulCol(a, b)
            | Op::ConcatCols(a, b)
            | Op::MseLoss(a, b) => vec![*a, *b],
            Op::Scale(a, _)
            | Op::Offset(a, _)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::LeakyRelu(a, _)
            | Op::Exp(a)
            | Op::Softplus(a)
            | Op::SliceCols(a, _, _)
            | Op::SliceRows(a, _, _)
            | Op::RowSum(a)
            | Op::SumRowGroups(a, _)
            | Op::Mean(a)
            | Op::BceWithLogits(a, _)
            | Op::NoisyRenorm { x: a, .. }
            | Op::MaskedGroupMean { x: a, .. } => vec![*a],
            Op::LstmCell { gates, c_prev, .. } => vec![*gates, *c_prev],
            Op::AddAddRow(a, b, bias) => vec![*a, *b, *bias],
            Op::WeightedSum(terms) => terms.iter().map(|&(id, _)| id).collect(),
            Op::GaussianNll { mu, sigma, .. } => vec![*mu, *sigma],
        }
    }
}

struct Node {
    op: Op,
    value: Matrix,
    grad: Option<Matrix>,
    needs_grad: bool,
    /// Whether [`Graph::value`] was called on this node — an *external*
    /// read whose result escaped the tape. The plan compiler pins such
    /// values in the arena (and refuses to fuse them away) so replay can
    /// serve the same reads. `Cell` because `value` takes `&self`.
    ext: std::cell::Cell<bool>,
}

/// A single-use reverse-mode autodiff tape.
///
/// A graph runs in one of two modes (see [`crate::plan`]): **record**
/// (the default — ops execute eagerly and append to the tape) or
/// **replay** ([`Graph::replay`] — the same builder code re-executes a
/// compiled [`Plan`] against its preallocated arena, with every
/// constructor validating that it matches the recorded step). Builder
/// code is mode-agnostic; only construction differs.
pub struct Graph {
    nodes: Vec<Node>,
    /// One leaf node per parameter: repeated [`Graph::param`] calls for
    /// the same id reuse the node (and its value clone) instead of
    /// cloning the weight matrix once per use.
    param_nodes: std::collections::HashMap<ParamId, NodeId>,
    /// Op profiler: completion time of the previous `push`, so the gap
    /// to the next push (the op's forward compute in the caller) can be
    /// attributed to the op being recorded. Zero until the first traced
    /// push; only read while `gendt_trace::trace_enabled()`.
    prof_last_ns: u64,
    /// Record (append to the tape) or replay (execute a compiled plan).
    mode: Mode,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

/// Numerically-stable libm sigmoid: the reference activation, also used
/// unconditionally by the softplus and BCE backward passes.
pub(crate) fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Gate activations of one LSTM row: sigmoid over the `i`/`f` and `o`
/// blocks, tanh over the candidate block, dispatched over the active
/// kernel set exactly like the tape's cell forward/backward.
pub(crate) fn cell_act(gr: &[f32], act: &mut [f32], hidden: usize) {
    if crate::kernels::reference_kernels() {
        cell_act_with(gr, act, hidden, stable_sigmoid, f32::tanh);
    } else {
        cell_act_with(
            gr,
            act,
            hidden,
            crate::kernels::fast_sigmoid,
            crate::kernels::fast_tanh,
        );
    }
}

fn cell_act_with(
    gr: &[f32],
    act: &mut [f32],
    hidden: usize,
    sig: impl Fn(f32) -> f32,
    th: impl Fn(f32) -> f32,
) {
    for (a, &x) in act[..2 * hidden].iter_mut().zip(&gr[..2 * hidden]) {
        *a = sig(x); // i, f
    }
    for (a, &x) in act[2 * hidden..3 * hidden]
        .iter_mut()
        .zip(&gr[2 * hidden..3 * hidden])
    {
        *a = th(x); // candidate
    }
    for (a, &x) in act[3 * hidden..].iter_mut().zip(&gr[3 * hidden..]) {
        *a = sig(x); // o
    }
}

/// Forward pass of the fused LSTM cell, monomorphized over the activation
/// pair (polynomial kernels or the libm reference) so each instantiation
/// stays a straight-line vectorizable loop.
fn lstm_cell_forward(
    vg: &Matrix,
    vc: &Matrix,
    hidden: usize,
    sig: impl Fn(f32) -> f32,
    th: impl Fn(f32) -> f32,
) -> Matrix {
    let rows = vg.rows;
    let mut v = Matrix::zeros(rows, 2 * hidden);
    // Per-gate scratch, reused across rows; each pass below runs over a
    // contiguous slice so the activation kernels vectorize.
    let mut act = vec![0.0f32; 4 * hidden];
    for r in 0..rows {
        let gr = &vg.data[r * 4 * hidden..(r + 1) * 4 * hidden];
        let cp = &vc.data[r * hidden..(r + 1) * hidden];
        for (a, &x) in act[..2 * hidden].iter_mut().zip(&gr[..2 * hidden]) {
            *a = sig(x); // i, f
        }
        for (a, &x) in act[2 * hidden..3 * hidden]
            .iter_mut()
            .zip(&gr[2 * hidden..3 * hidden])
        {
            *a = th(x); // candidate
        }
        for (a, &x) in act[3 * hidden..].iter_mut().zip(&gr[3 * hidden..]) {
            *a = sig(x); // o
        }
        let (i_v, rest) = act.split_at(hidden);
        let (f_v, rest) = rest.split_at(hidden);
        let (cand, o_v) = rest.split_at(hidden);
        let (h_out, c_out) = v.data[r * 2 * hidden..(r + 1) * 2 * hidden].split_at_mut(hidden);
        for k in 0..hidden {
            c_out[k] = f_v[k] * cp[k] + i_v[k] * cand[k];
        }
        for k in 0..hidden {
            h_out[k] = o_v[k] * th(c_out[k]);
        }
    }
    v
}

/// Backward pass of the fused LSTM cell. Gate activations are recomputed
/// from the saved pre-activations (bitwise the forward values, since the
/// same kernel runs on the same inputs); returns `(d_gates, d_c_prev)`.
fn lstm_cell_backward(
    grad: &Matrix,
    vg: &Matrix,
    vc: &Matrix,
    hidden: usize,
    sig: impl Fn(f32) -> f32,
    th: impl Fn(f32) -> f32,
) -> (Matrix, Matrix) {
    let rows = vg.rows;
    let mut dg = Matrix::zeros(rows, 4 * hidden);
    let mut dc = Matrix::zeros(rows, hidden);
    let mut act = vec![0.0f32; 4 * hidden];
    let mut dct = vec![0.0f32; 2 * hidden];
    for r in 0..rows {
        let gr = &vg.data[r * 4 * hidden..(r + 1) * 4 * hidden];
        let cp = &vc.data[r * hidden..(r + 1) * hidden];
        let go = &grad.data[r * 2 * hidden..(r + 1) * 2 * hidden];
        for (a, &x) in act[..2 * hidden].iter_mut().zip(&gr[..2 * hidden]) {
            *a = sig(x); // i, f
        }
        for (a, &x) in act[2 * hidden..3 * hidden]
            .iter_mut()
            .zip(&gr[2 * hidden..3 * hidden])
        {
            *a = th(x); // candidate
        }
        for (a, &x) in act[3 * hidden..].iter_mut().zip(&gr[3 * hidden..]) {
            *a = sig(x); // o
        }
        let (i_v, rest) = act.split_at(hidden);
        let (f_v, rest) = rest.split_at(hidden);
        let (cand, o_v) = rest.split_at(hidden);
        let (gh, gc) = go.split_at(hidden);
        let (ct, dc_total) = dct.split_at_mut(hidden);
        for k in 0..hidden {
            ct[k] = th(f_v[k] * cp[k] + i_v[k] * cand[k]);
        }
        for k in 0..hidden {
            dc_total[k] = gc[k] + gh[k] * o_v[k] * (1.0 - ct[k] * ct[k]);
        }
        let dgr = &mut dg.data[r * 4 * hidden..(r + 1) * 4 * hidden];
        let dcr = &mut dc.data[r * hidden..(r + 1) * hidden];
        for k in 0..hidden {
            dgr[k] = dc_total[k] * cand[k] * i_v[k] * (1.0 - i_v[k]);
            dgr[hidden + k] = dc_total[k] * cp[k] * f_v[k] * (1.0 - f_v[k]);
            dgr[2 * hidden + k] = dc_total[k] * i_v[k] * (1.0 - cand[k] * cand[k]);
            dgr[3 * hidden + k] = gh[k] * ct[k] * o_v[k] * (1.0 - o_v[k]);
            dcr[k] = dc_total[k] * f_v[k];
        }
    }
    (dg, dc)
}

impl Graph {
    /// Empty tape in record mode.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::with_capacity(256),
            param_nodes: std::collections::HashMap::new(),
            prof_last_ns: 0,
            mode: Mode::Record,
        }
    }

    /// A graph that *replays* a compiled plan: the same builder code that
    /// recorded the plan re-executes against its arena, and
    /// [`Graph::into_plan`] recovers the plan afterwards for re-caching.
    /// Allocates nothing.
    pub fn replay(mut plan: Plan) -> Self {
        plan.param_memo.clear();
        Graph {
            nodes: Vec::new(),
            param_nodes: std::collections::HashMap::new(),
            prof_last_ns: 0,
            mode: Mode::Replay { plan, cursor: 0 },
        }
    }

    /// Finish the tape into a compiled [`Plan`] (record mode), or recover
    /// the replayed plan for re-caching (replay mode). `loss` names the
    /// node [`Graph::backward`] runs from, or `None` for forward-only
    /// (generation) plans.
    ///
    /// # Panics
    /// Panics in replay mode if the builder did not replay the full
    /// recorded op sequence — the plan key failed to determine the tape.
    pub fn into_plan(self, loss: Option<NodeId>) -> Plan {
        match self.mode {
            Mode::Record => crate::plan::compile(
                self.nodes
                    .into_iter()
                    .map(|n| crate::plan::Recorded {
                        op: n.op,
                        rows: n.value.rows,
                        cols: n.value.cols,
                        needs_grad: n.needs_grad,
                        ext: n.ext.get(),
                    })
                    .collect(),
                loss.map(|l| l.0),
            ),
            Mode::Replay { plan, cursor } => {
                assert_eq!(
                    cursor,
                    plan.len(),
                    "plan replay ended early: {cursor} of {} recorded steps ran; \
                     the plan cache key does not fully determine the op sequence",
                    plan.len()
                );
                plan
            }
        }
    }

    /// Replay-mode guard shared by the op constructors: match the op
    /// being built against the recorded step at the cursor (the `check`
    /// closure also refreshes per-step constants stored inside the op),
    /// advance, and evaluate the step into the arena. Returns `None` in
    /// record mode.
    fn r_step(
        &mut self,
        expect: &'static str,
        check: impl FnOnce(&mut Op) -> bool,
        extra: Option<&Matrix>,
    ) -> Option<NodeId> {
        let Mode::Replay { plan, cursor } = &mut self.mode else {
            return None;
        };
        let i = *cursor;
        plan.expect_step(i, expect);
        if !check(&mut plan.steps[i].op) {
            plan.diverged(i, expect);
        }
        *cursor = i + 1;
        plan.eval(i, extra);
        Some(NodeId(i))
    }

    /// Replay-mode guard for input-like leaves: the recorded step must be
    /// an `Input` with the same gradient flag and shape; its arena slot
    /// receives the fresh value.
    fn r_input(&mut self, value: &Matrix, needs_grad: bool) -> Option<NodeId> {
        let Mode::Replay { plan, cursor } = &mut self.mode else {
            return None;
        };
        let i = *cursor;
        plan.expect_step(i, "Input");
        if !matches!(plan.steps[i].op, Op::Input) || plan.steps[i].needs_grad != needs_grad {
            plan.diverged(i, "Input");
        }
        *cursor = i + 1;
        plan.write_value(i, value);
        Some(NodeId(i))
    }

    /// Replay-mode guard for parameter leaves: synchronize the plan's
    /// parameter slots against the store (version-gated, so unchanged
    /// stores cost one integer compare), then either return the memoized
    /// step for this id — mirroring record-mode memoization — or match
    /// and advance past the recorded `Param` step.
    fn r_param(&mut self, store: &ParamStore, id: ParamId) -> Option<NodeId> {
        let Mode::Replay { plan, cursor } = &mut self.mode else {
            return None;
        };
        plan.sync_params(store);
        let memoize = !crate::kernels::reference_kernels();
        if memoize {
            if let Some(&(_, step)) = plan.param_memo.iter().find(|&&(pid, _)| pid == id) {
                return Some(NodeId(step as usize));
            }
        }
        let i = *cursor;
        plan.expect_step(i, "Param");
        if !matches!(plan.steps[i].op, Op::Param(p) if p == id) {
            plan.diverged(i, "Param");
        }
        *cursor = i + 1;
        if memoize {
            plan.param_memo.push((id, i as u32));
        }
        Some(NodeId(i))
    }

    fn push(&mut self, op: Op, value: Matrix, needs_grad: bool) -> NodeId {
        if crate::sanitize::sanitize_enabled() {
            self.sanitize_forward(&op, &value);
        }
        if gendt_trace::trace_enabled() {
            self.profile_forward(&op, &value);
        }
        self.nodes.push(Node {
            op,
            value,
            grad: None,
            needs_grad,
            ext: std::cell::Cell::new(false),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Op-profiler forward hook: the wall time since the previous push
    /// completed is attributed to the op being recorded — every op's
    /// forward value is computed by its `Graph` constructor immediately
    /// before `push`, so the gap *is* that op's forward compute (plus
    /// negligible recording overhead). The first push of a tape gets a
    /// zero duration; it has no predecessor to measure from.
    fn profile_forward(&mut self, op: &Op, value: &Matrix) {
        let now = gendt_trace::now_ns();
        let dur = if self.prof_last_ns == 0 {
            0
        } else {
            now.saturating_sub(self.prof_last_ns)
        };
        let (flops, bytes) = self.op_cost(op, value);
        gendt_trace::record_op(op.name(), gendt_trace::Phase::Forward, dur, flops, bytes);
        self.prof_last_ns = gendt_trace::now_ns();
    }

    /// Order-of-magnitude FLOP and byte-traffic estimates for one op
    /// execution, from the shapes on the tape. MatMul is exact
    /// (`2·m·k·n`); elementwise and reduction ops count a few flops per
    /// element; bytes assume every input and the output move once.
    /// Backward visits reuse the same estimate — gradient kernels touch
    /// the same operands at the same shapes.
    fn op_cost(&self, op: &Op, out: &Matrix) -> (u64, u64) {
        let el = |id: &NodeId| self.nodes[id.0].value.data.len() as u64;
        let out_el = out.data.len() as u64;
        let in_el: u64 = op.inputs().iter().map(el).sum();
        let bytes = 4 * (in_el + out_el);
        let flops = match op {
            Op::Input | Op::Param(_) => 0,
            Op::MatMul(a, b) => {
                let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                2 * va.rows as u64 * va.cols as u64 * vb.cols as u64
            }
            // Transcendental activations: charge a handful of flops per
            // element for the polynomial kernels.
            Op::Sigmoid(_) | Op::Tanh(_) | Op::Exp(_) | Op::Softplus(_) => 8 * out_el,
            // Fused cell: 4 gate activations plus the state arithmetic.
            Op::LstmCell { gates, .. } => 12 * el(gates),
            Op::NoisyRenorm { .. } => 6 * out_el,
            Op::GaussianNll { mu, .. } => 8 * el(mu),
            Op::MseLoss(a, _) | Op::BceWithLogits(a, _) => 4 * el(a),
            _ => in_el.max(out_el),
        };
        (flops, bytes)
    }

    /// Sanitizer-mode forward check: every value recorded on the tape must
    /// have consistent shape metadata and contain only finite numbers.
    /// Panics with the offending op, its attributes, and the state of its
    /// inputs, so a NaN is caught at the op that *created* it rather than
    /// steps later in a loss or a checkpoint.
    fn sanitize_forward(&self, op: &Op, value: &Matrix) {
        if value.data.len() != value.rows * value.cols {
            panic!(
                "GENDT_SANITIZE: op {} (node {}) produced inconsistent shape metadata: \
                 {}x{} but {} elements{}",
                op.describe(),
                self.nodes.len(),
                value.rows,
                value.cols,
                value.data.len(),
                self.sanitize_inputs(op)
            );
        }
        if value.has_non_finite() {
            panic!(
                "GENDT_SANITIZE: op {} (node {}) produced a non-finite value (shape {}x{}){}",
                op.describe(),
                self.nodes.len(),
                value.rows,
                value.cols,
                self.sanitize_inputs(op)
            );
        }
    }

    /// One line per input node: op, shape, and whether it already holds
    /// non-finite values (i.e. whether the corruption is upstream).
    fn sanitize_inputs(&self, op: &Op) -> String {
        let mut s = String::new();
        for id in op.inputs() {
            let n = &self.nodes[id.0];
            s.push_str(&format!(
                "\n  input node {} = {} (shape {}x{}, non_finite={})",
                id.0,
                n.op.describe(),
                n.value.rows,
                n.value.cols,
                n.value.has_non_finite()
            ));
        }
        s
    }

    fn needs(&self, id: NodeId) -> bool {
        self.nodes[id.0].needs_grad
    }

    /// Forward value of a node.
    ///
    /// In record mode this also marks the node as *externally read*: the
    /// plan compiler pins such values in the arena so replays can serve
    /// the same read (any value a builder inspects mid-build — e.g. the
    /// generator's autoregressive feedback — must be read identically on
    /// every execution of the same plan key, which it is, being the same
    /// code).
    pub fn value(&self, id: NodeId) -> &Matrix {
        if let Mode::Replay { plan, cursor } = &self.mode {
            return plan.ext_value(id.0, *cursor);
        }
        let n = &self.nodes[id.0];
        n.ext.set(true);
        &n.value
    }

    /// The recorded operation of a node (for tape auditing).
    pub fn op(&self, id: NodeId) -> &Op {
        if let Mode::Replay { plan, .. } = &self.mode {
            return &plan.steps[id.0].op;
        }
        &self.nodes[id.0].op
    }

    /// Whether a node participates in gradient computation.
    pub fn node_needs_grad(&self, id: NodeId) -> bool {
        if let Mode::Replay { plan, .. } = &self.mode {
            return plan.steps[id.0].needs_grad;
        }
        self.nodes[id.0].needs_grad
    }

    /// All node ids on the tape, in recording order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId)
    }

    /// Gradient of a node after [`Graph::backward`]; `None` if it did not
    /// participate in the loss or does not require gradients.
    ///
    /// # Panics
    /// Panics in replay mode: plan execution keeps gradients in reused
    /// arena slots and does not retain them for inspection. Inspect
    /// gradients on a record-mode graph (the interpreted reference).
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        assert!(
            matches!(self.mode, Mode::Record),
            "node gradients are not inspectable in plan replay mode"
        );
        self.nodes[id.0].grad.as_ref()
    }

    /// Number of nodes recorded (or replayed) so far.
    pub fn len(&self) -> usize {
        if let Mode::Replay { cursor, .. } = &self.mode {
            return *cursor;
        }
        self.nodes.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a constant (non-differentiable) input.
    pub fn input(&mut self, value: Matrix) -> NodeId {
        if let Some(n) = self.r_input(&value, false) {
            return n;
        }
        self.push(Op::Input, value, false)
    }

    /// Insert a constant input from a reference, avoiding the caller-side
    /// move (and, in replay mode, any allocation: the value is copied
    /// straight into the node's arena slot).
    pub fn input_ref(&mut self, value: &Matrix) -> NodeId {
        if let Some(n) = self.r_input(value, false) {
            return n;
        }
        self.push(Op::Input, value.clone(), false)
    }

    /// Insert a constant input that still receives a gradient (used by
    /// tests and by generator-through-discriminator plumbing).
    pub fn input_with_grad(&mut self, value: Matrix) -> NodeId {
        if let Some(n) = self.r_input(&value, true) {
            return n;
        }
        self.push(Op::Input, value, true)
    }

    /// Leaf a parameter into the graph. The backward pass accumulates its
    /// gradient into the store passed to [`Graph::backward`] — so a graph
    /// must only contain trainable params from ONE store; params of other
    /// models must enter via [`Graph::param_frozen`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        if let Some(n) = self.r_param(store, id) {
            return n;
        }
        if crate::kernels::reference_kernels() {
            // Seed behavior: a fresh leaf (and value clone) per use.
            return self.push(Op::Param(id), store.value(id).clone(), true);
        }
        if let Some(&n) = self.param_nodes.get(&id) {
            return n;
        }
        let n = self.push(Op::Param(id), store.value(id).clone(), true);
        self.param_nodes.insert(id, n);
        n
    }

    /// Leaf a parameter as a frozen constant: gradients flow *through* ops
    /// using it (e.g. to the data side of a matmul) but the parameter
    /// itself receives no gradient. Used for the discriminator inside the
    /// generator's update graph.
    pub fn param_frozen(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        if let Some(n) = self.r_input(store.value(id), false) {
            return n;
        }
        self.push(Op::Input, store.value(id).clone(), false)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if let Some(n) = self.r_step(
            "MatMul",
            |op| matches!(op, Op::MatMul(x, y) if *x == a && *y == b),
            None,
        ) {
            return n;
        }
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MatMul(a, b), v, ng)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if let Some(n) = self.r_step(
            "Add",
            |op| matches!(op, Op::Add(x, y) if *x == a && *y == b),
            None,
        ) {
            return n;
        }
        let mut v = self.nodes[a.0].value.clone();
        v.add_assign(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Add(a, b), v, ng)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if let Some(n) = self.r_step(
            "Sub",
            |op| matches!(op, Op::Sub(x, y) if *x == a && *y == b),
            None,
        ) {
            return n;
        }
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "sub shape mismatch");
        let data = va
            .data
            .iter()
            .zip(vb.data.iter())
            .map(|(&x, &y)| x - y)
            .collect();
        let v = Matrix::from_vec(va.rows, va.cols, data);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Sub(a, b), v, ng)
    }

    /// Hadamard product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if let Some(n) = self.r_step(
            "Mul",
            |op| matches!(op, Op::Mul(x, y) if *x == a && *y == b),
            None,
        ) {
            return n;
        }
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        let data = va
            .data
            .iter()
            .zip(vb.data.iter())
            .map(|(&x, &y)| x * y)
            .collect();
        let v = Matrix::from_vec(va.rows, va.cols, data);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Mul(a, b), v, ng)
    }

    /// Bias add: `a + b` where `b` is a `1 x cols` row broadcast over rows.
    pub fn add_row(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if let Some(n) = self.r_step(
            "AddRow",
            |op| matches!(op, Op::AddRow(x, y) if *x == a && *y == b),
            None,
        ) {
            return n;
        }
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(vb.rows, 1, "add_row: rhs must be a row vector");
        assert_eq!(va.cols, vb.cols, "add_row column mismatch");
        let mut v = va.clone();
        for r in 0..v.rows {
            for c in 0..v.cols {
                v.data[r * v.cols + c] += vb.data[c];
            }
        }
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::AddRow(a, b), v, ng)
    }

    /// Column broadcast multiply: `a * b` where `b` is `rows x 1`.
    pub fn mul_col(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if let Some(n) = self.r_step(
            "MulCol",
            |op| matches!(op, Op::MulCol(x, y) if *x == a && *y == b),
            None,
        ) {
            return n;
        }
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(vb.cols, 1, "mul_col: rhs must be a column vector");
        assert_eq!(va.rows, vb.rows, "mul_col row mismatch");
        let mut v = va.clone();
        for r in 0..v.rows {
            let s = vb.data[r];
            for c in 0..v.cols {
                v.data[r * v.cols + c] *= s;
            }
        }
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MulCol(a, b), v, ng)
    }

    /// Scalar multiply.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        if let Some(n) = self.r_step(
            "Scale",
            |op| matches!(op, Op::Scale(x, s0) if *x == a && *s0 == s),
            None,
        ) {
            return n;
        }
        let v = self.nodes[a.0].value.map(|x| x * s);
        let ng = self.needs(a);
        self.push(Op::Scale(a, s), v, ng)
    }

    /// Scalar add.
    pub fn offset(&mut self, a: NodeId, s: f32) -> NodeId {
        if let Some(n) = self.r_step(
            "Offset",
            |op| matches!(op, Op::Offset(x, s0) if *x == a && *s0 == s),
            None,
        ) {
            return n;
        }
        let v = self.nodes[a.0].value.map(|x| x + s);
        let ng = self.needs(a);
        self.push(Op::Offset(a, s), v, ng)
    }

    /// Elementwise sigmoid (vectorizable polynomial kernel; the libm
    /// reference when [`crate::kernels::set_reference_kernels`] is set).
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        if let Some(n) = self.r_step(
            "Sigmoid",
            |op| matches!(op, Op::Sigmoid(x) if *x == a),
            None,
        ) {
            return n;
        }
        let v = if crate::kernels::reference_kernels() {
            self.nodes[a.0].value.map(stable_sigmoid)
        } else {
            self.nodes[a.0].value.map(crate::kernels::fast_sigmoid)
        };
        let ng = self.needs(a);
        self.push(Op::Sigmoid(a), v, ng)
    }

    /// Elementwise tanh (vectorizable polynomial kernel; the libm
    /// reference when [`crate::kernels::set_reference_kernels`] is set).
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        if let Some(n) = self.r_step("Tanh", |op| matches!(op, Op::Tanh(x) if *x == a), None) {
            return n;
        }
        let v = if crate::kernels::reference_kernels() {
            self.nodes[a.0].value.map(f32::tanh)
        } else {
            self.nodes[a.0].value.map(crate::kernels::fast_tanh)
        };
        let ng = self.needs(a);
        self.push(Op::Tanh(a), v, ng)
    }

    /// Leaky ReLU.
    pub fn leaky_relu(&mut self, a: NodeId, slope: f32) -> NodeId {
        if let Some(n) = self.r_step(
            "LeakyRelu",
            |op| matches!(op, Op::LeakyRelu(x, s0) if *x == a && *s0 == slope),
            None,
        ) {
            return n;
        }
        let v = self.nodes[a.0]
            .value
            .map(|x| if x >= 0.0 { x } else { slope * x });
        let ng = self.needs(a);
        self.push(Op::LeakyRelu(a, slope), v, ng)
    }

    /// Elementwise exp (vectorizable polynomial kernel; the libm
    /// reference when [`crate::kernels::set_reference_kernels`] is set).
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        if let Some(n) = self.r_step("Exp", |op| matches!(op, Op::Exp(x) if *x == a), None) {
            return n;
        }
        let v = if crate::kernels::reference_kernels() {
            self.nodes[a.0].value.map(f32::exp)
        } else {
            self.nodes[a.0].value.map(crate::kernels::fast_exp)
        };
        let ng = self.needs(a);
        self.push(Op::Exp(a), v, ng)
    }

    /// Elementwise softplus, numerically stabilized.
    pub fn softplus(&mut self, a: NodeId) -> NodeId {
        if let Some(n) = self.r_step(
            "Softplus",
            |op| matches!(op, Op::Softplus(x) if *x == a),
            None,
        ) {
            return n;
        }
        let v = self.nodes[a.0].value.map(|x| {
            if x > 20.0 {
                x
            } else if x < -20.0 {
                x.exp()
            } else {
                (1.0 + x.exp()).ln()
            }
        });
        let ng = self.needs(a);
        self.push(Op::Softplus(a), v, ng)
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if let Some(n) = self.r_step(
            "ConcatCols",
            |op| matches!(op, Op::ConcatCols(x, y) if *x == a && *y == b),
            None,
        ) {
            return n;
        }
        let v = self.nodes[a.0].value.concat_cols(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::ConcatCols(a, b), v, ng)
    }

    /// Column slice `c0..c1`.
    pub fn slice_cols(&mut self, a: NodeId, c0: usize, c1: usize) -> NodeId {
        if let Some(n) = self.r_step(
            "SliceCols",
            |op| matches!(op, Op::SliceCols(x, a0, a1) if *x == a && *a0 == c0 && *a1 == c1),
            None,
        ) {
            return n;
        }
        let v = self.nodes[a.0].value.slice_cols(c0, c1);
        let ng = self.needs(a);
        self.push(Op::SliceCols(a, c0, c1), v, ng)
    }

    /// Rows `r0..r1` of `a` as a new `(r1-r0) x cols` node.
    ///
    /// # Panics
    /// Panics if the range is empty, out of order, or past the row count.
    pub fn slice_rows(&mut self, a: NodeId, r0: usize, r1: usize) -> NodeId {
        if let Some(n) = self.r_step(
            "SliceRows",
            |op| matches!(op, Op::SliceRows(x, a0, a1) if *x == a && *a0 == r0 && *a1 == r1),
            None,
        ) {
            return n;
        }
        let va = &self.nodes[a.0].value;
        assert!(
            r0 < r1 && r1 <= va.rows,
            "slice_rows: bad range {r0}..{r1} of {}",
            va.rows
        );
        let cols = va.cols;
        let v = Matrix::from_vec(r1 - r0, cols, va.data[r0 * cols..r1 * cols].to_vec());
        let ng = self.needs(a);
        self.push(Op::SliceRows(a, r0, r1), v, ng)
    }

    /// Row-wise sum, yielding a `rows x 1` column vector.
    pub fn row_sum(&mut self, a: NodeId) -> NodeId {
        if let Some(n) = self.r_step("RowSum", |op| matches!(op, Op::RowSum(x) if *x == a), None) {
            return n;
        }
        let va = &self.nodes[a.0].value;
        let data = (0..va.rows).map(|r| va.row_slice(r).iter().sum()).collect();
        let v = Matrix::from_vec(va.rows, 1, data);
        let ng = self.needs(a);
        self.push(Op::RowSum(a), v, ng)
    }

    /// Sum each consecutive group of `group` rows, reducing a
    /// `(r * group) x c` matrix to `r x c`. Used by the cell-packed
    /// generator forward to collapse the `max_cells` cell slots packed
    /// into the batch dimension back to one row per window.
    ///
    /// Accumulation is group-index-ascending per element, matching a
    /// left-associated chain of [`Graph::add`] over the group's rows
    /// bit for bit.
    ///
    /// # Panics
    /// Panics if `group == 0` or the row count is not divisible by it.
    pub fn sum_row_groups(&mut self, a: NodeId, group: usize) -> NodeId {
        if let Some(n) = self.r_step(
            "SumRowGroups",
            |op| matches!(op, Op::SumRowGroups(x, g0) if *x == a && *g0 == group),
            None,
        ) {
            return n;
        }
        let va = &self.nodes[a.0].value;
        assert!(group > 0, "sum_row_groups: group must be positive");
        assert_eq!(
            va.rows % group,
            0,
            "sum_row_groups: rows not divisible by group"
        );
        let rows = va.rows / group;
        let cols = va.cols;
        let mut v = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for j in 0..group {
                let src = (r * group + j) * cols;
                let dst = r * cols;
                for c in 0..cols {
                    v.data[dst + c] += va.data[src + c];
                }
            }
        }
        let ng = self.needs(a);
        self.push(Op::SumRowGroups(a, group), v, ng)
    }

    /// Fused LSTM cell update: consumes the pre-activation gate matrix
    /// (`rows x 4*hidden`, column blocks ordered `[i | f | g | o]`) and the
    /// previous cell state (`rows x hidden`), producing `[h_new | c_new]`
    /// as a `rows x 2*hidden` matrix.
    ///
    /// One graph node replaces the dozen slice/activation/mul/add nodes of
    /// the op-by-op composition; the scalar arithmetic is identical, so the
    /// values (and hence the training trajectory) are bitwise-equal to the
    /// unfused form.
    ///
    /// # Panics
    /// Panics if `hidden == 0` or the shapes are inconsistent.
    pub fn lstm_cell(&mut self, gates: NodeId, c_prev: NodeId, hidden: usize) -> NodeId {
        if let Some(n) = self.r_step(
            "LstmCell",
            |op| {
                matches!(op, Op::LstmCell { gates: g0, c_prev: c0, hidden: h0 }
                    if *g0 == gates && *c0 == c_prev && *h0 == hidden)
            },
            None,
        ) {
            return n;
        }
        let (vg, vc) = (&self.nodes[gates.0].value, &self.nodes[c_prev.0].value);
        assert!(hidden > 0, "lstm_cell: hidden must be positive");
        assert_eq!(
            vg.cols,
            4 * hidden,
            "lstm_cell: gates must be rows x 4*hidden"
        );
        assert_eq!(
            vc.shape(),
            (vg.rows, hidden),
            "lstm_cell: c_prev shape mismatch"
        );
        let v = if crate::kernels::reference_kernels() {
            lstm_cell_forward(vg, vc, hidden, stable_sigmoid, f32::tanh)
        } else {
            lstm_cell_forward(
                vg,
                vc,
                hidden,
                crate::kernels::fast_sigmoid,
                crate::kernels::fast_tanh,
            )
        };
        let ng = self.needs(gates) || self.needs(c_prev);
        self.push(
            Op::LstmCell {
                gates,
                c_prev,
                hidden,
            },
            v,
            ng,
        )
    }

    /// Fused SRNN noisy renormalization (paper appendix A.2), one node in
    /// place of the nine-op composition built from `scale`/`add`/`row_sum`/
    /// `offset`/`mul`/`mul_col`.
    ///
    /// Per row `r` with mean `m_r` of `x`'s row: the noise `n = u * m_r`
    /// enters as a constant, the output is `(x + a*n) * ratio_r` with
    /// `ratio_r = (rowsum(x)+1e-3) / (rowsum(x+a*n)+1e-3)`, and — exactly
    /// like the unfused form — the gradient flows through `x` and the
    /// numerator's row sum only, the denominator being a constant snapshot.
    /// Forward values and gradients are bitwise-equal to the composition.
    ///
    /// # Panics
    /// Panics if `u`'s shape differs from `x`'s.
    pub fn noisy_renorm(&mut self, x: NodeId, a: f32, u: &Matrix) -> NodeId {
        if let Some(n) = self.r_step(
            "NoisyRenorm",
            |op| {
                matches!(op, Op::NoisyRenorm { x: x0, a: a0, noise }
                    if *x0 == x && *a0 == a && noise.shape() == u.shape())
            },
            Some(u),
        ) {
            return n;
        }
        let vx = &self.nodes[x.0].value;
        assert_eq!(u.shape(), vx.shape(), "noisy_renorm: noise shape mismatch");
        let (rows, cols) = vx.shape();
        let mut noise = Matrix::zeros(rows, cols);
        let mut v = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let xr = &vx.data[r * cols..(r + 1) * cols];
            let ur = &u.data[r * cols..(r + 1) * cols];
            let nr = &mut noise.data[r * cols..(r + 1) * cols];
            let out = &mut v.data[r * cols..(r + 1) * cols];
            let mean = xr.iter().sum::<f32>() / cols.max(1) as f32;
            for c in 0..cols {
                nr[c] = ur[c] * mean;
            }
            // out first holds the perturbed row, then is scaled in place.
            for c in 0..cols {
                out[c] = xr[c] + nr[c] * a;
            }
            let sx: f32 = xr.iter().sum();
            let sp: f32 = out.iter().sum();
            let ratio = (sx + 1e-3) * (1.0 / (sp + 1e-3));
            for o in out.iter_mut() {
                *o *= ratio;
            }
        }
        let ng = self.needs(x);
        self.push(Op::NoisyRenorm { x, a, noise }, v, ng)
    }

    /// `(a + b) + row_broadcast(bias)` as a single node — the LSTM gate
    /// assembly `x·W_ih + h·W_hh + b` without the intermediate `add` node.
    /// Values and gradients are bitwise-equal to `add` + `add_row`.
    ///
    /// # Panics
    /// Panics on shape mismatch or if `bias` is not `1 x cols`.
    pub fn add_add_row(&mut self, a: NodeId, b: NodeId, bias: NodeId) -> NodeId {
        if let Some(n) = self.r_step(
            "AddAddRow",
            |op| matches!(op, Op::AddAddRow(x, y, z) if *x == a && *y == b && *z == bias),
            None,
        ) {
            return n;
        }
        let (va, vb, vbias) = (
            &self.nodes[a.0].value,
            &self.nodes[b.0].value,
            &self.nodes[bias.0].value,
        );
        assert_eq!(va.shape(), vb.shape(), "add_add_row shape mismatch");
        assert_eq!(vbias.rows, 1, "add_add_row: bias must be a row vector");
        assert_eq!(va.cols, vbias.cols, "add_add_row bias column mismatch");
        let mut v = Matrix::zeros(va.rows, va.cols);
        for r in 0..va.rows {
            let ar = &va.data[r * va.cols..(r + 1) * va.cols];
            let br = &vb.data[r * va.cols..(r + 1) * va.cols];
            let out = &mut v.data[r * va.cols..(r + 1) * va.cols];
            for c in 0..va.cols {
                out[c] = (ar[c] + br[c]) + vbias.data[c];
            }
        }
        let ng = self.needs(a) || self.needs(b) || self.needs(bias);
        self.push(Op::AddAddRow(a, b, bias), v, ng)
    }

    /// Masked group mean over packed rows: multiply each row of `x` by the
    /// constant column `mask` (`rows x 1`), sum consecutive groups of
    /// `group` rows, and scale the reduced rows by the constant column
    /// `scale` (`rows/group x 1`). One node in place of
    /// `mul_col` + `sum_row_groups` + `mul_col`, bitwise-equal to it.
    ///
    /// # Panics
    /// Panics if the shapes or the group size are inconsistent.
    pub fn masked_group_mean(
        &mut self,
        x: NodeId,
        mask: &Matrix,
        scale: &Matrix,
        group: usize,
    ) -> NodeId {
        if let Some(n) = self.r_step(
            "MaskedGroupMean",
            |op| match op {
                Op::MaskedGroupMean {
                    x: x0,
                    mask: m0,
                    scale: s0,
                    group: g0,
                } if *x0 == x
                    && *g0 == group
                    && m0.shape() == mask.shape()
                    && s0.shape() == scale.shape() =>
                {
                    // The mask and scale columns vary per batch (padding
                    // pattern); refresh the recorded constants in place.
                    m0.data.copy_from_slice(&mask.data);
                    s0.data.copy_from_slice(&scale.data);
                    true
                }
                _ => false,
            },
            None,
        ) {
            return n;
        }
        let vx = &self.nodes[x.0].value;
        assert!(group > 0, "masked_group_mean: group must be positive");
        assert_eq!(
            vx.rows % group,
            0,
            "masked_group_mean: rows not divisible by group"
        );
        let rows = vx.rows / group;
        let cols = vx.cols;
        assert_eq!(mask.shape(), (vx.rows, 1), "masked_group_mean: mask shape");
        assert_eq!(scale.shape(), (rows, 1), "masked_group_mean: scale shape");
        let mut v = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let out = &mut v.data[r * cols..(r + 1) * cols];
            for j in 0..group {
                let src = (r * group + j) * cols;
                let m = mask.data[r * group + j];
                for (o, x) in out.iter_mut().zip(&vx.data[src..src + cols]) {
                    *o += x * m;
                }
            }
            let s = scale.data[r];
            for o in out.iter_mut() {
                *o *= s;
            }
        }
        let ng = self.needs(x);
        self.push(
            Op::MaskedGroupMean {
                x,
                mask: mask.clone(),
                scale: scale.clone(),
                group,
            },
            v,
            ng,
        )
    }

    /// Mean of all elements as a `1 x 1` scalar node.
    pub fn mean(&mut self, a: NodeId) -> NodeId {
        if let Some(n) = self.r_step("Mean", |op| matches!(op, Op::Mean(x) if *x == a), None) {
            return n;
        }
        let v = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.mean()]);
        let ng = self.needs(a);
        self.push(Op::Mean(a), v, ng)
    }

    /// Mean-squared-error loss `mean((a - b)^2)`.
    pub fn mse_loss(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if let Some(n) = self.r_step(
            "MseLoss",
            |op| matches!(op, Op::MseLoss(x, y) if *x == a && *y == b),
            None,
        ) {
            return n;
        }
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "mse_loss shape mismatch");
        let n = va.data.len().max(1) as f32;
        let s: f32 = va
            .data
            .iter()
            .zip(vb.data.iter())
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum();
        let v = Matrix::from_vec(1, 1, vec![s / n]);
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MseLoss(a, b), v, ng)
    }

    /// Binary cross-entropy with logits against constant targets in `[0,1]`.
    ///
    /// Numerically stable formulation
    /// `max(x,0) - x*t + ln(1 + e^{-|x|})`.
    pub fn bce_with_logits(&mut self, logits: NodeId, targets: Matrix) -> NodeId {
        if let Some(n) = self.r_step(
            "BceWithLogits",
            |op| match op {
                Op::BceWithLogits(l0, t0) if *l0 == logits && t0.shape() == targets.shape() => {
                    t0.data.copy_from_slice(&targets.data);
                    true
                }
                _ => false,
            },
            None,
        ) {
            return n;
        }
        let vl = &self.nodes[logits.0].value;
        assert_eq!(vl.shape(), targets.shape(), "bce shape mismatch");
        let n = vl.data.len().max(1) as f32;
        let s: f32 = vl
            .data
            .iter()
            .zip(targets.data.iter())
            .map(|(&x, &t)| x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln())
            .sum();
        let v = Matrix::from_vec(1, 1, vec![s / n]);
        let ng = self.needs(logits);
        self.push(Op::BceWithLogits(logits, targets), v, ng)
    }

    /// Weighted sum of `1 x 1` scalar nodes (loss combination).
    pub fn weighted_sum(&mut self, terms: Vec<(NodeId, f32)>) -> NodeId {
        if let Some(n) = self.r_step(
            "WeightedSum",
            |op| matches!(op, Op::WeightedSum(t0) if *t0 == terms),
            None,
        ) {
            return n;
        }
        let mut s = 0.0;
        let mut ng = false;
        for &(id, w) in &terms {
            let v = &self.nodes[id.0].value;
            assert_eq!(v.shape(), (1, 1), "weighted_sum expects scalar nodes");
            s += w * v.data[0];
            ng |= self.needs(id);
        }
        let v = Matrix::from_vec(1, 1, vec![s]);
        self.push(Op::WeightedSum(terms), v, ng)
    }

    /// Mean Gaussian negative log-likelihood of `target` under `N(mu, sigma)`.
    ///
    /// `sigma` must be elementwise positive (pass it through
    /// [`Graph::softplus`] plus a floor first).
    pub fn gaussian_nll(&mut self, mu: NodeId, sigma: NodeId, target: Matrix) -> NodeId {
        if let Some(n) = self.r_step(
            "GaussianNll",
            |op| match op {
                Op::GaussianNll {
                    mu: m0,
                    sigma: s0,
                    target: t0,
                } if *m0 == mu && *s0 == sigma && t0.shape() == target.shape() => {
                    t0.data.copy_from_slice(&target.data);
                    true
                }
                _ => false,
            },
            None,
        ) {
            return n;
        }
        let (vm, vs) = (&self.nodes[mu.0].value, &self.nodes[sigma.0].value);
        assert_eq!(vm.shape(), vs.shape(), "gaussian_nll mu/sigma mismatch");
        assert_eq!(vm.shape(), target.shape(), "gaussian_nll target mismatch");
        let n = vm.data.len().max(1) as f32;
        let mut s = 0.0;
        for i in 0..vm.data.len() {
            let m = vm.data[i];
            let sd = vs.data[i].max(1e-6);
            let t = target.data[i];
            s += sd.ln() + 0.5 * ((t - m) / sd).powi(2);
        }
        let v = Matrix::from_vec(1, 1, vec![s / n]);
        let ng = self.needs(mu) || self.needs(sigma);
        self.push(Op::GaussianNll { mu, sigma, target }, v, ng)
    }

    fn accum(&mut self, id: NodeId, g: Matrix) {
        if !self.nodes[id.0].needs_grad {
            return;
        }
        if crate::sanitize::sanitize_enabled() && g.has_non_finite() {
            panic!(
                "GENDT_SANITIZE: non-finite gradient flowing into node {} ({}, shape {}x{})",
                id.0,
                self.nodes[id.0].op.describe(),
                self.nodes[id.0].value.rows,
                self.nodes[id.0].value.cols
            );
        }
        match &mut self.nodes[id.0].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Run the backward pass from a scalar `1 x 1` loss node, pushing
    /// parameter gradients into `store`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: NodeId, store: &mut ParamStore) {
        if let Mode::Replay { plan, cursor } = &mut self.mode {
            assert!(
                loss.0 < *cursor,
                "plan replay: backward from node {} but only {} steps replayed",
                loss.0,
                cursor
            );
            plan.backward(loss.0, store);
            return;
        }
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward needs a scalar loss"
        );
        self.nodes[loss.0].grad = Some(Matrix::from_vec(1, 1, vec![1.0]));
        for i in (0..=loss.0).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let Some(g) = self.nodes[i].grad.take() else {
                continue;
            };
            // Re-insert so callers can inspect grads after backward.
            self.nodes[i].grad = Some(g.clone());
            let op = self.nodes[i].op.clone();
            // Op profiler: time this op's gradient computation. Cost is
            // estimated before the match because the op moves into it.
            let prof = if gendt_trace::trace_enabled() {
                let (flops, bytes) = self.op_cost(&op, &self.nodes[i].value);
                Some((op.name(), flops, bytes, gendt_trace::now_ns()))
            } else {
                None
            };
            match op {
                Op::Input => {}
                Op::Param(pid) => store.accumulate_grad(pid, &g),
                Op::MatMul(a, b) => {
                    if self.needs(a) {
                        let ga = g.matmul_nt(&self.nodes[b.0].value);
                        self.accum(a, ga);
                    }
                    if self.needs(b) {
                        let gb = self.nodes[a.0].value.matmul_tn(&g);
                        self.accum(b, gb);
                    }
                }
                Op::Add(a, b) => {
                    self.accum(a, g.clone());
                    self.accum(b, g);
                }
                Op::Sub(a, b) => {
                    self.accum(a, g.clone());
                    self.accum(b, g.map(|x| -x));
                }
                Op::Mul(a, b) => {
                    if self.needs(a) {
                        let vb = &self.nodes[b.0].value;
                        let data = g
                            .data
                            .iter()
                            .zip(vb.data.iter())
                            .map(|(&x, &y)| x * y)
                            .collect();
                        self.accum(a, Matrix::from_vec(g.rows, g.cols, data));
                    }
                    if self.needs(b) {
                        let va = &self.nodes[a.0].value;
                        let data = g
                            .data
                            .iter()
                            .zip(va.data.iter())
                            .map(|(&x, &y)| x * y)
                            .collect();
                        self.accum(b, Matrix::from_vec(g.rows, g.cols, data));
                    }
                }
                Op::AddRow(a, b) => {
                    if self.needs(a) {
                        self.accum(a, g.clone());
                    }
                    if self.needs(b) {
                        let mut gb = Matrix::zeros(1, g.cols);
                        for r in 0..g.rows {
                            for c in 0..g.cols {
                                gb.data[c] += g.data[r * g.cols + c];
                            }
                        }
                        self.accum(b, gb);
                    }
                }
                Op::MulCol(a, b) => {
                    if self.needs(a) {
                        let vb = &self.nodes[b.0].value;
                        let mut ga = g.clone();
                        for r in 0..ga.rows {
                            let s = vb.data[r];
                            for c in 0..ga.cols {
                                ga.data[r * ga.cols + c] *= s;
                            }
                        }
                        self.accum(a, ga);
                    }
                    if self.needs(b) {
                        let va = &self.nodes[a.0].value;
                        let mut gb = Matrix::zeros(g.rows, 1);
                        for r in 0..g.rows {
                            let mut acc = 0.0;
                            for c in 0..g.cols {
                                acc += g.data[r * g.cols + c] * va.data[r * va.cols + c];
                            }
                            gb.data[r] = acc;
                        }
                        self.accum(b, gb);
                    }
                }
                Op::Scale(a, s) => self.accum(a, g.map(|x| x * s)),
                Op::Offset(a, _) => self.accum(a, g),
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let data = g
                        .data
                        .iter()
                        .zip(y.data.iter())
                        .map(|(&gi, &yi)| gi * yi * (1.0 - yi))
                        .collect();
                    self.accum(a, Matrix::from_vec(g.rows, g.cols, data));
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let data = g
                        .data
                        .iter()
                        .zip(y.data.iter())
                        .map(|(&gi, &yi)| gi * (1.0 - yi * yi))
                        .collect();
                    self.accum(a, Matrix::from_vec(g.rows, g.cols, data));
                }
                Op::LeakyRelu(a, slope) => {
                    let x = &self.nodes[a.0].value;
                    let data = g
                        .data
                        .iter()
                        .zip(x.data.iter())
                        .map(|(&gi, &xi)| if xi >= 0.0 { gi } else { gi * slope })
                        .collect();
                    self.accum(a, Matrix::from_vec(g.rows, g.cols, data));
                }
                Op::Exp(a) => {
                    let y = &self.nodes[i].value;
                    let data = g
                        .data
                        .iter()
                        .zip(y.data.iter())
                        .map(|(&gi, &yi)| gi * yi)
                        .collect();
                    self.accum(a, Matrix::from_vec(g.rows, g.cols, data));
                }
                Op::Softplus(a) => {
                    let x = &self.nodes[a.0].value;
                    let data = g
                        .data
                        .iter()
                        .zip(x.data.iter())
                        .map(|(&gi, &xi)| gi * stable_sigmoid(xi))
                        .collect();
                    self.accum(a, Matrix::from_vec(g.rows, g.cols, data));
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.nodes[a.0].value.cols;
                    if self.needs(a) {
                        self.accum(a, g.slice_cols(0, ca));
                    }
                    if self.needs(b) {
                        self.accum(b, g.slice_cols(ca, g.cols));
                    }
                }
                Op::SliceCols(a, c0, c1) => {
                    let va_shape = self.nodes[a.0].value.shape();
                    let mut ga = Matrix::zeros(va_shape.0, va_shape.1);
                    for r in 0..g.rows {
                        for (k, c) in (c0..c1).enumerate() {
                            ga.data[r * va_shape.1 + c] = g.data[r * g.cols + k];
                        }
                    }
                    self.accum(a, ga);
                }
                Op::SliceRows(a, r0, r1) => {
                    let va_shape = self.nodes[a.0].value.shape();
                    let mut ga = Matrix::zeros(va_shape.0, va_shape.1);
                    let cols = va_shape.1;
                    ga.data[r0 * cols..r1 * cols].copy_from_slice(&g.data);
                    self.accum(a, ga);
                }
                Op::RowSum(a) => {
                    let va_shape = self.nodes[a.0].value.shape();
                    let mut ga = Matrix::zeros(va_shape.0, va_shape.1);
                    for r in 0..va_shape.0 {
                        let s = g.data[r];
                        for c in 0..va_shape.1 {
                            ga.data[r * va_shape.1 + c] = s;
                        }
                    }
                    self.accum(a, ga);
                }
                Op::SumRowGroups(a, group) => {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let mut ga = Matrix::zeros(rows, cols);
                    for r in 0..g.rows {
                        let src = &g.data[r * cols..(r + 1) * cols];
                        for j in 0..group {
                            ga.data[(r * group + j) * cols..(r * group + j + 1) * cols]
                                .copy_from_slice(src);
                        }
                    }
                    self.accum(a, ga);
                }
                Op::LstmCell {
                    gates,
                    c_prev,
                    hidden,
                } => {
                    let (dg, dc) = {
                        let vg = &self.nodes[gates.0].value;
                        let vc = &self.nodes[c_prev.0].value;
                        if crate::kernels::reference_kernels() {
                            lstm_cell_backward(&g, vg, vc, hidden, stable_sigmoid, f32::tanh)
                        } else {
                            lstm_cell_backward(
                                &g,
                                vg,
                                vc,
                                hidden,
                                crate::kernels::fast_sigmoid,
                                crate::kernels::fast_tanh,
                            )
                        }
                    };
                    if self.needs(gates) {
                        self.accum(gates, dg);
                    }
                    if self.needs(c_prev) {
                        self.accum(c_prev, dc);
                    }
                }
                Op::NoisyRenorm { x, a, noise } => {
                    let (rows, cols) = noise.shape();
                    let mut dx = Matrix::zeros(rows, cols);
                    {
                        let vx = &self.nodes[x.0].value;
                        for r in 0..rows {
                            let xr = &vx.data[r * cols..(r + 1) * cols];
                            let nr = &noise.data[r * cols..(r + 1) * cols];
                            let gr = &g.data[r * cols..(r + 1) * cols];
                            let dr = &mut dx.data[r * cols..(r + 1) * cols];
                            // Recompute the perturbed row and both row sums
                            // (bitwise the forward values — same code, same
                            // inputs), then combine the mul_col and row_sum
                            // paths of the unfused composition.
                            for c in 0..cols {
                                dr[c] = xr[c] + nr[c] * a;
                            }
                            let sx: f32 = xr.iter().sum();
                            let sp: f32 = dr.iter().sum();
                            let rden = 1.0 / (sp + 1e-3);
                            let ratio = (sx + 1e-3) * rden;
                            let dot: f32 = gr.iter().zip(dr.iter()).map(|(&gi, &pi)| gi * pi).sum();
                            let ds = dot * rden;
                            for c in 0..cols {
                                dr[c] = gr[c] * ratio + ds;
                            }
                        }
                    }
                    self.accum(x, dx);
                }
                Op::AddAddRow(a, b, bias) => {
                    if self.needs(a) {
                        self.accum(a, g.clone());
                    }
                    if self.needs(b) {
                        self.accum(b, g.clone());
                    }
                    if self.needs(bias) {
                        let mut gb = Matrix::zeros(1, g.cols);
                        for r in 0..g.rows {
                            for c in 0..g.cols {
                                gb.data[c] += g.data[r * g.cols + c];
                            }
                        }
                        self.accum(bias, gb);
                    }
                }
                Op::MaskedGroupMean {
                    x,
                    mask,
                    scale,
                    group,
                } => {
                    let (rows, cols) = self.nodes[x.0].value.shape();
                    let mut dx = Matrix::zeros(rows, cols);
                    for r in 0..g.rows {
                        let gr = &g.data[r * cols..(r + 1) * cols];
                        let s = scale.data[r];
                        for j in 0..group {
                            let row = r * group + j;
                            let m = mask.data[row];
                            let dr = &mut dx.data[row * cols..(row + 1) * cols];
                            for c in 0..cols {
                                dr[c] = (gr[c] * s) * m;
                            }
                        }
                    }
                    self.accum(x, dx);
                }
                Op::Mean(a) => {
                    let va_shape = self.nodes[a.0].value.shape();
                    let n = (va_shape.0 * va_shape.1).max(1) as f32;
                    let ga = Matrix::full(va_shape.0, va_shape.1, g.data[0] / n);
                    self.accum(a, ga);
                }
                Op::MseLoss(a, b) => {
                    let (ga_mat, gb_mat) = {
                        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                        let n = va.data.len().max(1) as f32;
                        let s = 2.0 * g.data[0] / n;
                        let diff: Vec<f32> = va
                            .data
                            .iter()
                            .zip(vb.data.iter())
                            .map(|(&x, &y)| s * (x - y))
                            .collect();
                        let ga = Matrix::from_vec(va.rows, va.cols, diff.clone());
                        let gb =
                            Matrix::from_vec(va.rows, va.cols, diff.iter().map(|&d| -d).collect());
                        (ga, gb)
                    };
                    if self.needs(a) {
                        self.accum(a, ga_mat);
                    }
                    if self.needs(b) {
                        self.accum(b, gb_mat);
                    }
                }
                Op::BceWithLogits(l, targets) => {
                    let vl = &self.nodes[l.0].value;
                    let n = vl.data.len().max(1) as f32;
                    let s = g.data[0] / n;
                    let data = vl
                        .data
                        .iter()
                        .zip(targets.data.iter())
                        .map(|(&x, &t)| s * (stable_sigmoid(x) - t))
                        .collect();
                    self.accum(l, Matrix::from_vec(vl.rows, vl.cols, data));
                }
                Op::WeightedSum(terms) => {
                    for (id, w) in terms {
                        self.accum(id, Matrix::from_vec(1, 1, vec![g.data[0] * w]));
                    }
                }
                Op::GaussianNll { mu, sigma, target } => {
                    let (gmu, gsigma) = {
                        let (vm, vs) = (&self.nodes[mu.0].value, &self.nodes[sigma.0].value);
                        let n = vm.data.len().max(1) as f32;
                        let s = g.data[0] / n;
                        let gmu_data: Vec<f32> = (0..vm.data.len())
                            .map(|k| {
                                let sd = vs.data[k].max(1e-6);
                                s * (vm.data[k] - target.data[k]) / (sd * sd)
                            })
                            .collect();
                        let gsigma_data: Vec<f32> = (0..vm.data.len())
                            .map(|k| {
                                let sd = vs.data[k].max(1e-6);
                                let d = target.data[k] - vm.data[k];
                                s * (1.0 / sd - d * d / (sd * sd * sd))
                            })
                            .collect();
                        (
                            Matrix::from_vec(vm.rows, vm.cols, gmu_data),
                            Matrix::from_vec(vs.rows, vs.cols, gsigma_data),
                        )
                    };
                    if self.needs(mu) {
                        self.accum(mu, gmu);
                    }
                    if self.needs(sigma) {
                        self.accum(sigma, gsigma);
                    }
                }
            }
            if let Some((name, flops, bytes, t0)) = prof {
                let dur = gendt_trace::now_ns().saturating_sub(t0);
                gendt_trace::record_op(name, gendt_trace::Phase::Backward, dur, flops, bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Finite-difference check of d loss / d w for a scalar function builder.
    fn check_grad(build: impl Fn(&mut Graph, &ParamStore, ParamId) -> NodeId) {
        let mut rng = Rng::seed_from(123);
        let mut store = ParamStore::new();
        let data: Vec<f32> = (0..6).map(|_| rng.uniform(-1.0, 1.0) as f32).collect();
        let w = store.add("w", Matrix::from_vec(2, 3, data));

        // Analytic gradient.
        store.zero_grad();
        let mut g = Graph::new();
        let loss = build(&mut g, &store, w);
        g.backward(loss, &mut store);
        let analytic = store.grad(w).clone();

        // Finite differences.
        let eps = 1e-3f32;
        for k in 0..6 {
            let orig = store.value(w).data[k];
            store.value_mut(w).data[k] = orig + eps;
            let mut gp = Graph::new();
            let lp = build(&mut gp, &store, w);
            let fp = gp.value(lp).data[0];
            store.value_mut(w).data[k] = orig - eps;
            let mut gm = Graph::new();
            let lm = build(&mut gm, &store, w);
            let fm = gm.value(lm).data[0];
            store.value_mut(w).data[k] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.data[k];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                "grad mismatch at {k}: analytic {a}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_matmul_mean() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let x = g.input(Matrix::from_vec(3, 2, vec![0.3, -0.2, 0.5, 0.7, -0.1, 0.4]));
            let y = g.matmul(wn, x);
            g.mean(y)
        });
    }

    #[test]
    fn grad_sigmoid_tanh_chain() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let a = g.sigmoid(wn);
            let b = g.tanh(a);
            g.mean(b)
        });
    }

    #[test]
    fn grad_leaky_relu_exp_softplus() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let a = g.leaky_relu(wn, 0.1);
            let b = g.softplus(a);
            let c = g.exp(b);
            g.mean(c)
        });
    }

    #[test]
    fn grad_mse_loss() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let target = g.input(Matrix::from_vec(2, 3, vec![0.1; 6]));
            g.mse_loss(wn, target)
        });
    }

    #[test]
    fn grad_bce_with_logits() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            g.bce_with_logits(
                wn,
                Matrix::from_vec(2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]),
            )
        });
    }

    #[test]
    fn grad_gaussian_nll() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let mu = g.slice_cols(wn, 0, 3); // rows 2 cols 3 -> use whole as mu
            let raw = g.scale(wn, 0.5);
            let sp = g.softplus(raw);
            let sigma = g.offset(sp, 0.1);
            g.gaussian_nll(mu, sigma, Matrix::from_vec(2, 3, vec![0.2; 6]))
        });
    }

    #[test]
    fn grad_concat_slice_rowsum() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let x = g.input(Matrix::from_vec(2, 2, vec![0.4, -0.3, 0.2, 0.8]));
            let cat = g.concat_cols(wn, x); // 2 x 5
            let sl = g.slice_cols(cat, 1, 4);
            let rs = g.row_sum(sl);
            g.mean(rs)
        });
    }

    #[test]
    fn grad_sum_row_groups() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w); // 2 x 3, group = 2 -> 1 x 3
            let sum = g.sum_row_groups(wn, 2);
            let t = g.tanh(sum);
            g.mean(t)
        });
    }

    #[test]
    fn grad_lstm_cell() {
        // Gradients flow through both the gates and the previous cell state.
        check_grad(|g, s, w| {
            let wn = g.param(s, w); // 2 x 3
            let k = g.input(Matrix::from_vec(
                3,
                4,
                (0..12).map(|i| 0.3 - 0.07 * i as f32).collect(),
            ));
            let gates = g.matmul(wn, k); // 2 x 4, hidden = 1
            let c_prev = g.slice_cols(wn, 0, 1); // 2 x 1
            let hc = g.lstm_cell(gates, c_prev, 1);
            g.mean(hc)
        });
    }

    #[test]
    fn lstm_cell_matches_unfused_bitwise() {
        let mut rng = Rng::seed_from(29);
        let h = 5;
        let rows = 4;
        let gates_m = Matrix::from_vec(
            rows,
            4 * h,
            (0..rows * 4 * h)
                .map(|_| rng.uniform(-3.0, 3.0) as f32)
                .collect(),
        );
        let c_m = Matrix::from_vec(
            rows,
            h,
            (0..rows * h)
                .map(|_| rng.uniform(-1.0, 1.0) as f32)
                .collect(),
        );

        let mut g = Graph::new();
        let gates = g.input(gates_m.clone());
        let c_prev = g.input(c_m.clone());
        let hc = g.lstm_cell(gates, c_prev, h);

        // Unfused reference composition on the same kernels.
        let mut g2 = Graph::new();
        let gates2 = g2.input(gates_m);
        let c_prev2 = g2.input(c_m);
        let i_g = g2.slice_cols(gates2, 0, h);
        let f_g = g2.slice_cols(gates2, h, 2 * h);
        let g_g = g2.slice_cols(gates2, 2 * h, 3 * h);
        let o_g = g2.slice_cols(gates2, 3 * h, 4 * h);
        let i = g2.sigmoid(i_g);
        let f = g2.sigmoid(f_g);
        let cand = g2.tanh(g_g);
        let o = g2.sigmoid(o_g);
        let fc = g2.mul(f, c_prev2);
        let ig = g2.mul(i, cand);
        let c_new = g2.add(fc, ig);
        let c_tanh = g2.tanh(c_new);
        let h_new = g2.mul(o, c_tanh);

        let fused = g.value(hc);
        for r in 0..rows {
            assert_eq!(
                &fused.data[r * 2 * h..r * 2 * h + h],
                &g2.value(h_new).data[r * h..(r + 1) * h],
                "h row {r}"
            );
            assert_eq!(
                &fused.data[r * 2 * h + h..(r + 1) * 2 * h],
                &g2.value(c_new).data[r * h..(r + 1) * h],
                "c row {r}"
            );
        }
    }

    #[test]
    fn grad_slice_rows() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w); // 2 x 3
            let top = g.slice_rows(wn, 0, 1);
            let bot = g.slice_rows(wn, 1, 2);
            let prod = g.mul(top, bot);
            let t = g.tanh(prod);
            g.mean(t)
        });
    }

    #[test]
    fn add_add_row_matches_unfused_bitwise() {
        let mut rng = Rng::seed_from(53);
        let mk = |rng: &mut Rng, r: usize, c: usize| {
            Matrix::from_vec(
                r,
                c,
                (0..r * c).map(|_| rng.uniform(-1.0, 1.0) as f32).collect(),
            )
        };
        let mut store = ParamStore::new();
        let wa = store.add("a", mk(&mut rng, 3, 4));
        let wb = store.add("b", mk(&mut rng, 3, 4));
        let wbias = store.add("bias", mk(&mut rng, 1, 4));

        store.zero_grad();
        let mut g = Graph::new();
        let (a, b, bias) = (
            g.param(&store, wa),
            g.param(&store, wb),
            g.param(&store, wbias),
        );
        let fused = g.add_add_row(a, b, bias);
        let target = g.input(Matrix::zeros(3, 4));
        let loss = g.mse_loss(fused, target);
        g.backward(loss, &mut store);
        let fv = g.value(fused).clone();
        let (ga1, gb1, gc1) = (
            store.grad(wa).clone(),
            store.grad(wb).clone(),
            store.grad(wbias).clone(),
        );

        store.zero_grad();
        let mut g2 = Graph::new();
        let (a, b, bias) = (
            g2.param(&store, wa),
            g2.param(&store, wb),
            g2.param(&store, wbias),
        );
        let pre = g2.add(a, b);
        let unfused = g2.add_row(pre, bias);
        let target = g2.input(Matrix::zeros(3, 4));
        let loss = g2.mse_loss(unfused, target);
        g2.backward(loss, &mut store);

        assert_eq!(fv.data, g2.value(unfused).data);
        assert_eq!(ga1.data, store.grad(wa).data);
        assert_eq!(gb1.data, store.grad(wb).data);
        assert_eq!(gc1.data, store.grad(wbias).data);
    }

    #[test]
    fn masked_group_mean_matches_unfused_bitwise() {
        let mut rng = Rng::seed_from(59);
        let (rows, cols, group) = (6, 4, 3);
        let mut store = ParamStore::new();
        let w = store.add(
            "x",
            Matrix::from_vec(
                rows,
                cols,
                (0..rows * cols)
                    .map(|_| rng.uniform(-1.0, 1.0) as f32)
                    .collect(),
            ),
        );
        let mask = Matrix::from_vec(rows, 1, vec![1.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
        let scale = Matrix::from_vec(rows / group, 1, vec![0.5, 1.0]);

        store.zero_grad();
        let mut g = Graph::new();
        let x = g.param(&store, w);
        let fused = g.masked_group_mean(x, &mask, &scale, group);
        let t = g.tanh(fused);
        let loss = g.mean(t);
        g.backward(loss, &mut store);
        let fv = g.value(fused).clone();
        let fg = store.grad(w).clone();

        store.zero_grad();
        let mut g2 = Graph::new();
        let x = g2.param(&store, w);
        let mask_n = g2.input(mask);
        let scale_n = g2.input(scale);
        let masked = g2.mul_col(x, mask_n);
        let summed = g2.sum_row_groups(masked, group);
        let unfused = g2.mul_col(summed, scale_n);
        let t = g2.tanh(unfused);
        let loss = g2.mean(t);
        g2.backward(loss, &mut store);

        assert_eq!(fv.data, g2.value(unfused).data);
        assert_eq!(fg.data, store.grad(w).data);
    }

    #[test]
    fn noisy_renorm_matches_unfused_bitwise() {
        let mut rng = Rng::seed_from(41);
        let (rows, cols) = (4, 6);
        let a = 0.25f32;
        let xd: Vec<f32> = (0..rows * cols)
            .map(|_| rng.uniform(-1.0, 1.0) as f32)
            .collect();
        let ud: Vec<f32> = (0..rows * cols).map(|_| rng.uniform01() as f32).collect();
        let u = Matrix::from_vec(rows, cols, ud);

        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(rows, cols, xd));

        store.zero_grad();
        let mut g = Graph::new();
        let x = g.param(&store, w);
        let fused = g.noisy_renorm(x, a, &u);
        let loss = g.mean(fused);
        g.backward(loss, &mut store);
        let fused_val = g.value(fused).clone();
        let fused_grad = store.grad(w).clone();

        // Unfused composition: noise constant, ratio with constant denom.
        store.zero_grad();
        let mut g2 = Graph::new();
        let x2 = g2.param(&store, w);
        let v = g2.value(x2).clone();
        let mut noise = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mean = v.row_slice(r).iter().sum::<f32>() / cols as f32;
            for c in 0..cols {
                noise.data[r * cols + c] = u.data[r * cols + c] * mean;
            }
        }
        let n = g2.input(noise);
        let an = g2.scale(n, a);
        let pert = g2.add(x2, an);
        let sx = g2.row_sum(x2);
        let sp = g2.row_sum(pert);
        let sx_off = g2.offset(sx, 1e-3);
        let sp_off = g2.offset(sp, 1e-3);
        let recip_vals = g2.value(sp_off).map(|x| 1.0 / x);
        let recip = g2.input(recip_vals);
        let ratio = g2.mul(sx_off, recip);
        let unfused = g2.mul_col(pert, ratio);
        let loss2 = g2.mean(unfused);
        g2.backward(loss2, &mut store);

        assert_eq!(
            fused_val.data,
            g2.value(unfused).data,
            "forward values differ"
        );
        assert_eq!(fused_grad.data, store.grad(w).data, "gradients differ");
    }

    #[test]
    fn slice_rows_matches_selection_matmul_bitwise() {
        let mut rng = Rng::seed_from(19);
        let mut store = ParamStore::new();
        let w = store.add_xavier("w", 5, 3, &mut rng);
        let (r0, r1) = (1usize, 4usize);

        let mut g = Graph::new();
        let x = g.param(&store, w);
        let sliced = g.slice_rows(x, r0, r1);
        let loss = g.mean(sliced);
        g.backward(loss, &mut store);
        let sliced_val = g.value(sliced).clone();
        let sliced_grad = store.grad(w).clone();

        // Reference: multiply by a 0/1 row-selection matrix. Each output
        // element accumulates zeros plus exactly one selected value, and
        // 0 + x == x in f32, so forward and backward agree bitwise.
        store.zero_grad();
        let mut g2 = Graph::new();
        let x2 = g2.param(&store, w);
        let mut sel = Matrix::zeros(r1 - r0, 5);
        for i in 0..(r1 - r0) {
            sel.data[i * 5 + (r0 + i)] = 1.0;
        }
        let s = g2.input(sel);
        let picked = g2.matmul(s, x2);
        let loss2 = g2.mean(picked);
        g2.backward(loss2, &mut store);

        assert_eq!(
            sliced_val.data,
            g2.value(picked).data,
            "forward values differ"
        );
        assert_eq!(sliced_grad.data, store.grad(w).data, "gradients differ");
    }

    #[test]
    fn sum_row_groups_matches_add_chain_bitwise() {
        let mut rng = Rng::seed_from(17);
        let data: Vec<f32> = (0..6 * 4).map(|_| rng.uniform(-2.0, 2.0) as f32).collect();
        let packed = Matrix::from_vec(6, 4, data);
        let mut g = Graph::new();
        let p = g.input(packed.clone());
        let grouped = g.sum_row_groups(p, 3);
        // Reference: left-associated add chain over each group's rows.
        let mut g2 = Graph::new();
        let mut chain: Vec<NodeId> = Vec::new();
        for r in 0..2 {
            let mut acc = None;
            for j in 0..3 {
                let row = g2.input(Matrix::from_vec(1, 4, packed.row_slice(r * 3 + j).to_vec()));
                acc = Some(match acc {
                    Some(a) => g2.add(a, row),
                    None => row,
                });
            }
            chain.push(acc.unwrap());
        }
        for (r, &node) in chain.iter().enumerate() {
            assert_eq!(
                &g.value(grouped).data[r * 4..(r + 1) * 4],
                &g2.value(node).data[..],
                "row {r} differs from add chain"
            );
        }
    }

    #[test]
    fn grad_mul_col_broadcast() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let b = g.input(Matrix::from_vec(2, 1, vec![0.7, -1.2]));
            let y = g.mul_col(wn, b);
            g.mean(y)
        });
    }

    #[test]
    fn grad_add_row_bias() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let x = g.input(Matrix::from_vec(2, 3, vec![0.1; 6]));
            let mul = g.mul(wn, x);
            let bias = g.input(Matrix::from_vec(1, 3, vec![0.5, -0.5, 0.2]));
            let y = g.add_row(mul, bias);
            let t = g.tanh(y);
            g.mean(t)
        });
    }

    #[test]
    fn grad_weighted_sum_combines() {
        check_grad(|g, s, w| {
            let wn = g.param(s, w);
            let m1 = g.mean(wn);
            let sq = g.mul(wn, wn);
            let m2 = g.mean(sq);
            g.weighted_sum(vec![(m1, 0.3), (m2, 0.7)])
        });
    }

    #[test]
    fn bias_gradient_through_add_row() {
        // Directly check the AddRow rhs gradient (row-sum of upstream).
        let mut store = ParamStore::new();
        let b = store.add("b", Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let mut g = Graph::new();
        let x = g.input(Matrix::from_vec(3, 2, vec![1.0; 6]));
        let bn = g.param(&store, b);
        let y = g.add_row(x, bn);
        let loss = g.mean(y);
        g.backward(loss, &mut store);
        // d mean / d b_c = rows / (rows*cols) = 3/6 = 0.5
        assert!(store.grad(b).data.iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn linear_regression_converges() {
        // Learn y = 2x + 1 with a 1x1 weight and bias via the graph.
        let mut rng = Rng::seed_from(9);
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 1, vec![0.0]));
        let b = store.add("b", Matrix::from_vec(1, 1, vec![0.0]));
        let mut opt = crate::params::Adam::new(0.05);
        for _ in 0..300 {
            let xs: Vec<f32> = (0..16).map(|_| rng.uniform(-1.0, 1.0) as f32).collect();
            let ys: Vec<f32> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
            store.zero_grad();
            let mut g = Graph::new();
            let x = g.input(Matrix::from_vec(16, 1, xs));
            let wn = g.param(&store, w);
            let bn = g.param(&store, b);
            let xw = g.matmul(x, wn);
            let pred = g.add_row(xw, bn);
            let target = g.input(Matrix::from_vec(16, 1, ys));
            let loss = g.mse_loss(pred, target);
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!((store.value(w).data[0] - 2.0).abs() < 0.05);
        assert!((store.value(b).data[0] - 1.0).abs() < 0.05);
    }
}
